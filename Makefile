# Convenience targets for the repro library.

.PHONY: install test lint lint-runtime bench bench-kernels bench-pipeline bench-service obs-smoke serve examples results clean

install:
	python setup.py develop

test:
	pytest tests/

# Project-invariant static analysis (zero-dependency; pyflakes runs in CI).
lint:
	PYTHONPATH=src python -m repro lint src tests benchmarks examples --baseline .lint-baseline.json

# Static rules + the runtime lock watchdog: re-run the concurrent test
# surface with every lock instrumented, then merge the observed
# acquisition graph into LOCK-ORDER (see docs/static-analysis.md).
lint-runtime:
	rm -f lock_order.json
	REPRO_LOCK_WATCH=lock_order.json PYTHONPATH=src python -m pytest -q tests/service tests/obs/test_live.py
	PYTHONPATH=src python -m repro lint src tests benchmarks examples --baseline .lint-baseline.json --runtime-report lock_order.json

bench:
	pytest benchmarks/ --benchmark-only

# Both bench targets mirror their results JSON to the repo root, where
# the autotuner (repro.perf.autotune) picks it up as dispatch seeds.
bench-kernels:
	PYTHONPATH=src python benchmarks/bench_kernels.py
	cp benchmarks/results/BENCH_kernels.json BENCH_kernels.json

bench-pipeline:
	PYTHONPATH=src python benchmarks/bench_pipeline.py
	cp benchmarks/results/BENCH_pipeline.json BENCH_pipeline.json

# Open-loop load harness for the job service; SMOKE=1 runs CI sizes.
bench-service:
	PYTHONPATH=src python benchmarks/bench_service.py $(if $(SMOKE),--smoke)
	cp benchmarks/results/BENCH_service.json BENCH_service.json

serve:
	PYTHONPATH=src python -m repro serve --metrics

obs-smoke:
	PYTHONPATH=src python benchmarks/obs_smoke.py

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

results: test bench
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
