"""Opt-in lock instrumentation: record real acquisition orders, catch
cycles and held-lock anomalies as they happen.

The static LOCK-ORDER rule over-approximates (a delegated edge may be
dead code); this watchdog under-approximates (it only sees orders the
run exercised). Together they pin the truth from both sides: the lint
merge prunes static delegated edges the runtime refutes, and runtime
cycles gate CI even when the walker cannot see them.

Design constraints that shaped the implementation:

- **Patching must be reversible and scoped.** ``install()`` swaps the
  factories on the ``threading`` module *and* on every already-imported
  module that bound them directly (``from threading import Lock``
  — ``repro.obs.live.slo`` does exactly this); ``uninstall()`` restores
  every binding it touched. Locks created before install are simply
  not tracked — wrapping only at creation time means no guessing about
  foreign lock internals.
- **Only repo code is tracked.** The creation site (the first stack
  frame outside this file) keys every lock; sites outside the current
  working tree get an ordinary untracked lock, so stdlib machinery
  (queues, loggers, executors) adds neither noise nor overhead.
  The ``path:line`` site string matches the static rule's
  :attr:`~repro.analysis.locks.LockDef.site`, which is what makes the
  merge a plain set join.
- **The watchdog must never deadlock the watched program.** Internal
  state is guarded by one raw (untracked) mutex, taken only in short
  bookkeeping sections after the real acquire already succeeded, never
  while blocking on a user lock.
- **Anomalies inform, cycles gate.** ``held_too_long`` and
  ``held_across_fork`` depend on timing and platform (the pool engine
  forks workers legitimately), so they are recorded in the report but
  do not fail the merge; an observed lock-order cycle is a real
  deadlock witness and does.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "LockWatchdog",
    "active_watchdog",
    "load_runtime_report",
    "watch_locks",
]

#: The real factories, captured at import before any patching.
_ORIG_LOCK = threading.Lock
_ORIG_RLOCK = threading.RLock
_ORIG_CONDITION = threading.Condition

_ORIGINALS = {
    "Lock": _ORIG_LOCK,
    "RLock": _ORIG_RLOCK,
    "Condition": _ORIG_CONDITION,
}

#: The currently-installed watchdog (at most one; install() enforces it).
_ACTIVE: LockWatchdog | None = None
_ACTIVE_GUARD = _ORIG_LOCK()

_THIS_FILE = os.path.abspath(__file__)


def active_watchdog() -> LockWatchdog | None:
    """The installed watchdog, if any (fixtures reuse it)."""
    return _ACTIVE


def _creation_site(root: str) -> str | None:
    """``path:line`` of the first caller frame outside this module,
    repo-relative when under ``root``; None for foreign code."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename.startswith("<"):  # exec/eval/stdin frames: foreign
            return None
        if os.path.abspath(filename) != _THIS_FILE:
            path = os.path.abspath(filename)
            if not path.startswith(root + os.sep):
                return None
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            return f"{rel}:{frame.f_lineno}"
        frame = frame.f_back
    return None


class _HeldRecord:
    __slots__ = ("site", "since", "count")

    def __init__(self, site: str, since: float):
        self.site = site
        self.since = since
        self.count = 1


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: list[_HeldRecord] = []


class LockWatchdog:
    """Shared order graph + anomaly log for every tracked lock.

    All mutation happens in :meth:`_note_acquired` / :meth:`_note_released`,
    under a raw internal mutex. The cycle check runs online on each new
    edge so a deadlock-in-waiting surfaces in the report even if the
    fatal interleaving never fires in the run.
    """

    def __init__(self, held_warn_s: float = 10.0, root: str | None = None):
        self.held_warn_s = held_warn_s
        self.root = os.path.abspath(root or os.getcwd())
        self._meta = _ORIG_LOCK()  # raw: never tracked, never ordered
        self._threads = _ThreadState()
        self._locks: dict[str, dict[str, Any]] = {}  # site → {kind, count}
        self._edges: dict[tuple[str, str], int] = {}
        self._cycles: list[list[str]] = []
        self._cycle_keys: set[frozenset[str]] = set()
        self._anomalies: list[dict[str, Any]] = []
        self._patched: list[tuple[Any, str, Any]] = []  # (module, name, original)
        self._installed = False

    # -- patching ---------------------------------------------------------

    def install(self) -> None:
        """Patch the factories; idempotent, refuses a second watchdog."""
        global _ACTIVE
        with _ACTIVE_GUARD:
            if self._installed:
                return
            if _ACTIVE is not None:
                raise RuntimeError("another LockWatchdog is already installed")
            wrappers = {
                "Lock": self._make_lock,
                "RLock": self._make_rlock,
                "Condition": self._make_condition,
            }
            for name, wrapper in wrappers.items():
                self._patched.append((threading, name, getattr(threading, name)))
                setattr(threading, name, wrapper)
            # Modules that did `from threading import Lock` hold their own
            # reference to the original factory; rebind those too.
            for module in list(sys.modules.values()):
                if module is None or module is threading:
                    continue
                for name, original in _ORIGINALS.items():
                    if getattr(module, name, None) is original:
                        self._patched.append((module, name, original))
                        setattr(module, name, wrappers[name])
            _ACTIVE = self
            self._installed = True
            _ensure_fork_hook()

    def uninstall(self) -> None:
        """Restore every binding touched by :meth:`install`."""
        global _ACTIVE
        with _ACTIVE_GUARD:
            if not self._installed:
                return
            for module, name, original in reversed(self._patched):
                setattr(module, name, original)
            self._patched.clear()
            _ACTIVE = None
            self._installed = False

    # -- factories --------------------------------------------------------

    def _register(self, site: str, kind: str) -> None:
        with self._meta:
            entry = self._locks.setdefault(site, {"kind": kind, "count": 0})
            entry["count"] += 1

    def _make_lock(self):
        site = _creation_site(self.root)
        if site is None:
            return _ORIG_LOCK()
        self._register(site, "Lock")
        return _TrackedLock(self, site, _ORIG_LOCK(), reentrant=False)

    def _make_rlock(self):
        site = _creation_site(self.root)
        if site is None:
            return _ORIG_RLOCK()
        self._register(site, "RLock")
        return _TrackedLock(self, site, _ORIG_RLOCK(), reentrant=True)

    def _make_condition(self, lock=None):
        site = _creation_site(self.root)
        if site is None:
            return _ORIG_CONDITION(lock)
        self._register(site, "Condition")
        if lock is None:
            # A raw inner RLock: the condition wrapper does the
            # tracking, so the inner lock must not double-record.
            lock = _ORIG_RLOCK()
        inner = lock._inner if isinstance(lock, _TrackedLock) else lock
        return _TrackedCondition(self, site, _ORIG_CONDITION(inner))

    # -- bookkeeping ------------------------------------------------------

    def _note_acquired(self, site: str) -> None:
        stack = self._threads.stack
        now = time.monotonic()
        for rec in stack:
            if rec.site == site:
                rec.count += 1
                return
        new_edges = [(rec.site, site) for rec in stack if rec.site != site]
        stack.append(_HeldRecord(site, now))
        if not new_edges:
            return
        with self._meta:
            for edge in new_edges:
                seen = edge in self._edges
                self._edges[edge] = self._edges.get(edge, 0) + 1
                if not seen:
                    self._check_cycle_locked(edge)

    def _note_released(self, site: str) -> None:
        stack = self._threads.stack
        for idx in range(len(stack) - 1, -1, -1):
            rec = stack[idx]
            if rec.site != site:
                continue
            rec.count -= 1
            if rec.count == 0:
                held_s = time.monotonic() - rec.since
                del stack[idx]
                if held_s > self.held_warn_s:
                    with self._meta:
                        self._anomalies.append(
                            {
                                "type": "held_too_long",
                                "site": site,
                                "held_s": round(held_s, 3),
                                "thread": threading.current_thread().name,
                            }
                        )
            return

    def _suspend_held(self, site: str) -> int:
        """Pop ``site`` from the held stack for a Condition wait; returns
        the reentrancy count to restore afterwards."""
        stack = self._threads.stack
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx].site == site:
                count = stack[idx].count
                del stack[idx]
                return count
        return 0

    def _resume_held(self, site: str, count: int) -> None:
        if count <= 0:
            return
        self._note_acquired(site)
        stack = self._threads.stack
        for rec in stack:
            if rec.site == site:
                rec.count = count
                break

    def _note_fork(self) -> None:
        stack = self._threads.stack
        if not stack:
            return
        with self._meta:
            self._anomalies.append(
                {
                    "type": "held_across_fork",
                    "sites": [rec.site for rec in stack],
                    "thread": threading.current_thread().name,
                }
            )

    def _check_cycle_locked(self, edge: tuple[str, str]) -> None:
        """DFS from the new edge's head back to its tail (meta held)."""
        start, target = edge[1], edge[0]
        path = [target, start]
        seen = {start}
        pending: list[tuple[str, list[str]]] = [(start, path)]
        adj: dict[str, list[str]] = {}
        for src, dst in self._edges:
            adj.setdefault(src, []).append(dst)
        while pending:
            node, trail = pending.pop()
            for succ in adj.get(node, ()):  # noqa: B007
                if succ == target:
                    cycle = trail + [target]
                    key = frozenset(cycle)
                    if key not in self._cycle_keys:
                        self._cycle_keys.add(key)
                        self._cycles.append(cycle)
                    return
                if succ not in seen:
                    seen.add(succ)
                    pending.append((succ, trail + [succ]))

    # -- reporting --------------------------------------------------------

    def report(self) -> dict[str, Any]:
        with self._meta:
            return {
                "version": 1,
                "locks": {
                    site: dict(entry) for site, entry in sorted(self._locks.items())
                },
                "edges": [
                    {"from": src, "to": dst, "count": count}
                    for (src, dst), count in sorted(self._edges.items())
                ],
                "cycles": [list(c) for c in self._cycles],
                "anomalies": list(self._anomalies),
            }

    def dump(self, path: str | os.PathLike[str], merge: bool = True) -> dict[str, Any]:
        """Write the report to ``path``; with ``merge=True`` an existing
        report at that path is unioned in (multiple instrumented pytest
        invocations accumulate into one file)."""
        report = self.report()
        if merge and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    previous = json.load(fh)
            except (OSError, ValueError):
                previous = None
            if isinstance(previous, dict):
                report = _merge_reports(previous, report)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return report


class _TrackedLock:
    """Wrapper speaking the full lock protocol, recording order edges."""

    __slots__ = ("_watchdog", "_site", "_inner", "_reentrant")

    def __init__(self, watchdog: LockWatchdog, site: str, inner, reentrant: bool):
        self._watchdog = watchdog
        self._site = site
        self._inner = inner
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watchdog._note_acquired(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._watchdog._note_released(self._site)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<tracked {kind} {self._site} wrapping {self._inner!r}>"

    # RLock internals Condition would use if handed a tracked lock.
    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        self._watchdog._note_acquired(self._site)

    def _release_save(self):
        state = self._inner._release_save()
        self._watchdog._note_released(self._site)
        return state

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


class _TrackedCondition:
    """Condition wrapper: tracks the underlying lock's order edges and
    pauses held-time accounting across ``wait``."""

    __slots__ = ("_watchdog", "_site", "_inner")

    def __init__(self, watchdog: LockWatchdog, site: str, inner):
        self._watchdog = watchdog
        self._site = site
        self._inner = inner

    def acquire(self, *args) -> bool:
        got = self._inner.acquire(*args)
        if got:
            self._watchdog._note_acquired(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._watchdog._note_released(self._site)

    def __enter__(self):
        self._inner.__enter__()
        self._watchdog._note_acquired(self._site)
        return self

    def __exit__(self, *exc):
        result = self._inner.__exit__(*exc)
        self._watchdog._note_released(self._site)
        return result

    def wait(self, timeout: float | None = None) -> bool:
        # The lock is dropped for the duration of the wait: anything
        # acquired by the woken thread is *not* ordered under this
        # condition, and the wait must not count as held time.
        count = self._watchdog._suspend_held(self._site)
        try:
            return self._inner.wait(timeout)
        finally:
            self._watchdog._resume_held(self._site, count)

    def wait_for(self, predicate, timeout: float | None = None):
        count = self._watchdog._suspend_held(self._site)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._watchdog._resume_held(self._site, count)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<tracked Condition {self._site} wrapping {self._inner!r}>"


_FORK_HOOK_DONE = False


def _ensure_fork_hook() -> None:
    """One-time ``before fork`` hook: a fork while locks are held clones
    a locked mutex into the child, where no thread will ever release it.
    Registered lazily (only once instrumentation is first used) and
    dispatched through the active watchdog so uninstall works."""
    global _FORK_HOOK_DONE
    if _FORK_HOOK_DONE or not hasattr(os, "register_at_fork"):
        return
    _FORK_HOOK_DONE = True

    def before_fork() -> None:
        watchdog = _ACTIVE
        if watchdog is not None:
            watchdog._note_fork()

    os.register_at_fork(before=before_fork)


@contextmanager
def watch_locks(
    held_warn_s: float = 10.0, root: str | None = None
) -> Iterator[LockWatchdog]:
    """Instrument lock creation for the duration of the block.

    >>> with watch_locks() as watchdog:
    ...     run_concurrent_things()
    >>> watchdog.dump("lock_order.json")
    """
    watchdog = LockWatchdog(held_warn_s=held_warn_s, root=root)
    watchdog.install()
    try:
        yield watchdog
    finally:
        watchdog.uninstall()


def load_runtime_report(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Parse and validate a ``lock_order.json`` for the lint merge."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "edges" not in data or "locks" not in data:
        raise ValueError(
            f"{path}: not a lock-order report (expected an object with "
            "'locks' and 'edges')"
        )
    for entry in data["edges"]:
        if not isinstance(entry, dict) or "from" not in entry or "to" not in entry:
            raise ValueError(f"{path}: malformed edge entry {entry!r}")
    return data


def _merge_reports(old: dict[str, Any], new: dict[str, Any]) -> dict[str, Any]:
    locks: dict[str, dict[str, Any]] = {}
    for source in (old.get("locks", {}), new.get("locks", {})):
        for site, entry in source.items():
            if site in locks:
                locks[site]["count"] += entry.get("count", 0)
            else:
                locks[site] = dict(entry)
    edges: dict[tuple[str, str], int] = {}
    for source in (old.get("edges", []), new.get("edges", [])):
        for entry in source:
            key = (entry["from"], entry["to"])
            edges[key] = edges.get(key, 0) + entry.get("count", 1)
    cycle_keys: set[frozenset[str]] = set()
    cycles: list[list[str]] = []
    for source in (old.get("cycles", []), new.get("cycles", [])):
        for cycle in source:
            key = frozenset(cycle)
            if key not in cycle_keys:
                cycle_keys.add(key)
                cycles.append(list(cycle))
    return {
        "version": 1,
        "locks": {site: locks[site] for site in sorted(locks)},
        "edges": [
            {"from": src, "to": dst, "count": count}
            for (src, dst), count in sorted(edges.items())
        ],
        "cycles": cycles,
        "anomalies": list(old.get("anomalies", [])) + list(new.get("anomalies", [])),
    }
