"""Runtime lock-order watchdog — the dynamic half of the concurrency
suite.

``watch_locks()`` instruments ``threading.Lock/RLock/Condition`` so
real test runs record the acquisition orders that actually happen; the
report it dumps (``lock_order.json``) feeds back into the static
LOCK-ORDER rule via ``repro lint --runtime-report``.
"""

from __future__ import annotations

from repro.analysis.runtime.watchdog import (
    LockWatchdog,
    active_watchdog,
    load_runtime_report,
    watch_locks,
)

__all__ = [
    "LockWatchdog",
    "active_watchdog",
    "load_runtime_report",
    "watch_locks",
]
