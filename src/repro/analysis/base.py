"""Checker base classes.

A checker owns one rule id. Project-scoped rules (import-graph checks,
cross-module class collection) override :meth:`Checker.check_project`;
the common case subclasses :class:`ModuleChecker` and implements
:meth:`ModuleChecker.check_module` for one parsed file at a time.

Suppression filtering is applied by the engine, not the checker, so a
checker never needs to consult the noqa map itself.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule


class Checker:
    """Base class: one rule, one id, one description."""

    #: Unique upper-case rule id, e.g. ``"RACE-GLOBAL"``.
    rule_id: str = ""
    #: One-line human description for ``repro lint --rules``.
    description: str = ""

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST | None,
        message: str,
        **extra: Any,
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            extra=extra,
        )


class ModuleChecker(Checker):
    """Checker that inspects one module at a time."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project:
            if module.tree is None:
                continue
            yield from self.check_module(module)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last attribute segment: ``obs.span`` → ``span``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


#: Compound statements whose nested bodies can define functions.
_BLOCK_STMTS: tuple[type[ast.stmt], ...] = (
    ast.If,
    ast.Try,
    ast.With,
    ast.For,
    ast.While,
    ast.AsyncWith,
    ast.AsyncFor,
)
if hasattr(ast, "TryStar"):  # 3.11+
    _BLOCK_STMTS = _BLOCK_STMTS + (ast.TryStar,)


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Yield every function with its enclosing class (or ``None``)."""

    def walk(body: list[ast.stmt], cls: ast.ClassDef | None) -> Iterator:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, cls
                yield from walk(node.body, cls)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, node)
            elif isinstance(node, ast.Match):
                for case in node.cases:
                    yield from walk(case.body, cls)
            elif isinstance(node, _BLOCK_STMTS):
                for field_name in ("body", "orelse", "finalbody", "handlers"):
                    sub = getattr(node, field_name, None)
                    if not sub:
                        continue
                    for item in sub:
                        if isinstance(item, ast.ExceptHandler):
                            yield from walk(item.body, cls)
                        elif isinstance(item, ast.stmt):
                            yield from walk([item], cls)

    yield from walk(tree.body, None)


def walk_function_scope(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """``ast.walk(func)``, pruning nested function-definition subtrees.

    Nested ``def``s run in their own scope and are yielded separately by
    :func:`iter_functions`; descending into their bodies here would
    double-report findings and ignore their shadowing parameters. Their
    decorators and argument defaults *do* evaluate in the enclosing
    scope, so those subtrees are kept. Lambdas are not pruned — nothing
    else visits them.
    """
    pending: list[ast.AST] = [func]
    while pending:
        node = pending.pop()
        yield node
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func
        ):
            pending.extend(node.decorator_list)
            pending.extend(node.args.defaults)
            pending.extend(d for d in node.args.kw_defaults if d is not None)
        else:
            pending.extend(ast.iter_child_nodes(node))
