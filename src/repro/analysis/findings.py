"""The :class:`Finding` record every checker emits.

A finding is one rule violation at one source location. Its
``baseline_key`` deliberately omits the line number: baselined findings
survive unrelated edits that shift code up or down, and go stale only
when the offending construct itself changes (message text embeds the
construct, e.g. the variable or class name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Optional machine-readable extras (never part of identity).
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def baseline_key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.path}::{self.rule}::{self.message}"

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
