"""Committed-baseline support: grandfather findings without hiding new ones.

The baseline file is JSON so CI can diff it and humans can review it::

    {
      "version": 1,
      "findings": [
        {"path": "src/repro/x.py", "rule": "NONDET", "message": "..."}
      ]
    }

Matching is by :meth:`repro.analysis.findings.Finding.baseline_key` —
path, rule and message, *not* line — so unrelated edits never churn the
file. ``repro lint --write-baseline`` regenerates it from the current
findings; review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file (bad JSON or wrong shape)."""


def _entry_key(entry: dict) -> str:
    return f"{entry['path']}::{entry['rule']}::{entry['message']}"


def load_baseline(path: str | Path) -> set[str]:
    """Load baseline keys; raises :class:`BaselineError` on bad input."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(f"baseline {path}: expected an object with 'findings'")
    entries = data["findings"]
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    keys: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or not {"path", "rule", "message"} <= set(entry):
            raise BaselineError(
                f"baseline {path}: each finding needs path/rule/message"
            )
        keys.add(_entry_key(entry))
    return keys


def split_baselined(
    findings: Sequence[Finding], baseline_keys: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into ``(new, grandfathered)`` by baseline key."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.baseline_key() in baseline_keys else new).append(finding)
    return new, old


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the baseline file for ``findings``; returns the entry count."""
    entries = sorted(
        {
            (f.path, f.rule, f.message)
            for f in findings
        }
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": r, "message": m} for p, r, m in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
