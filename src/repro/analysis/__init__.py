"""``repro.analysis`` — project-invariant static analysis.

Tests catch regressions in behaviour they exercise; they are blind to
*invariants* — properties every module must hold for the system to be
trustworthy under concurrency and measurement. Two shipped defects
motivated this package: a module-global MinHash scratch buffer that
raced under ``DistributedStratifier`` threads (flaking, not failing),
and a ``Tracer.__len__`` that made an empty tracer falsy and silently
disabled ``if tracer:`` guards in worker paths. Both are visible to an
AST walk in milliseconds.

The package is zero-dependency (stdlib ``ast`` only) and ships as the
``repro lint`` CLI subcommand::

    PYTHONPATH=src python -m repro lint src/ tests/
    PYTHONPATH=src python -m repro lint --format json --baseline .lint-baseline.json src/

Rule catalogue (see ``docs/static-analysis.md``):

============== =========================================================
RACE-GLOBAL    module-level mutable state mutated inside functions of
               thread/worker-shared modules (``repro.perf.*``,
               ``repro.stratify.distributed``, ``repro.cluster.*``)
TRUTHY-SIZED   truth-testing instances of ``repro`` classes that define
               ``__len__`` without ``__bool__``
SILENT-EXCEPT  bare/broad ``except`` whose body neither re-raises nor
               logs through :mod:`repro.obs.log`
KERNEL-ORACLE  every kernel module in ``src/repro/perf/`` needs a parity
               test under ``tests/perf/`` that imports it
NONDET         unseeded legacy ``random``/``np.random`` global-state
               calls; wall-clock reads inside kernel/optimizer modules
SPAN-COVERAGE  public stage entry points and engine ``run_job``/
               ``profile`` paths must emit an ``obs`` span
============== =========================================================

Findings are suppressed inline with ``# repro: noqa[RULE-ID]`` (on the
flagged line or the line above) or grandfathered via a committed JSON
baseline; both mechanisms are themselves covered by ``tests/analysis``.
"""

from __future__ import annotations

from repro.analysis.base import Checker, ModuleChecker
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import all_checkers, analyze_paths, analyze_project
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Checker",
    "ModuleChecker",
    "Finding",
    "Project",
    "SourceModule",
    "all_checkers",
    "analyze_paths",
    "analyze_project",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_text",
]
