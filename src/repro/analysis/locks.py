"""Shared lock model for the concurrency rules.

Three checkers (LOCK-ORDER, LOCK-LEAK, GUARD-CONSISTENCY) need the same
two ingredients, so they live here once:

- **Lock discovery** — which attributes of a class (or bindings of a
  module) are ``threading.Lock`` / ``RLock`` / ``Condition`` /
  ``Semaphore`` objects. Recognised forms: ``self._x = threading.Lock()``
  in any method, dataclass ``field(default_factory=threading.Lock)``
  class-level declarations, and module-level ``_LOCK = threading.Lock()``
  assignments.
- **Held-context walking** — a statement-ordered walk of one function
  that tracks which locks are held at every node: ``with self._lock:``
  nesting, bare ``acquire()``/``release()`` pairs tracked linearly
  within a block, local aliases (``lifecycle = self._lifecycle`` or
  ``getattr(self, "_lifecycle", None)``), and the repo's documented
  ``*_locked`` naming convention (a method whose name ends in
  ``_locked`` is specified as *called with the lock already held*, so
  it walks with an ambient guard).

Nested ``def`` bodies are pruned exactly as
:func:`repro.analysis.base.walk_function_scope` does — they run in
their own scope/time and are visited separately by ``iter_functions``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.base import dotted_name, terminal_name
from repro.analysis.project import SourceModule

__all__ = [
    "AMBIENT_GUARD",
    "LOCKED_SUFFIX",
    "LOCK_FACTORIES",
    "REENTRANT_KINDS",
    "ClassLockInfo",
    "HeldEvent",
    "LockDef",
    "collect_class_locks",
    "collect_module_locks",
    "iter_with_held",
    "lock_call_kind",
]

#: ``threading`` constructors whose result is a lock worth tracking.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Kinds that may be re-acquired by the owning thread without deadlock
#: (``Condition()`` wraps an RLock by default).
REENTRANT_KINDS = {"RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Repo convention: a method named ``*_locked`` is called with the
#: class lock already held — it walks under this synthetic guard.
LOCKED_SUFFIX = "_locked"
AMBIENT_GUARD = "<caller-held>"

#: Methods whose unguarded accesses are initialization/teardown, not
#: shared-state races: the object is not yet (or no longer) published.
INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__del__"})


def lock_call_kind(node: ast.expr) -> str | None:
    """``threading.Lock()`` / bare ``RLock()`` → its kind, else None."""
    if not isinstance(node, ast.Call):
        return None
    term = terminal_name(node.func)
    if term not in LOCK_FACTORIES:
        return None
    dotted = dotted_name(node.func)
    if dotted in (term, f"threading.{term}"):
        return term
    return None


def _field_default_factory_kind(node: ast.expr) -> str | None:
    """``field(default_factory=threading.Lock)`` → ``"Lock"``."""
    if not isinstance(node, ast.Call) or terminal_name(node.func) != "field":
        return None
    for kw in node.keywords:
        if kw.arg != "default_factory":
            continue
        term = terminal_name(kw.value)
        if term in LOCK_FACTORIES:
            dotted = dotted_name(kw.value)
            if dotted in (term, f"threading.{term}"):
                return term
    return None


@dataclass(frozen=True)
class LockDef:
    """One lock object's definition site."""

    owner: str  # class name, or "" for a module-level lock
    attr: str  # attribute name (or module binding name)
    kind: str  # "Lock" | "RLock" | "Condition" | ...
    path: str  # repo-relative file
    line: int  # definition line

    @property
    def site(self) -> str:
        """``path:line`` — the join key with the runtime watchdog,
        whose wrappers record the same creation site."""
        return f"{self.path}:{self.line}"

    @property
    def display(self) -> str:
        return f"{self.owner}.{self.attr}" if self.owner else self.attr


@dataclass
class ClassLockInfo:
    """Locks, methods and constructor-resolved attribute types of one class."""

    name: str
    node: ast.ClassDef
    locks: dict[str, LockDef] = field(default_factory=dict)
    #: method name → def node (top-level methods only).
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: ``self.attr = SomeClass(...)`` → attr → "SomeClass" (resolved to a
    #: real class, when unambiguous, by the LOCK-ORDER delegation pass).
    attr_types: dict[str, str] = field(default_factory=dict)


def collect_class_locks(module: SourceModule) -> dict[str, ClassLockInfo]:
    """Top-level classes of ``module`` that own at least one lock-shaped
    attribute (classes without locks are omitted — nothing to check)."""
    assert module.tree is not None
    out: dict[str, ClassLockInfo] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = ClassLockInfo(name=stmt.name, node=stmt)
        for item in stmt.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.setdefault(item.name, item)
            # Dataclass-style: `_lock: threading.RLock = field(default_factory=...)`
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                if isinstance(item.target, ast.Name):
                    kind = _field_default_factory_kind(item.value) or lock_call_kind(
                        item.value
                    )
                    if kind is not None:
                        info.locks[item.target.id] = LockDef(
                            owner=stmt.name,
                            attr=item.target.id,
                            kind=kind,
                            path=module.relpath,
                            line=item.lineno,
                        )
        for method in info.methods.values():
            for node in ast.walk(method):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    kind = lock_call_kind(value)
                    if kind is not None:
                        info.locks.setdefault(
                            target.attr,
                            LockDef(
                                owner=stmt.name,
                                attr=target.attr,
                                kind=kind,
                                path=module.relpath,
                                line=node.lineno,
                            ),
                        )
                    elif isinstance(value, ast.Call):
                        ctor = terminal_name(value.func)
                        if ctor and ctor[:1].isupper():
                            info.attr_types.setdefault(target.attr, ctor)
        if info.locks:
            out[stmt.name] = info
    return out


def collect_module_locks(module: SourceModule) -> dict[str, LockDef]:
    """Module-level ``NAME = threading.Lock()`` bindings."""
    assert module.tree is not None
    out: dict[str, LockDef] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        kind = lock_call_kind(value)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = LockDef(
                    owner="",
                    attr=target.id,
                    kind=kind,
                    path=module.relpath,
                    line=stmt.lineno,
                )
    return out


@dataclass(frozen=True)
class HeldEvent:
    """One walked node plus the locks held when control reaches it.

    ``kind`` is ``"node"`` for ordinary nodes and ``"acquire"`` at the
    exact point a lock is taken (``with`` item or bare ``acquire()``)
    — ``lock`` then names the key being acquired and ``held`` is the
    set held *before* it."""

    kind: str
    node: ast.AST
    held: tuple[str, ...]
    lock: str | None = None


#: Module-level lock keys are prefixed so they cannot collide with
#: attribute names.
_MODULE_KEY = "::"


def iter_with_held(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_attrs: frozenset[str] | set[str] = frozenset(),
    module_locks: frozenset[str] | set[str] = frozenset(),
    ambient: bool | None = None,
) -> Iterator[HeldEvent]:
    """Walk ``func`` in statement order, tracking held locks.

    ``lock_attrs`` are the owning class's lock attribute names (matched
    as ``self.X``); ``module_locks`` are module-level lock bindings.
    ``ambient=None`` applies the ``*_locked`` naming convention;
    pass True/False to force it.
    """
    if ambient is None:
        ambient = func.name.endswith(LOCKED_SUFFIX)
    aliases: dict[str, str] = {}

    def lock_key(expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            return expr.attr
        if isinstance(expr, ast.Name):
            if expr.id in aliases:
                return aliases[expr.id]
            if expr.id in module_locks:
                return _MODULE_KEY + expr.id
        return None

    def note_alias(stmt: ast.stmt) -> None:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            return
        name = stmt.targets[0].id
        key = lock_key(stmt.value)
        if key is None and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                terminal_name(call.func) == "getattr"
                and len(call.args) >= 2
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id == "self"
                and isinstance(call.args[1], ast.Constant)
                and call.args[1].value in lock_attrs
            ):
                key = call.args[1].value
        if key is not None:
            aliases[name] = key
        else:
            aliases.pop(name, None)

    def acquire_release_key(stmt: ast.stmt, method: str) -> str | None:
        """Key of ``X.acquire()`` / ``X.release()`` expression (or
        assignment-from-acquire) statements, for linear tracking."""
        value: ast.expr | None = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == method
        ):
            return lock_key(value.func.value)
        return None

    def yield_expr(node: ast.AST, held: tuple[str, ...]) -> Iterator[HeldEvent]:
        for sub in ast.walk(node):
            yield HeldEvent("node", sub, held)

    def walk_body(body: list[ast.stmt], held: tuple[str, ...]) -> Iterator[HeldEvent]:
        running = list(held)
        for stmt in body:
            note_alias(stmt)
            acquired = acquire_release_key(stmt, "acquire")
            if acquired is not None:
                yield HeldEvent("acquire", stmt, tuple(running), lock=acquired)
            yield from walk_stmt(stmt, tuple(running))
            if acquired is not None and acquired not in running:
                running.append(acquired)
            released = acquire_release_key(stmt, "release")
            if released is not None and released in running:
                running.remove(released)

    def walk_stmt(stmt: ast.stmt, held: tuple[str, ...]) -> Iterator[HeldEvent]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested scope: only decorators/defaults evaluate here (and
            # under these locks); the body is visited by iter_functions.
            for dec in stmt.decorator_list:
                yield from yield_expr(dec, held)
            for default in stmt.args.defaults:
                yield from yield_expr(default, held)
            for default in stmt.args.kw_defaults:
                if default is not None:
                    yield from yield_expr(default, held)
            return
        if isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                yield from yield_expr(dec, held)
            yield from walk_body(stmt.body, held)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = list(held)
            for item in stmt.items:
                yield from yield_expr(item.context_expr, tuple(entered))
                if item.optional_vars is not None:
                    yield from yield_expr(item.optional_vars, tuple(entered))
                key = lock_key(item.context_expr)
                if key is not None:
                    yield HeldEvent("acquire", item.context_expr, tuple(entered), lock=key)
                    if key not in entered:
                        entered.append(key)
            yield from walk_body(stmt.body, tuple(entered))
            return
        if isinstance(stmt, (ast.If, ast.While)):
            yield from yield_expr(stmt.test, held)
            yield from walk_body(stmt.body, held)
            yield from walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield from yield_expr(stmt.target, held)
            yield from yield_expr(stmt.iter, held)
            yield from walk_body(stmt.body, held)
            yield from walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            yield from walk_body(stmt.body, held)
            for handler in stmt.handlers:
                if handler.type is not None:
                    yield from yield_expr(handler.type, held)
                yield from walk_body(handler.body, held)
            yield from walk_body(stmt.orelse, held)
            yield from walk_body(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Match):
            yield from yield_expr(stmt.subject, held)
            for case in stmt.cases:
                if case.guard is not None:
                    yield from yield_expr(case.guard, held)
                yield from walk_body(case.body, held)
            return
        # Simple statement: no nested statements, yield the whole subtree.
        yield from yield_expr(stmt, held)

    start: tuple[str, ...] = (AMBIENT_GUARD,) if ambient else ()
    yield from walk_body(func.body, start)
