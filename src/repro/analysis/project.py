"""Source discovery and per-file parsing for the analysis engine.

A :class:`SourceModule` bundles what every checker needs — text, AST,
dotted module name and the ``# repro: noqa[...]`` suppression map — so
each file is read and parsed exactly once per run. A :class:`Project`
is the whole scanned set; project-scoped checkers (import-graph rules
like KERNEL-ORACLE, or class collection for TRUTHY-SIZED) see all
modules at once.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[RULE-A,RULE-B]``.
#: The bracket group matches even when empty so ``noqa[]`` is seen as a
#: malformed targeted suppression, not a blanket one.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\- ]*)\])?", re.IGNORECASE
)

#: Directories never scanned, wherever they appear. Includes the
#: artifact/temp dirs the benchmarks and CI legs drop next to their
#: JSON outputs (obs-smoke-artifacts, results, artifacts) — stray
#: generated .py files there must not slow the scan or pollute it
#: with unfixable findings.
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".tox",
    ".eggs",
    ".venv",
    "venv",
    "node_modules",
    "build",
    "dist",
    "results",
    "artifacts",
    "obs-smoke-artifacts",
}

#: Directory-name suffixes treated like SKIP_DIRS (setuptools metadata,
#: `foo.egg-info/`, and scratch dirs like `bench.tmp/`).
SKIP_DIR_SUFFIXES = (".egg-info", ".tmp")


def parse_noqa(lines: list[str]) -> dict[int, frozenset[str] | None]:
    """Map 1-based line number → suppressed rule ids (``None`` = all).

    A suppression applies to findings anchored on its own line *and*
    the line below, so multi-line statements and decorated definitions
    can carry the comment above the flagged node.
    """
    out: dict[int, frozenset[str] | None] = {}
    for idx, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[idx] = None
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            if not ids:
                # Malformed targeted suppression (`noqa[]`, `noqa[,]`):
                # suppress nothing rather than silently widening to all.
                continue
            out[idx] = ids
    return out


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/perf/minhash_kernels.py`` → ``repro.perf.minhash_kernels``;
    ``tests/perf/test_fpm_kernels.py`` → ``tests.perf.test_fpm_kernels``.
    Unknown layouts fall back to the path with separators dotted.
    """
    parts = Path(relpath).parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    parts = parts[:-1] + (last,)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class SourceModule:
    """One parsed source file."""

    relpath: str
    text: str
    lines: list[str] = field(default_factory=list)
    tree: ast.Module | None = None
    syntax_error: SyntaxError | None = None
    noqa: dict[int, frozenset[str] | None] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return module_name_for(self.relpath)

    @classmethod
    def from_source(cls, text: str, relpath: str = "<string>") -> "SourceModule":
        """Build a module from in-memory source (fixture tests use this)."""
        lines = text.splitlines()
        tree: ast.Module | None = None
        error: SyntaxError | None = None
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            error = exc
        return cls(
            relpath=relpath,
            text=text,
            lines=lines,
            tree=tree,
            syntax_error=error,
            noqa=parse_noqa(lines),
        )

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "SourceModule":
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls.from_source(path.read_text(encoding="utf-8"), relpath)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for probe in (line, line - 1):
            rules = self.noqa.get(probe, "missing")
            if rules is None:
                return True
            if isinstance(rules, frozenset) and rule.upper() in rules:
                return True
        return False


@dataclass
class Project:
    """Every module under analysis, plus the root they are relative to."""

    modules: list[SourceModule]
    root: Path = field(default_factory=Path.cwd)

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    @property
    def num_modules(self) -> int:
        return len(self.modules)

    def module(self, relpath: str) -> SourceModule | None:
        for mod in self.modules:
            if mod.relpath == relpath:
                return mod
        return None

    def by_name_prefix(self, prefix: str) -> list[SourceModule]:
        return [
            m
            for m in self.modules
            if m.name == prefix or m.name.startswith(prefix + ".")
        ]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under each path (files pass through as-is)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            if any(
                part in SKIP_DIRS or part.endswith(SKIP_DIR_SUFFIXES)
                for part in sub.parts[:-1]
            ):
                continue
            yield sub


def load_project(paths: Iterable[Path], root: Path | None = None) -> Project:
    root = Path.cwd() if root is None else root
    modules = [SourceModule.from_path(p, root) for p in iter_python_files(paths)]
    return Project(modules=modules, root=root)
