"""Text and JSON rendering of an analysis run."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding

#: Schema version of the ``--format json`` payload; bump on breaking
#: changes so CI consumers can pin.
REPORT_SCHEMA_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one run produced, pre-filtered by the engine."""

    findings: list[Finding]
    suppressed: int = 0
    baselined: int = 0
    files_scanned: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def render_text(report: AnalysisReport) -> str:
    lines = [f.render() for f in sorted(report.findings)]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} "
        f"({report.files_scanned} files, {report.suppressed} suppressed, "
        f"{report.baselined} baselined)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "version": REPORT_SCHEMA_VERSION,
        "rules": list(report.rules),
        "findings": [f.to_dict() for f in sorted(report.findings)],
        "summary": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
        },
    }
    return json.dumps(payload, indent=2)


def render_rules(rules: Sequence[tuple[str, str]]) -> str:
    width = max((len(rule) for rule, _ in rules), default=0)
    return "\n".join(f"{rule.ljust(width)}  {desc}" for rule, desc in rules)
