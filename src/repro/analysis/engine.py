"""The analysis driver: load → check → suppress → baseline → report.

Checkers never see the noqa map or the baseline; the engine applies
both filters after collection so suppression semantics are uniform
across rules (and testable in one place). Unparseable files surface as
``SYNTAX-ERROR`` findings rather than crashing the run — a file the
linter cannot read is a finding, not an excuse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Checker
from repro.analysis.baseline import split_baselined
from repro.analysis.checkers import (
    GuardConsistencyChecker,
    KernelOracleChecker,
    LockLeakChecker,
    LockOrderChecker,
    NondetChecker,
    RaceGlobalChecker,
    SilentExceptChecker,
    SpanCoverageChecker,
    TruthySizedChecker,
)
from repro.analysis.findings import Finding
from repro.analysis.project import Project, load_project
from repro.analysis.reporters import AnalysisReport

SYNTAX_RULE = "SYNTAX-ERROR"


def all_checkers(runtime_report: dict | None = None) -> list[Checker]:
    """The shipped rule set, in catalogue order.

    ``runtime_report`` is a parsed ``lock_order.json`` from
    ``repro.analysis.runtime``; LOCK-ORDER merges its observed
    acquisition edges into the static graph.
    """
    return [
        RaceGlobalChecker(),
        TruthySizedChecker(),
        SilentExceptChecker(),
        KernelOracleChecker(),
        NondetChecker(),
        SpanCoverageChecker(),
        LockOrderChecker(runtime_report=runtime_report),
        LockLeakChecker(),
        GuardConsistencyChecker(),
    ]


def analyze_project(
    project: Project,
    checkers: Sequence[Checker] | None = None,
    baseline_keys: set[str] | None = None,
) -> AnalysisReport:
    checkers = list(all_checkers()) if checkers is None else list(checkers)
    findings: list[Finding] = []
    for module in project:
        if module.syntax_error is not None:
            err = module.syntax_error
            findings.append(
                Finding(
                    path=module.relpath,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    rule=SYNTAX_RULE,
                    message=f"file does not parse: {err.msg}",
                )
            )
    for checker in checkers:
        findings.extend(checker.check_project(project))

    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        module = project.module(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = 0
    if baseline_keys:
        kept, grandfathered = split_baselined(kept, baseline_keys)
        baselined = len(grandfathered)

    return AnalysisReport(
        findings=sorted(kept),
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=project.num_modules,
        rules=[c.rule_id for c in checkers],
    )


def analyze_paths(
    paths: Iterable[str | Path],
    checkers: Sequence[Checker] | None = None,
    baseline_keys: set[str] | None = None,
    root: Path | None = None,
) -> AnalysisReport:
    project = load_project([Path(p) for p in paths], root=root)
    return analyze_project(project, checkers=checkers, baseline_keys=baseline_keys)
