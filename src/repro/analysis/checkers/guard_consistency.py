"""GUARD-CONSISTENCY: instance state guarded in one method, bare in
another.

RACE-GLOBAL watches module-level state; everything PRs 7–8 added —
queue depths, tenant ledgers, prepared-scenario caches, telemetry
sequence numbers — is *instance* state shared across threads. The
tell-tale inconsistency: a class that writes ``self._x`` under its
lock in one method but reads or writes the same ``self._x`` with no
lock in another. Either the lock is load-bearing (then the bare access
is a race: torn reads, lost updates, stale snapshots) or it isn't
(then it's noise that hides the real guarded set). Both deserve a
finding.

Mechanics: for each class owning a ``threading`` lock, every
``self.<attr>`` access in every method is classified as guarded (any
lock held at that point) or bare. Attributes with at least one guarded
*write* outside ``__init__`` are tracked; any bare access to a tracked
attribute in a non-init method fires, once per (attribute, method).

What does not fire:

- ``__init__``/``__post_init__``/``__new__``/``__del__`` — the object
  is not yet (or no longer) shared, so bare accesses there are fine,
  and guarded writes there do not make an attribute tracked.
- Methods named ``*_locked`` — the repo's convention for "called with
  the lock held"; their accesses count as guarded (the convention is
  the guard).
- Helper methods whose every intra-class call site is itself guarded —
  the one-hop promotion that keeps ``_touch``/``_evict_over_limit``
  style helpers (called only from ``*_locked`` bodies) clean without a
  rename.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.base import ModuleChecker
from repro.analysis.checkers.race_global import MUTATING_METHODS
from repro.analysis.findings import Finding
from repro.analysis.locks import (
    INIT_METHODS,
    LOCKED_SUFFIX,
    collect_class_locks,
    collect_module_locks,
    iter_with_held,
)
from repro.analysis.project import SourceModule


@dataclass
class _Access:
    attr: str
    method: str
    guarded: bool
    is_write: bool
    node: ast.AST


@dataclass
class _MethodScan:
    accesses: list[_Access] = field(default_factory=list)
    #: guardedness of every intra-class ``self.m()`` call site, by callee.
    call_sites: dict[str, list[bool]] = field(default_factory=dict)


class GuardConsistencyChecker(ModuleChecker):
    rule_id = "GUARD-CONSISTENCY"
    description = (
        "instance attribute written under a lock in one method but "
        "accessed bare in another method of the same class"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        assert module.tree is not None
        class_infos = collect_class_locks(module)
        if not class_infos:
            return
        module_locks = frozenset(collect_module_locks(module))

        for info in class_infos.values():
            scans: dict[str, _MethodScan] = {}
            for name, method in info.methods.items():
                scans[name] = self._scan_method(info, module_locks, method)

            # One-hop promotion: a method is effectively guarded if every
            # intra-class call site of it holds a lock (and there is at
            # least one such call site to vouch for it).
            promoted: set[str] = set()
            callers: dict[str, list[bool]] = {}
            for scan in scans.values():
                for callee, guards in scan.call_sites.items():
                    callers.setdefault(callee, []).extend(guards)
            for name, guards in callers.items():
                if name in scans and guards and all(guards):
                    promoted.add(name)

            tracked: set[str] = set()
            for name, scan in scans.items():
                if name in INIT_METHODS:
                    continue
                ambient = name in promoted
                for access in scan.accesses:
                    if access.is_write and (access.guarded or ambient):
                        tracked.add(access.attr)
            if not tracked:
                continue

            seen: set[tuple[str, str]] = set()
            for name, scan in sorted(scans.items()):
                if name in INIT_METHODS or name in promoted:
                    continue
                for access in scan.accesses:
                    if access.guarded or access.attr not in tracked:
                        continue
                    key = (access.attr, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    verb = "written" if access.is_write else "read"
                    yield self.finding(
                        module,
                        access.node,
                        f"'{info.name}.{access.attr}' is written under a lock "
                        f"elsewhere but {verb} with no lock in "
                        f"{info.name}.{name}() — guard it, or mark the method "
                        f"caller-locked with the '{LOCKED_SUFFIX}' suffix",
                    )

    def _scan_method(
        self,
        info,
        module_locks: frozenset[str],
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> _MethodScan:
        scan = _MethodScan()
        seen_nodes: set[int] = set()
        writes: set[int] = set()
        # Writes the Attribute node's own ctx can't show: AugAssign
        # (`self._n += 1`), container stores (`self._d[k] = v`,
        # `del self._d[k]`) and mutating method calls
        # (`self._d.pop(k)`) all mutate the attribute's value.
        def is_self_attr(node: ast.AST) -> bool:
            return (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            )

        for node in ast.walk(method):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                writes.add(id(node.target))
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if is_self_attr(node.value):
                    writes.add(id(node.value))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and is_self_attr(node.func.value)
            ):
                writes.add(id(node.func.value))

        for event in iter_with_held(
            method,
            lock_attrs=frozenset(info.locks),
            module_locks=module_locks,
        ):
            node = event.node
            if event.kind != "node" or id(node) in seen_nodes:
                continue
            seen_nodes.add(id(node))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in info.methods
            ):
                scan.call_sites.setdefault(node.func.attr, []).append(
                    bool(event.held)
                )
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                continue
            attr = node.attr
            if attr in info.locks or attr in info.methods:
                continue
            is_write = isinstance(node.ctx, (ast.Store, ast.Del)) or id(node) in writes
            scan.accesses.append(
                _Access(
                    attr=attr,
                    method=method.name,
                    guarded=bool(event.held),
                    is_write=is_write,
                    node=node,
                )
            )
        return scan
