"""NONDET: hidden nondeterminism in code whose output feeds measurements.

The reproduction's claims rest on bit-reproducible runs: stratification
must yield the same strata for the same seed, kernels must be
bit-identical to their oracles, and benchmark numbers must be stable
across re-runs. Two constructs quietly break that:

- **Legacy global-state RNG calls.** ``random.random()`` /
  ``np.random.rand()`` and friends draw from interpreter-global streams
  that any import or thread can perturb. The repo standard is an
  explicit seeded generator — ``np.random.default_rng(seed)`` or
  ``random.Random(seed)`` — threaded through call sites.
- **Wall-clock reads in kernel/optimizer code.** ``time.time()`` inside
  a kernel or the Pareto optimizer makes results depend on when they
  ran; timing belongs in the engines and the bench harness, which
  measure *around* the deterministic core.

Flagged: calls through the ``random`` module's global functions
(``random.Random``/``SystemRandom`` instances are fine), names imported
from ``random`` directly (``from random import choice``), legacy
``np.random.*`` global-API calls (``default_rng``/``Generator``/
``SeedSequence``/bit generators are fine), unseeded
``np.random.RandomState()``, and — only inside the kernel/optimizer
module scope — ``time.*``/``datetime.now`` clock reads.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

from repro.analysis.base import ModuleChecker, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.project import SourceModule

#: Legacy stdlib-random global functions (module-level state).
_STDLIB_LEGACY = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
    "setstate",
    "getstate",
}

#: Legacy numpy global-API functions (np.random.<fn> on the shared state).
_NUMPY_LEGACY = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "random_integers",
    "ranf",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "beta",
    "binomial",
    "poisson",
    "exponential",
    "gamma",
    "bytes",
    "get_state",
    "set_state",
}

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: Modules where results feed assertions/caches, so clocks are banned.
DEFAULT_CLOCK_SCOPE_PREFIXES = ("repro.perf",)
DEFAULT_CLOCK_SCOPE_MODULES = (
    "repro.core.optimizer",
    "repro.core.pareto",
    "repro.core.budget",
)


def default_clock_scope(name: str) -> bool:
    if name in DEFAULT_CLOCK_SCOPE_MODULES:
        return True
    return any(
        name == p or name.startswith(p + ".") for p in DEFAULT_CLOCK_SCOPE_PREFIXES
    )


class NondetChecker(ModuleChecker):
    rule_id = "NONDET"
    description = (
        "unseeded legacy random/np.random global-state call, or wall-clock "
        "read inside kernel/optimizer code (breaks bit-reproducibility)"
    )

    def __init__(self, clock_scope: Callable[[str], bool] | None = None):
        self.clock_scope = clock_scope or default_clock_scope

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        assert module.tree is not None
        # Names bound by `from random import choice` style imports.
        from_random: set[str] = set()
        random_aliases = {"random"}
        numpy_random_aliases = {"np.random", "numpy.random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or alias.name)
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _STDLIB_LEGACY:
                        from_random.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "numpy",
                "numpy.random",
            ):
                for alias in node.names:
                    if node.module == "numpy" and alias.name == "random":
                        numpy_random_aliases.add(alias.asname or alias.name)
                    elif node.module == "numpy.random" and alias.name in _NUMPY_LEGACY:
                        from_random.add(alias.asname or alias.name)

        clock_scoped = self.clock_scope(module.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            yield from self._check_call(
                module,
                node,
                dotted,
                from_random,
                random_aliases,
                numpy_random_aliases,
                clock_scoped,
            )

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        dotted: str,
        from_random: set[str],
        random_aliases: set[str],
        numpy_random_aliases: set[str],
        clock_scoped: bool,
    ) -> Iterable[Finding]:
        head, _, tail = dotted.rpartition(".")
        if head in random_aliases and tail in _STDLIB_LEGACY:
            yield self.finding(
                module,
                node,
                f"legacy global-state RNG call {dotted}() — use an explicit "
                "seeded random.Random(seed) instance",
            )
        elif not head and dotted in from_random:
            yield self.finding(
                module,
                node,
                f"legacy global-state RNG call {dotted}() (imported from "
                "random) — use an explicit seeded random.Random(seed) instance",
            )
        elif head in numpy_random_aliases and tail in _NUMPY_LEGACY:
            yield self.finding(
                module,
                node,
                f"legacy numpy global-state RNG call {dotted}() — use "
                "np.random.default_rng(seed) and pass the Generator through",
            )
        elif head in numpy_random_aliases and tail == "RandomState" and not (
            node.args or node.keywords
        ):
            yield self.finding(
                module,
                node,
                "unseeded np.random.RandomState() — seed it, or prefer "
                "np.random.default_rng(seed)",
            )
        elif clock_scoped and dotted in _CLOCK_CALLS:
            yield self.finding(
                module,
                node,
                f"wall-clock read {dotted}() inside kernel/optimizer code — "
                "results here feed assertions and caches; measure time in the "
                "engine/bench layer instead",
            )
