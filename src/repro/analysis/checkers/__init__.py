"""The shipped rule set — one module per rule."""

from __future__ import annotations

from repro.analysis.checkers.kernel_oracle import KernelOracleChecker
from repro.analysis.checkers.nondet import NondetChecker
from repro.analysis.checkers.race_global import RaceGlobalChecker
from repro.analysis.checkers.silent_except import SilentExceptChecker
from repro.analysis.checkers.span_coverage import SpanCoverageChecker
from repro.analysis.checkers.truthy_sized import TruthySizedChecker

__all__ = [
    "KernelOracleChecker",
    "NondetChecker",
    "RaceGlobalChecker",
    "SilentExceptChecker",
    "SpanCoverageChecker",
    "TruthySizedChecker",
]
