"""The shipped rule set — one module per rule."""

from __future__ import annotations

from repro.analysis.checkers.guard_consistency import GuardConsistencyChecker
from repro.analysis.checkers.kernel_oracle import KernelOracleChecker
from repro.analysis.checkers.lock_leak import LockLeakChecker
from repro.analysis.checkers.lock_order import LockOrderChecker
from repro.analysis.checkers.nondet import NondetChecker
from repro.analysis.checkers.race_global import RaceGlobalChecker
from repro.analysis.checkers.silent_except import SilentExceptChecker
from repro.analysis.checkers.span_coverage import SpanCoverageChecker
from repro.analysis.checkers.truthy_sized import TruthySizedChecker

__all__ = [
    "GuardConsistencyChecker",
    "KernelOracleChecker",
    "LockLeakChecker",
    "LockOrderChecker",
    "NondetChecker",
    "RaceGlobalChecker",
    "SilentExceptChecker",
    "SpanCoverageChecker",
    "TruthySizedChecker",
]
