"""RACE-GLOBAL: module-level mutable state mutated in shared modules.

The PR 2 regression this rule re-detects: the MinHash batch kernel
cached its scratch blocks in a module-level slot and wrote into them
via ``out=``; when ``DistributedStratifier`` sketched from several
threads the slots were shared and hashes were corrupted — a flake, not
a failure. The fix (``threading.local()``) is invisible to this rule:
``threading.local()`` is not a tracked mutable constructor, so
attribute writes on it never fire.

Scope: modules imported by thread or worker entry points —
``repro.perf.*`` kernels (called from distributed stratifier threads
and pool workers), ``repro.stratify.distributed``, and
``repro.cluster.*``. A module-level ``list``/``dict``/``set``/
``bytearray``/ndarray binding in one of those modules is flagged
wherever a function mutates it: mutating method calls, subscript or
attribute stores, augmented assignment, or use as a numpy ``out=``
target. ``global`` rebinding is flagged for *any* module-level binding,
mutable-valued or not — the historical race was a check-then-set
around exactly such an immutable key slot.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

from repro.analysis.base import (
    ModuleChecker,
    dotted_name,
    iter_functions,
    terminal_name,
    walk_function_scope,
)
from repro.analysis.findings import Finding
from repro.analysis.project import SourceModule

#: Module-name predicates for thread/worker-shared code.
DEFAULT_SHARED_PREFIXES = ("repro.perf", "repro.cluster")
DEFAULT_SHARED_MODULES = ("repro.stratify.distributed",)

#: Constructor names whose result is mutable shared state worth tracking.
_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}
_NDARRAY_CALLS = {"empty", "zeros", "ones", "full", "array", "arange", "empty_like", "zeros_like"}

MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "sort",
    "reverse",
    "fill",
    "resize",
    "sort_values",
}


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        term = terminal_name(node.func)
        if term in _MUTABLE_CALLS:
            return True
        if name and term in _NDARRAY_CALLS:
            head = name.split(".", 1)[0]
            if head in ("np", "numpy"):
                return True
    return False


def default_shared_module(name: str) -> bool:
    if name in DEFAULT_SHARED_MODULES:
        return True
    return any(
        name == p or name.startswith(p + ".") for p in DEFAULT_SHARED_PREFIXES
    )


class RaceGlobalChecker(ModuleChecker):
    rule_id = "RACE-GLOBAL"
    description = (
        "module-level mutable state (list/dict/set/ndarray) mutated inside "
        "functions of thread/worker-shared modules"
    )

    def __init__(self, module_predicate: Callable[[str], bool] | None = None):
        self.module_predicate = module_predicate or default_shared_module

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.tree is None or not self.module_predicate(module.name):
            return
        tracked: dict[str, int] = {}
        module_level: dict[str, int] = {}
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            mutable = _is_mutable_value(value)
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    module_level.setdefault(target.id, stmt.lineno)
                    if mutable:
                        tracked[target.id] = stmt.lineno
        if not module_level:
            return

        for func, cls in iter_functions(module.tree):
            where = f"{cls.name}.{func.name}" if cls is not None else func.name
            yield from self._check_function(
                module, func, where, tracked, module_level
            )

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        where: str,
        tracked: dict[str, int],
        module_level: dict[str, int],
    ) -> Iterable[Finding]:
        # Names shadowed by parameters are local, not the module global.
        params = {a.arg for a in func.args.args + func.args.posonlyargs + func.args.kwonlyargs}
        if func.args.vararg:
            params.add(func.args.vararg.arg)
        if func.args.kwarg:
            params.add(func.args.kwarg.arg)
        live = {n for n in tracked if n not in params}
        # `global NAME` rebinds shared state even when the bound value is
        # immutable: the check-then-set around it is the race (the PR 2
        # scratch cache raced on exactly such a key slot).
        rebindable = {n for n in module_level if n not in params}
        if not live and not rebindable:
            return

        def hit(node: ast.AST, name: str, how: str) -> Finding:
            declared = tracked.get(name, module_level.get(name, 0))
            kind = "mutable" if name in tracked else "binding"
            return self.finding(
                module,
                node,
                f"module-level {kind} '{name}' (defined line {declared}) "
                f"is {how} in {where}(); thread/worker-shared modules must not "
                "mutate module globals — use threading.local() or pass state in",
                declared_line=declared,
            )

        # walk_function_scope prunes nested def bodies: iter_functions
        # visits them separately, with their own shadowing parameters.
        for node in walk_function_scope(func):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name in rebindable:
                        yield hit(node, name, "rebound via 'global'")
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in live
                ):
                    yield hit(node, node.func.value.id, f"mutated via .{node.func.attr}()")
                for kw in node.keywords:
                    if (
                        kw.arg == "out"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in live
                    ):
                        yield hit(node, kw.value.id, "written via out=")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    base = target
                    how = "rebound"
                    if isinstance(target, ast.Subscript):
                        base = target.value
                        how = "mutated via subscript store"
                    elif isinstance(target, ast.Attribute):
                        base = target.value
                        how = "mutated via attribute store"
                    if isinstance(base, ast.Name) and base.id in live:
                        if how == "rebound" and not isinstance(node, ast.AugAssign):
                            # Plain `NAME = ...` in a function without a
                            # `global` declaration creates a local; the
                            # Global branch above catches real rebinds.
                            continue
                        if isinstance(node, ast.AugAssign) and base is target:
                            how = "mutated via augmented assignment"
                        yield hit(node, base.id, how)
