"""TRUTHY-SIZED: truth-testing instances of sized ``repro`` classes.

The PR 3 regression this rule re-detects: ``Tracer`` grew a
``__len__``, which made an *empty* tracer falsy — every ``if tracer:``
guard in the worker paths silently stopped entering, and span
collection died without an error. The fix removed ``__len__`` in
favour of ``span_count()`` and ``is not None`` checks.

Python's truth protocol falls back from ``__bool__`` to ``__len__``:
any class that defines ``__len__`` without ``__bool__`` makes its
empty instances falsy, so ``if x:`` conflates "no x" with "empty x".
For container-like values that is idiomatic; for stateful pipeline
objects (tracers, clusters, datasets) it is a landmine.

Detection is two-pass. Pass 1 collects, project-wide, every class in
``repro.*`` defining ``__len__`` but not ``__bool__``. Pass 2 walks
each function tracking variables whose value provably is such a class
— direct construction, annotated assignments/parameters (including
``X | None`` and ``Optional[X]``), and known factory calls (e.g.
``obs.get_tracer()``) — and flags truth-tests on them: ``if``/
``while``/ternary conditions, ``assert``, ``not``, ``and``/``or``
operands, and ``bool(x)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.base import Checker, iter_functions, terminal_name, walk_function_scope
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: Only classes from these dotted-module prefixes count as "ours".
DEFAULT_CLASS_PREFIXES: tuple[str, ...] = ("repro",)

#: Factory functions whose return value is a known sized class.
DEFAULT_FACTORIES: dict[str, str] = {"get_tracer": "Tracer"}


def _annotation_names(node: ast.expr | None) -> set[str]:
    """Class names mentioned in an annotation (handles Optional/union)."""
    if node is None:
        return set()
    out: set[str] = set()
    for sub in ast.walk(node):
        name = terminal_name(sub)
        if name and name not in ("Optional", "Union", "None"):
            out.add(name)
    return out


class TruthySizedChecker(Checker):
    rule_id = "TRUTHY-SIZED"
    description = (
        "truth-test on an instance of a repro class defining __len__ without "
        "__bool__ (empty instance is falsy; use `is not None` or a size check)"
    )

    def __init__(
        self,
        class_prefixes: Sequence[str] = DEFAULT_CLASS_PREFIXES,
        factories: dict[str, str] | None = None,
    ):
        self.class_prefixes = tuple(class_prefixes)
        self.factories = DEFAULT_FACTORIES if factories is None else factories

    # -- pass 1: collect sized classes ---------------------------------

    def _in_scope(self, module: SourceModule) -> bool:
        if not self.class_prefixes:
            return True
        return any(
            module.name == p or module.name.startswith(p + ".")
            for p in self.class_prefixes
        )

    def sized_classes(self, project: Project) -> dict[str, str]:
        """Map class name → defining module for len-without-bool classes."""
        sized: dict[str, str] = {}
        for module in project:
            if module.tree is None or not self._in_scope(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if "__len__" in methods and "__bool__" not in methods:
                    sized[node.name] = module.name
        return sized

    # -- pass 2: flag truth-tests --------------------------------------

    def check_project(self, project: Project) -> Iterable[Finding]:
        sized = self.sized_classes(project)
        if not sized:
            return
        for module in project:
            if module.tree is None:
                continue
            for func, _cls in iter_functions(module.tree):
                yield from self._check_function(module, func, sized)

    def _tracked_vars(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        sized: dict[str, str],
    ) -> dict[str, str]:
        tracked: dict[str, str] = {}
        for arg in (
            func.args.args + func.args.posonlyargs + func.args.kwonlyargs
        ):
            hits = _annotation_names(arg.annotation) & set(sized)
            if hits:
                tracked[arg.arg] = sorted(hits)[0]

        def value_class(value: ast.expr) -> str | None:
            if isinstance(value, ast.IfExp):
                return value_class(value.body) or value_class(value.orelse)
            if not isinstance(value, ast.Call):
                return None
            name = terminal_name(value.func)
            if name in sized:
                return name
            if name in self.factories and self.factories[name] in sized:
                return self.factories[name]
            return None

        for node in walk_function_scope(func):
            if isinstance(node, ast.Assign):
                cls = value_class(node.value)
                if cls:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tracked[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                hits = _annotation_names(node.annotation) & set(sized)
                if hits:
                    tracked[node.target.id] = sorted(hits)[0]
        return tracked

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        sized: dict[str, str],
    ) -> Iterable[Finding]:
        tracked = self._tracked_vars(func, sized)
        if not tracked:
            return

        def flag(expr: ast.expr, context: str) -> Finding | None:
            if isinstance(expr, ast.Name) and expr.id in tracked:
                cls = tracked[expr.id]
                return self.finding(
                    module,
                    expr,
                    f"truth-test on '{expr.id}' ({context}): {cls} defines "
                    "__len__ without __bool__, so an empty instance is falsy — "
                    "test `is not None` or compare a size explicitly",
                    class_name=cls,
                    defined_in=sized[cls],
                )
            return None

        # walk_function_scope prunes nested def bodies: iter_functions
        # visits them separately, so each truth-test is checked once
        # against its own scope's tracked variables.
        for node in walk_function_scope(func):
            found: Finding | None = None
            if isinstance(node, (ast.If, ast.While)):
                found = flag(node.test, "if/while condition")
            elif isinstance(node, ast.IfExp):
                found = flag(node.test, "conditional expression")
            elif isinstance(node, ast.Assert):
                found = flag(node.test, "assert")
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                found = flag(node.operand, "not operand")
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    hit = flag(value, "and/or operand")
                    if hit is not None:
                        yield hit
                continue
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bool"
                and len(node.args) == 1
            ):
                found = flag(node.args[0], "bool() call")
            if found is not None:
                yield found
