"""KERNEL-ORACLE: every perf kernel needs a parity test against its oracle.

The performance work in PRs 1–2 established a contract: each batched
kernel in ``src/repro/perf/`` is *bit-identical* to a kept reference
implementation, proven by a parity suite under ``tests/perf/``. A
kernel module that no test imports has silently left that contract —
its oracle may have drifted or been deleted.

The check is import-graph based: parse every module under
``tests/perf/``, collect the modules they import (``import x.y``,
``from x.y import z``, and ``from x import y`` resolving ``x.y``), and
require each ``repro.perf.<kernel>`` module in the scanned set to be
imported by at least one of them. The prefix match covers nested
packages, so the native tier (``repro.perf.native.*``) is held to the
same contract — its findings point at the native parity suite
(``tests/perf/test_native_kernels.py``) instead. When the scanned set
contains no ``tests/perf/`` files at all (e.g. ``repro lint src/``
alone) the rule stays quiet — absence of the test tree is not evidence
of a missing oracle.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

DEFAULT_KERNEL_PACKAGE = "repro.perf"
DEFAULT_TESTS_PREFIX = "tests/perf/"


def imported_modules(module: SourceModule) -> set[str]:
    """Every dotted module name a file imports (best-effort, static)."""
    assert module.tree is not None
    out: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            out.add(node.module)
            # `from repro.perf import fpm_kernels` names the submodule.
            for alias in node.names:
                out.add(f"{node.module}.{alias.name}")
    return out


class KernelOracleChecker(Checker):
    rule_id = "KERNEL-ORACLE"
    description = (
        "kernel module in src/repro/perf/ with no parity test importing it "
        "under tests/perf/ (bit-identity contract unverified)"
    )

    def __init__(
        self,
        kernel_package: str = DEFAULT_KERNEL_PACKAGE,
        tests_prefix: str = DEFAULT_TESTS_PREFIX,
    ):
        self.kernel_package = kernel_package
        self.tests_prefix = tests_prefix

    def check_project(self, project: Project) -> Iterable[Finding]:
        test_modules = [
            m
            for m in project
            if m.relpath.startswith(self.tests_prefix) and m.tree is not None
        ]
        if not test_modules:
            return
        covered: set[str] = set()
        for test in test_modules:
            covered |= imported_modules(test)

        prefix = self.kernel_package + "."
        for module in project:
            if module.tree is None or not module.name.startswith(prefix):
                continue
            # Only direct kernel modules, not the package marker.
            if module.relpath.endswith("__init__.py"):
                continue
            if module.name in covered:
                continue
            exemplar = (
                "tests/perf/test_native_kernels.py"
                if module.name.startswith(prefix + "native.")
                else "tests/perf/test_kernel_equivalence.py"
            )
            yield self.finding(
                module,
                module.tree.body[0] if module.tree.body else None,
                f"kernel module {module.name} is imported by no test under "
                f"{self.tests_prefix} — add a reference-oracle parity test "
                f"(see {exemplar} for the pattern)",
            )
