"""LOCK-ORDER: lock-acquisition cycles across the project.

The invariant this encodes: any two locks ever held together must
always be taken in the same order, project-wide. The PR 7 shutdown
dance (``ProcessPoolEngine.shutdown`` detaching the pool and store
under ``_lifecycle`` and tearing both down *outside* it, so the store
RLock is never taken under the lifecycle Condition) exists exactly to
keep that order acyclic; this rule makes the discipline checkable
instead of tribal.

The graph: nodes are lock definition sites (``path:line``, the same
key the runtime watchdog records); a directed edge A→B means "B was
acquired while A was held". Edges come from ``with self._lock:``
nesting and bare ``acquire()`` tracking inside one method (*direct*),
and from one delegation hop — ``self.method()`` or
``self.attr.method()`` called with a lock held, where the callee's own
direct acquisitions are known (*delegated*). A cycle in the graph is a
potential deadlock; a re-acquisition of a non-reentrant ``Lock``
already held is a guaranteed one and is reported at the exact node.

Delegated edges are where static analysis over-approximates (the call
may be dead, the branch unreachable), so a runtime report from
``repro.analysis.runtime`` can be merged in: delegated-only edges
whose two locks were both exercised at runtime without the edge ever
being observed are pruned, and runtime-observed edges join the graph
so real interleavings the walker cannot see still gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analysis.base import Checker, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.locks import (
    AMBIENT_GUARD,
    ClassLockInfo,
    LockDef,
    collect_class_locks,
    collect_module_locks,
    iter_with_held,
)
from repro.analysis.project import Project, SourceModule


@dataclass
class _Edge:
    """One ordered pair of lock sites, with provenance for messages."""

    kinds: set[str] = field(default_factory=set)  # direct | delegated | runtime
    path: str = ""
    line: int = 0
    where: str = ""  # "Class.method" of the example acquisition


@dataclass
class _MethodFacts:
    """Per-method summary from the held-context walk."""

    #: Locks this method acquires itself (site strings).
    direct: list[str] = field(default_factory=list)
    #: ``(callee-spec, held-sites, lineno)`` candidate delegation calls.
    calls: list[tuple[str, str, tuple[str, ...], int]] = field(default_factory=list)


class LockOrderChecker(Checker):
    rule_id = "LOCK-ORDER"
    description = (
        "lock-acquisition cycle across methods (potential deadlock); "
        "edges from with/acquire nesting plus one delegation hop"
    )

    def __init__(self, runtime_report: Mapping[str, Any] | None = None):
        self.runtime_report = runtime_report

    def check_project(self, project: Project) -> Iterable[Finding]:
        locks_by_site: dict[str, LockDef] = {}
        edges: dict[tuple[str, str], _Edge] = {}
        findings: list[Finding] = []

        # Class name → (module, info); ambiguous names resolve to None so
        # delegation never guesses between same-named classes.
        class_registry: dict[str, tuple[SourceModule, ClassLockInfo] | None] = {}
        per_module: list[tuple[SourceModule, dict[str, ClassLockInfo], dict[str, LockDef]]] = []
        for module in project:
            if module.tree is None:
                continue
            class_infos = collect_class_locks(module)
            module_locks = collect_module_locks(module)
            per_module.append((module, class_infos, module_locks))
            for info in class_infos.values():
                if info.name in class_registry:
                    class_registry[info.name] = None
                else:
                    class_registry[info.name] = (module, info)
                for lock in info.locks.values():
                    locks_by_site[lock.site] = lock
            for lock in module_locks.values():
                locks_by_site[lock.site] = lock

        def add_edge(
            src: str,
            dst: str,
            kind: str,
            module: SourceModule,
            line: int,
            where: str,
        ) -> None:
            edge = edges.setdefault((src, dst), _Edge())
            edge.kinds.add(kind)
            if not edge.path:
                edge.path, edge.line, edge.where = module.relpath, line, where

        # Pass 1: direct edges + per-method facts for the delegation hop.
        facts: dict[tuple[str, str], _MethodFacts] = {}
        for module, class_infos, module_locks in per_module:
            for info in class_infos.values():
                for name, method in info.methods.items():
                    fact = self._walk_method(
                        module, info, module_locks, method,
                        add_edge, findings, locks_by_site,
                    )
                    facts[(info.name, name)] = fact

        # Pass 2: one delegation hop. A call made with locks held inherits
        # the callee's direct acquisitions as delegated edges.
        for (_cls, _name), fact in facts.items():
            for callee_cls, callee_name, held_sites, lineno in fact.calls:
                resolved = class_registry.get(callee_cls)
                if resolved is None:
                    continue
                callee_module, callee_info = resolved
                callee_fact = facts.get((callee_info.name, callee_name))
                if callee_fact is None:
                    continue
                where = f"{_cls}.{_name}"
                src_module = None
                for module, class_infos, _ in per_module:
                    if _cls in class_infos:
                        src_module = module
                        break
                if src_module is None:
                    continue
                for dst in callee_fact.direct:
                    for src in held_sites:
                        if src != dst:
                            add_edge(src, dst, "delegated", src_module, lineno, where)

        findings.extend(self._cycle_findings(edges, locks_by_site))
        return findings

    def _walk_method(
        self,
        module: SourceModule,
        info: ClassLockInfo,
        module_locks: dict[str, LockDef],
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        add_edge,
        findings: list[Finding],
        locks_by_site: dict[str, LockDef],
    ) -> _MethodFacts:
        fact = _MethodFacts()
        where = f"{info.name}.{method.name}"

        # Local variables bound to a constructor call, for `local.m()`
        # delegation (`store = SharedPartitionStore(...)` … `store.get()`).
        local_types: dict[str, str] = {}
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                ctor = terminal_name(node.value.func)
                if ctor and ctor[:1].isupper():
                    local_types[node.targets[0].id] = ctor

        def site_of(key: str) -> str | None:
            if key == AMBIENT_GUARD:
                return None
            if key.startswith("::"):
                lock = module_locks.get(key[2:])
            else:
                lock = info.locks.get(key)
            return lock.site if lock else None

        seen_calls: set[int] = set()
        for event in iter_with_held(
            method,
            lock_attrs=frozenset(info.locks),
            module_locks=frozenset(module_locks),
        ):
            held_sites = tuple(s for s in (site_of(k) for k in event.held) if s)
            if event.kind == "acquire":
                dst = site_of(event.lock or "")
                if dst is None:
                    continue
                fact.direct.append(dst)
                if event.lock in event.held:
                    lock = locks_by_site[dst]
                    if lock.kind == "Lock":
                        findings.append(
                            self.finding(
                                module,
                                event.node,
                                f"non-reentrant Lock {lock.display} re-acquired in "
                                f"{where}() while already held — this thread "
                                "deadlocks itself; use an RLock or restructure",
                            )
                        )
                    continue
                for src in held_sites:
                    if src != dst:
                        add_edge(src, dst, "direct", module, event.node.lineno, where)
            elif held_sites and isinstance(event.node, ast.Call):
                if id(event.node) in seen_calls:
                    continue
                seen_calls.add(id(event.node))
                func = event.node.func
                if not isinstance(func, ast.Attribute):
                    continue
                recv = func.value
                if isinstance(recv, ast.Name) and recv.id == "self":
                    # self.m() — same class.
                    fact.calls.append((info.name, func.attr, held_sites, event.node.lineno))
                elif (
                    isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self"
                    and recv.attr in info.attr_types
                ):
                    # self.attr.m() — type from the constructor assignment.
                    fact.calls.append(
                        (info.attr_types[recv.attr], func.attr, held_sites, event.node.lineno)
                    )
                elif isinstance(recv, ast.Name) and recv.id in local_types:
                    fact.calls.append(
                        (local_types[recv.id], func.attr, held_sites, event.node.lineno)
                    )
        return fact

    # -- cycles ----------------------------------------------------------

    def _cycle_findings(
        self,
        edges: dict[tuple[str, str], _Edge],
        locks_by_site: dict[str, LockDef],
    ) -> Iterable[Finding]:
        runtime_edges: set[tuple[str, str]] = set()
        runtime_sites: set[str] = set()
        if self.runtime_report:
            for entry in self.runtime_report.get("edges", []):
                runtime_edges.add((entry["from"], entry["to"]))
            runtime_sites.update(self.runtime_report.get("locks", {}))
            # Runtime evidence prunes delegated-only edges both of whose
            # locks were exercised without the edge ever being observed.
            for key in list(edges):
                edge = edges[key]
                if (
                    edge.kinds == {"delegated"}
                    and key[0] in runtime_sites
                    and key[1] in runtime_sites
                    and key not in runtime_edges
                ):
                    del edges[key]
            for src, dst in runtime_edges:
                if src != dst:
                    edges.setdefault((src, dst), _Edge()).kinds.add("runtime")

        adj: dict[str, set[str]] = {}
        for (src, dst) in edges:
            adj.setdefault(src, set()).add(dst)
            adj.setdefault(dst, set())

        for scc in _strongly_connected(adj):
            if len(scc) < 2:
                continue
            yield self._scc_finding(scc, edges, locks_by_site)

    def _scc_finding(
        self,
        scc: set[str],
        edges: dict[tuple[str, str], _Edge],
        locks_by_site: dict[str, LockDef],
    ) -> Finding:
        def display(site: str) -> str:
            lock = locks_by_site.get(site)
            return lock.display if lock else site

        names = sorted(display(s) for s in scc)
        examples = []
        for (src, dst), edge in sorted(edges.items()):
            if src in scc and dst in scc:
                via = "/".join(sorted(edge.kinds))
                at = f" at {edge.path}:{edge.line}" if edge.path else ""
                examples.append(
                    f"{display(dst)} taken while holding {display(src)} ({via}{at})"
                )
        anchor_site = min(
            (s for s in scc if s in locks_by_site),
            key=lambda s: locks_by_site[s].display,
            default=None,
        )
        if anchor_site is not None:
            anchor = locks_by_site[anchor_site]
            path, line = anchor.path, anchor.line
        else:  # runtime-only cycle: anchor at the first site's path:line
            path, line = min(scc).rsplit(":", 1)[0], int(min(scc).rsplit(":", 1)[1])
        message = (
            "potential deadlock: locks acquired in conflicting order — "
            f"cycle {{{', '.join(names)}}}; " + "; ".join(examples)
        )
        return Finding(path=path, line=line, col=0, rule=self.rule_id, message=message)


def _strongly_connected(adj: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative (no recursion-limit surprises)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = 0

    for root in sorted(adj):
        if root in index:
            continue
        work: list[tuple[str, Any]] = [(root, iter(sorted(adj[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adj[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
