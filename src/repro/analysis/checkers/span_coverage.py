"""SPAN-COVERAGE: instrumented entry points must actually emit spans.

PR 3's telemetry is only trustworthy if every pipeline stage shows up
in the trace: an uninstrumented stage is invisible latency and
unattributed energy. This rule pins the contract — the public stage
entry points of :mod:`repro.core.framework`, the engine
``run_job``/``profile`` paths in :mod:`repro.cluster.engines`, and the
job-service ``submit``/``run_record``/``drain`` entry points in
:mod:`repro.service.manager` must emit an ``obs`` span, and the live
plane's ``publish_span``/``publish_event`` entry points in
:mod:`repro.obs.live.plane` must publish onto the telemetry bus.

A required function is *covered* when its body contains a span-emitting
call — ``obs.span(...)``, ``obs.emit(...)``, ``<tracer>.span(...)``,
``<tracer>.emit(...)`` — or an ``@obs.traced``/``@traced`` decorator,
or when it delegates to a same-module function that itself directly
emits (``measure_frontier`` → ``execute``; the base
``profile_all_nodes`` loop → ``profile``). Delegation is resolved one
level deep and by terminal name, which is exact enough for a module
the rule also forces to stay simple.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping

from repro.analysis.base import Checker, iter_functions, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: module name → function/method names that must emit a span.
DEFAULT_REQUIRED: Mapping[str, frozenset[str]] = {
    "repro.core.framework": frozenset(
        {"prepare", "plan", "execute", "execute_fpm", "measure_frontier"}
    ),
    "repro.cluster.engines": frozenset({"run_job", "profile", "profile_all_nodes"}),
    # The job service's admission/run/drain path: an uninstrumented
    # submit or run means queue waits and per-job energy never reach
    # the trace, which defeats the service section of `repro obs report`.
    "repro.service.manager": frozenset({"submit", "run_record", "drain"}),
    # The live plane's publication entry points: if these stop pushing
    # onto the telemetry bus, `/live` and `repro obs top` go dark
    # silently while the rest of the plane still looks healthy.
    "repro.obs.live.plane": frozenset({"publish_span", "publish_event"}),
}

# ``publish`` counts as emitting: the live plane's entry points feed
# the bounded bus instead of opening spans (a span inside the tracer
# sink would recurse back into the sink).
_EMITTING_CALLS = {"span", "emit", "publish"}
_TRACED_DECORATORS = {"traced"}


def _directly_emits(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if terminal_name(target) in _TRACED_DECORATORS:
            return True
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and terminal_name(node.func) in _EMITTING_CALLS:
            return True
    return False


def _called_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name:
                out.add(name)
    return out


class SpanCoverageChecker(Checker):
    rule_id = "SPAN-COVERAGE"
    description = (
        "stage entry point / engine run_job-profile path emits no obs span "
        "(invisible latency and unattributed energy in traces)"
    )

    def __init__(self, required: Mapping[str, frozenset[str]] | None = None):
        self.required = DEFAULT_REQUIRED if required is None else required

    def check_project(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if module.tree is None:
                continue
            names = self.required.get(module.name)
            if not names:
                continue
            yield from self._check_module(module, names)

    def _check_module(
        self, module: SourceModule, names: frozenset[str]
    ) -> Iterable[Finding]:
        assert module.tree is not None
        functions = list(iter_functions(module.tree))
        emitting = {
            func.name for func, _ in functions if _directly_emits(func)
        }
        for func, cls in functions:
            if func.name not in names:
                continue
            if _directly_emits(func):
                continue
            # Abstract declarations have nothing to instrument.
            if self._is_abstract(func):
                continue
            if _called_names(func) & emitting:
                continue
            where = f"{cls.name}.{func.name}" if cls is not None else func.name
            yield self.finding(
                module,
                func,
                f"{where}() is a required instrumentation point but emits no "
                "obs span (directly or via a span-emitting callee) — wrap the "
                "body in obs.span(...) so traces attribute its latency/energy",
            )

    @staticmethod
    def _is_abstract(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for deco in func.decorator_list:
            if terminal_name(deco) in ("abstractmethod", "abstractproperty"):
                return True
        # A body that is only a docstring and/or `...`/`pass`.
        real = [
            stmt
            for stmt in func.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, (str, type(Ellipsis)))
            )
            and not isinstance(stmt, ast.Pass)
        ]
        return not real
