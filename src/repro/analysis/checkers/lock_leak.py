"""LOCK-LEAK: acquisitions that can escape and waits that can't trust
their wake-up.

Two shapes, both of which the repo's own history makes load-bearing:

- A bare ``lock.acquire()`` statement with no ``with`` block and no
  ``finally: lock.release()`` in the same function leaks the lock on
  any exception between acquire and release — every other thread then
  blocks forever. (``with lock:`` is the fix; a try/finally release is
  accepted for the split-acquire patterns a context manager can't
  express.)
- ``Condition.wait()`` outside a ``while predicate`` loop acts on
  spurious wake-ups and missed-signal races: ``wait()`` may return
  without a ``notify`` and the predicate may already be false again by
  the time the waiter runs. The JobManager worker loop and the engine
  drain both re-check in a loop; this rule keeps it that way.
  (``wait_for`` loops internally and is exempt.)

Receivers resolve strictly — ``self.<attr>`` where the attribute was
seen constructed as a ``threading`` lock in this class, a module-level
lock binding, or a local alias of either. ``barrier.wait()`` on an
unknown receiver is not assumed to be a Condition.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import (
    ModuleChecker,
    iter_functions,
    terminal_name,
    walk_function_scope,
)
from repro.analysis.findings import Finding
from repro.analysis.locks import (
    collect_class_locks,
    collect_module_locks,
    lock_call_kind,
)
from repro.analysis.project import SourceModule


class LockLeakChecker(ModuleChecker):
    rule_id = "LOCK-LEAK"
    description = (
        "bare acquire() without with/finally release, or Condition.wait() "
        "outside a predicate re-check loop"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        assert module.tree is not None
        class_infos = collect_class_locks(module)
        module_locks = collect_module_locks(module)
        if not class_infos and not module_locks:
            return

        for func, cls in iter_functions(module.tree):
            info = class_infos.get(cls.name) if cls is not None else None
            lock_attrs = set(info.locks) if info else set()
            conditions = {
                a for a in lock_attrs if info and info.locks[a].kind == "Condition"
            }
            module_conditions = {
                n for n, d in module_locks.items() if d.kind == "Condition"
            }
            where = f"{cls.name}.{func.name}" if cls is not None else func.name

            aliases = _local_lock_aliases(func, lock_attrs, set(module_locks))

            def resolve(expr: ast.expr) -> str | None:
                """Receiver → display name if it is a known lock."""
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_attrs
                ):
                    return f"self.{expr.attr}"
                if isinstance(expr, ast.Name):
                    if expr.id in aliases:
                        return aliases[expr.id]
                    if expr.id in module_locks:
                        return expr.id
                return None

            def is_condition(display: str) -> bool:
                name = display.removeprefix("self.")
                return name in conditions or name in module_conditions

            yield from self._check_function(
                module, func, where, resolve, is_condition
            )

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        where: str,
        resolve,
        is_condition,
    ) -> Iterable[Finding]:
        released_in_finally: set[str] = set()
        with_guarded: set[int] = set()  # ids of Calls that are `with` items
        for node in walk_function_scope(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call):
                        with_guarded.add(id(ctx))
            if isinstance(node, ast.Try) or (
                hasattr(ast, "TryStar") and isinstance(node, ast.TryStar)
            ):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        name = _method_call_target(sub, "release", resolve)
                        if name is not None:
                            released_in_finally.add(name)

        for node in walk_function_scope(func):
            name = _method_call_target(node, "acquire", resolve)
            if name is not None and id(node) not in with_guarded:
                if name not in released_in_finally:
                    yield self.finding(
                        module,
                        node,
                        f"bare {name}.acquire() in {where}() with no matching "
                        "release() in a finally — an exception leaks the lock; "
                        f"use 'with {name}:' or release in try/finally",
                    )

        yield from self._check_waits(module, func, where, resolve, is_condition)

    def _check_waits(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        where: str,
        resolve,
        is_condition,
    ) -> Iterable[Finding]:
        def walk(stmts: list[ast.stmt], in_while: bool) -> Iterable[Finding]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested scope: visited by iter_functions
                if isinstance(stmt, ast.While):
                    yield from _waits_in_expr(stmt.test, in_while)
                    yield from walk(stmt.body, True)
                    yield from walk(stmt.orelse, in_while)
                    continue
                for child_stmts in _nested_bodies(stmt):
                    yield from walk(child_stmts, in_while)
                for expr in _own_exprs(stmt):
                    yield from _waits_in_expr(expr, in_while)

        def _waits_in_expr(expr: ast.expr, in_while: bool) -> Iterable[Finding]:
            if in_while:
                return
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "wait"
                ):
                    name = resolve(sub.func.value)
                    if name is not None and is_condition(name):
                        yield self.finding(
                            module,
                            sub,
                            f"{name}.wait() in {where}() outside a 'while "
                            "predicate' loop — spurious wake-ups and missed "
                            "signals break the invariant; re-check the "
                            "predicate in a loop or use wait_for()",
                        )

        yield from walk(func.body, False)


def _method_call_target(node: ast.AST, method: str, resolve) -> str | None:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
    ):
        return resolve(node.func.value)
    return None


def _local_lock_aliases(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_attrs: set[str],
    module_locks: set[str],
) -> dict[str, str]:
    """``lifecycle = self._lifecycle`` (or the getattr form) → alias map."""
    aliases: dict[str, str] = {}
    for node in walk_function_scope(func):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        target = node.targets[0].id
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and value.attr in lock_attrs
        ):
            aliases[target] = f"self.{value.attr}"
        elif (
            isinstance(value, ast.Call)
            and terminal_name(value.func) == "getattr"
            and len(value.args) >= 2
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == "self"
            and isinstance(value.args[1], ast.Constant)
            and value.args[1].value in lock_attrs
        ):
            aliases[target] = f"self.{value.args[1].value}"
        elif isinstance(value, ast.Name) and value.id in module_locks:
            aliases[target] = value.id
        elif lock_call_kind(value) is not None:
            # A fresh local lock: leaks are still leaks.
            aliases[target] = target
    return aliases


def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    out: list[list[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        sub = getattr(stmt, name, None)
        if sub and isinstance(sub[0], ast.stmt):
            out.append(sub)
    for handler in getattr(stmt, "handlers", []):
        out.append(handler.body)
    for case in getattr(stmt, "cases", []):
        out.append(case.body)
    return out


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expression children of a statement that are not nested statements."""
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
        elif isinstance(child, (ast.withitem,)):
            out.append(child.context_expr)
    return out
