"""SILENT-EXCEPT: broad handlers that swallow failures invisibly.

Energy accounting and telemetry paths must never eat errors silently —
a swallowed failure in an accountant or teardown path skews the very
measurements the Pareto optimizer trades on. PR 3 replaced the
library's historical ``except: pass`` sites with structured
:func:`repro.obs.log.log_event` records; this rule keeps new ones out.

A handler is flagged when it is *broad* — bare ``except:``, ``except
Exception``, or ``except BaseException`` (alone or in a tuple) — and
its body does none of the following:

- re-raise (any ``raise`` statement in the handler body),
- log through :mod:`repro.obs.log` (``log_event(...)``) or a stdlib
  logger method (``logger.debug/info/warning/error/exception/...``),
- ``warnings.warn``,
- fail the surrounding test (``pytest.fail/skip/xfail``, ``self.fail``,
  or an ``assert``).

Narrow handlers (``except IndexError:``) are out of scope no matter
what the body does. Intentional swallows — e.g. the engine's interpreter
teardown path where logging itself may already be gone — carry a
justified ``# repro: noqa[SILENT-EXCEPT]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import ModuleChecker, dotted_name, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.project import SourceModule

_BROAD_NAMES = {"Exception", "BaseException"}

_LOGGING_CALLS = {
    "log_event",
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
    "fail",
    "skip",
    "xfail",
}


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    """Return a human name when the handler is bare/broad, else None."""
    if handler.type is None:
        return "bare except"
    exprs = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in exprs:
        name = terminal_name(expr)
        if name in _BROAD_NAMES:
            return f"except {name}"
    return None


def _body_handles(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, (ast.Raise, ast.Assert)):
            return True
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in _LOGGING_CALLS:
                return True
            dotted = dotted_name(node.func) or ""
            if dotted.startswith(("warnings.", "logging.")):
                return True
    return False


class SilentExceptChecker(ModuleChecker):
    rule_id = "SILENT-EXCEPT"
    description = (
        "bare/broad except whose body neither re-raises nor logs via "
        "repro.obs.log (swallowed failures skew energy accounting)"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _is_broad(node)
            if broad is None or _body_handles(node):
                continue
            yield self.finding(
                module,
                node,
                f"{broad} swallows the error: re-raise, or record it with "
                "repro.obs.log.log_event (a silent failure here corrupts "
                "downstream accounting)",
            )
