"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table-I inventory of the synthetic analog datasets.
``compare``
    Run the three partitioning strategies on one dataset/workload and
    print the time/energy/quality comparison table.
``frontier``
    Sweep α and print the measured time–energy frontier (with an ASCII
    Figure-5-style plot) next to the stratified baseline.
``profile``
    Run progressive sampling on a dataset/workload and print the
    learned per-node time models.
``obs report``
    Summarise a JSONL trace (per-stage latency, per-node energy,
    slowest spans); produce traces with ``compare --trace PATH``.
``lint``
    Run the project-invariant static analysis suite
    (:mod:`repro.analysis`) over source trees. Exit codes: 0 clean,
    1 findings, 2 usage error.
``serve``
    Run the always-on partition job service (:mod:`repro.service`) in
    the foreground: bounded-queue admission, persistent engine pool,
    HTTP API on ``--host``/``--port``.
``submit``
    Submit one job to a running service and (by default) wait for and
    print its result.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.bench.harness import StrategyRunner
from repro.bench.plotting import ascii_scatter
from repro.bench.reporting import format_frontier, format_table
from repro.core.strategies import (
    ALPHA_COMPRESSION,
    ALPHA_FPM,
    HET_AWARE,
    RANDOM,
    STRATIFIED,
    Strategy,
    het_energy_aware,
)
from repro.data.datasets import DATASET_NAMES, dataset_summary, load_dataset

_MINING_WORKLOADS = ("apriori", "eclat", "fpgrowth", "treemining")
_WORKLOADS = _MINING_WORKLOADS + ("webgraph", "lz77")


def _workload_factory(name: str, support: float):
    if name == "apriori":
        from repro.workloads.fpm.apriori import AprioriWorkload

        return lambda: AprioriWorkload(min_support=support, max_len=3)
    if name == "eclat":
        from repro.workloads.fpm.eclat import EclatWorkload

        return lambda: EclatWorkload(min_support=support, max_len=3)
    if name == "fpgrowth":
        from repro.workloads.fpm.fpgrowth import FPGrowthWorkload

        return lambda: FPGrowthWorkload(min_support=support, max_len=3)
    if name == "treemining":
        from repro.workloads.fpm.treemining import TreeMiningWorkload

        return lambda: TreeMiningWorkload(min_support=support, max_len=2)
    from repro.workloads.compression.distributed import CompressionWorkload

    if name == "lz77":
        return lambda: CompressionWorkload("lz77", max_chain=8)
    return lambda: CompressionWorkload("webgraph")


def _default_workload(kind: str) -> str:
    return {"tree": "treemining", "graph": "webgraph", "text": "apriori"}[kind]


def _runner(args) -> StrategyRunner:
    if getattr(args, "file", None):
        if not getattr(args, "kind", None):
            raise SystemExit("--file requires --kind {tree,graph,text}")
        from repro.data.io import load_dataset_file

        dataset = load_dataset_file(args.kind, args.file)
    else:
        dataset = load_dataset(args.dataset, size_scale=args.scale, seed=args.seed)
    workload = args.workload or _default_workload(dataset.kind)
    if workload in _MINING_WORKLOADS and dataset.kind == "tree" and workload != "treemining":
        raise SystemExit("tree datasets require the treemining workload")
    unit_rate = {"webgraph": 5e3, "lz77": 2e4}.get(workload, 5e4)
    return StrategyRunner(
        dataset=dataset,
        workload_factory=_workload_factory(workload, args.support),
        unit_rate=unit_rate,
        seed=args.seed,
    )


def _strategies(workload: str) -> list[Strategy]:
    placement = "similar" if workload in ("webgraph", "lz77") else "representative"
    alpha = ALPHA_COMPRESSION if placement == "similar" else ALPHA_FPM
    return [
        STRATIFIED.with_placement(placement),
        HET_AWARE.with_placement(placement),
        het_energy_aware(alpha).with_placement(placement),
        RANDOM,
    ]


def cmd_datasets(args) -> int:
    for name in DATASET_NAMES:
        row = dataset_summary(load_dataset(name, size_scale=args.scale, seed=args.seed))
        print(row)
    return 0


def cmd_compare(args) -> int:
    import repro.obs as obs

    if args.trace:
        obs.enable()
        obs.reset()
    runner = _runner(args)
    workload = args.workload or _default_workload(runner.dataset.kind)
    rows = runner.compare(_strategies(workload), [args.partitions])
    print(format_table(rows, f"{runner.dataset.name} / {workload} / {args.partitions} partitions"))
    if args.trace:
        count = obs.export_jsonl(args.trace)
        chrome = f"{args.trace}.chrome.json"
        obs.export_chrome(chrome)
        metrics_path = f"{args.trace}.metrics.json"
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(obs.metrics_snapshot(), fh, indent=2, sort_keys=True)
        print(f"wrote {count} spans to {args.trace} (+ {chrome}, {metrics_path})")
    return 0


def cmd_frontier(args) -> int:
    runner = _runner(args)
    workload = args.workload or _default_workload(runner.dataset.kind)
    placement = "similar" if workload in ("webgraph", "lz77") else "representative"
    alphas = [float(a) for a in args.alphas.split(",")]
    points = []
    for alpha in alphas:
        report = runner.run(
            Strategy(name=f"a={alpha}", alpha=alpha, placement=placement),
            args.partitions,
        )
        points.append((alpha, report.makespan_s, report.total_dirty_energy_j / 1e3))
    base = runner.run(STRATIFIED.with_placement(placement), args.partitions)
    baseline = (base.makespan_s, base.total_dirty_energy_j / 1e3)
    print(format_frontier(points, baseline=baseline, title=f"frontier: {runner.dataset.name}"))
    print()
    print(
        ascii_scatter(
            [(m, e) for _, m, e in points],
            baseline=baseline,
            title=f"time–energy frontier ({runner.dataset.name}, {args.partitions} partitions)",
        )
    )
    return 0


def cmd_profile(args) -> int:
    runner = _runner(args)
    _pp, prep = runner.prepared_for(args.partitions)
    print(f"progressive sampling on {runner.dataset.name}: sizes {prep.profiling.sample_sizes}")
    for node_id, (model, r2) in enumerate(
        zip(prep.profiling.models, prep.profiling.r_squared)
    ):
        k = prep.optimizer.dirty_coeffs[node_id]
        print(
            f"  node {node_id}: f(x) = {model.slope:.6f}·x + {model.intercept:.3f}"
            f"  (r²={r2:.3f}, dirty power k={k:.1f} W)"
        )
    return 0


def cmd_obs_report(args) -> int:
    from repro.obs.report import report_from_file

    print(report_from_file(args.trace, top_n=args.top))
    return 0


def cmd_obs_top(args) -> int:
    from repro.obs.live.dashboard import run_top

    return run_top(
        args.url, once=args.once, interval=args.interval, duration=args.duration
    )


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import analyze_paths, render_json, render_text, write_baseline
    from repro.analysis.baseline import BaselineError, load_baseline
    from repro.analysis.engine import all_checkers
    from repro.analysis.reporters import render_rules

    runtime_report = None
    if args.runtime_report:
        from repro.analysis.runtime import load_runtime_report

        try:
            runtime_report = load_runtime_report(args.runtime_report)
        except OSError as exc:
            print(f"repro lint: cannot read runtime report: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    checkers = all_checkers(runtime_report=runtime_report)
    if args.rules is not None:
        if args.rules == "":
            # Bare --rules: print the catalogue.
            print(render_rules([(c.rule_id, c.description) for c in checkers]))
            return 0
        valid = {c.rule_id for c in checkers}
        wanted = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in valid]
        if unknown or not wanted:
            bad = ", ".join(unknown) or "(empty)"
            print(
                f"repro lint: unknown rule id(s): {bad}; valid ids: "
                + ", ".join(c.rule_id for c in checkers),
                file=sys.stderr,
            )
            return 2
        checkers = [c for c in checkers if c.rule_id in wanted]

    paths = [Path(p) for p in (args.paths or ("src", "tests"))]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_keys: set[str] | None = None
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"repro lint: baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        try:
            baseline_keys = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    # --write-baseline must snapshot the *unfiltered* findings: writing
    # after --baseline filtering would drop still-present grandfathered
    # entries, so the very next gated run reports them as new.
    report = analyze_paths(
        paths,
        checkers=checkers,
        baseline_keys=None if args.write_baseline else baseline_keys,
    )

    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(f"wrote {count} baseline entries to {args.write_baseline}")
        return 0

    print(render_json(report) if args.format == "json" else render_text(report))
    return report.exit_code


def cmd_serve(args) -> int:
    import repro.obs as obs
    from repro.service import ServiceConfig, build_service

    if args.metrics:
        obs.enable()
    if args.live:
        from repro.obs.live import enable_live

        enable_live()  # implies obs.enable(); /live + `repro obs top`
    config = ServiceConfig(
        max_queue_depth=args.queue_depth,
        concurrency=args.concurrency,
        per_tenant_inflight=args.tenant_inflight,
        result_ttl_s=args.result_ttl,
    )
    service = build_service(
        engine=args.engine,
        num_nodes=args.nodes,
        max_workers=args.workers,
        seed=args.seed,
        host=args.host,
        port=args.port,
        config=config,
    )
    print(f"repro service listening on {service.url} (engine={args.engine})")
    try:
        service.server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
    finally:
        service.close()
    return 0


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url, timeout_s=args.timeout)
    spec = {
        "workload": args.workload,
        "dataset": args.dataset,
        "support": args.support,
        "size_scale": args.scale,
        "seed": args.seed,
        "tenant": args.tenant,
    }
    if args.alpha is not None:
        spec["alpha"] = args.alpha
    resp = client.submit(spec)
    if resp.rejected:
        print(
            f"rejected ({resp.body.get('reject_reason')}): "
            f"retry after {resp.retry_after_s:.3f}s",
            file=sys.stderr,
        )
        return 1
    if not resp.ok:
        print(f"submit failed ({resp.status}): {resp.body}", file=sys.stderr)
        return 1
    job_id = resp.body["job_id"]
    if args.no_wait:
        print(json.dumps(resp.body, indent=2))
        return 0
    final = client.wait(job_id, timeout_s=args.timeout)
    print(json.dumps(final.body, indent=2))
    return 0 if final.body.get("state") == "SUCCEEDED" else 1


def cmd_reproduce(args) -> int:
    from repro.bench.reproduce import reproduce_all

    written = reproduce_all(args.out, size_scale=args.scale, seed=args.seed)
    print(f"wrote {len(written)} artefacts to {args.out}/")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pareto framework for data analytics on heterogeneous systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, dataset: bool = True) -> None:
        p.add_argument("--scale", type=float, default=1.0, help="dataset size scale")
        p.add_argument("--seed", type=int, default=0)
        if dataset:
            p.add_argument("--dataset", choices=DATASET_NAMES, default="rcv1")
            p.add_argument(
                "--file", default=None, help="load a flat-text dataset file instead"
            )
            p.add_argument(
                "--kind",
                choices=("tree", "graph", "text"),
                default=None,
                help="domain of --file",
            )
            p.add_argument("--workload", choices=_WORKLOADS, default=None)
            p.add_argument("--support", type=float, default=0.1)
            p.add_argument("--partitions", type=int, default=8)

    p = sub.add_parser("datasets", help="print the Table-I dataset inventory")
    common(p, dataset=False)
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("compare", help="compare partitioning strategies")
    common(p)
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="enable observability and write a JSONL trace (plus a "
        "Chrome trace_event file at PATH.chrome.json)",
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("frontier", help="sweep alpha and print the frontier")
    common(p)
    p.add_argument(
        "--alphas",
        default="1.0,0.999,0.998,0.997,0.995,0.99,0.9,0.0",
        help="comma-separated alpha values",
    )
    p.set_defaults(func=cmd_frontier)

    p = sub.add_parser("profile", help="print learned per-node time models")
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("obs", help="observability: inspect trace files")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    rp = obs_sub.add_parser("report", help="summarise a JSONL trace file")
    rp.add_argument("trace", help="path to a trace written by --trace / export_jsonl")
    rp.add_argument("--top", type=int, default=10, help="slowest spans to list")
    rp.set_defaults(func=cmd_obs_report)
    tp = obs_sub.add_parser(
        "top", help="refreshing ASCII dashboard over a service's /live endpoint"
    )
    tp.add_argument("--url", default="http://127.0.0.1:8642")
    tp.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    tp.add_argument(
        "--interval", type=float, default=1.0, help="refresh period seconds"
    )
    tp.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: run until interrupted)",
    )
    tp.set_defaults(func=cmd_obs_top)

    p = sub.add_parser(
        "lint", help="run the project-invariant static analysis suite"
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src tests)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings to filter out",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write current findings as a new baseline and exit 0",
    )
    p.add_argument(
        "--rules",
        nargs="?",
        const="",
        default=None,
        metavar="IDS",
        help="bare: list the rule catalogue and exit; with a comma-"
        "separated list of rule ids: run only those rules "
        "(unknown ids exit 2)",
    )
    p.add_argument(
        "--runtime-report",
        default=None,
        metavar="PATH",
        help="lock_order.json from a watchdog-instrumented run "
        "(REPRO_LOCK_WATCH=PATH pytest ...); LOCK-ORDER merges its "
        "observed acquisition edges into the static graph",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("serve", help="run the partition job service in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--engine", choices=("process", "simulated"), default="process",
        help="execution engine backing the service",
    )
    p.add_argument("--nodes", type=int, default=4, help="cluster nodes")
    p.add_argument(
        "--workers", type=int, default=None, help="process-pool worker cap"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--concurrency", type=int, default=2, help="jobs running at once"
    )
    p.add_argument(
        "--queue-depth", type=int, default=64, help="bounded queue capacity"
    )
    p.add_argument(
        "--tenant-inflight", type=int, default=8,
        help="per-tenant queued+running cap",
    )
    p.add_argument(
        "--result-ttl", type=float, default=300.0,
        help="seconds finished results stay retrievable",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="enable observability (spans + /metrics counters)",
    )
    p.add_argument(
        "--live", action="store_true",
        help="enable the live telemetry plane (GET /live + repro obs top)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit one job to a running service")
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.add_argument("--workload", choices=_WORKLOADS, default="apriori")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="rcv1")
    p.add_argument("--support", type=float, default=0.1)
    p.add_argument("--alpha", type=float, default=None)
    p.add_argument("--scale", type=float, default=0.1, help="dataset size scale")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--no-wait", action="store_true", help="print the 202 snapshot and exit"
    )
    p.add_argument(
        "--timeout", type=float, default=120.0, help="submit/wait timeout seconds"
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "reproduce", help="regenerate every paper artefact into a directory"
    )
    common(p, dataset=False)
    p.add_argument("--out", default="results", help="output directory")
    p.set_defaults(func=cmd_reproduce)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
