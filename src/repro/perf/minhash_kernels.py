"""Ragged-batch MinHash kernels.

The reference :meth:`MinHasher.sketch` hashes one set at a time: an
``(n, k)`` broadcasted multiply-add per set, with a Python-level loop
across sets in ``sketch_all``. For the datasets the paper stratifies
(10⁴–10⁶ pivot sets of a few dozen elements each) the per-set loop and
``np.fromiter`` conversion dominate. The batch kernel here removes
both: all pivot sets are concatenated into one flat ``uint64`` array
with CSR-style offsets, the linear permutations are applied to the
whole flat array in memory-bounded chunks, and per-set minima fall out
of a single ``np.minimum.reduceat``.

Kernels take the permutation coefficients and modulus as arguments
rather than importing them, so this module depends only on numpy and
cannot form an import cycle with ``repro.stratify``.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np

#: Default ceiling for a kernel's largest temporary. 8 MiB measured
#: fastest for the sketch kernel on this class of machine: big enough
#: that per-chunk numpy dispatch overhead vanishes, small enough that
#: the reused scratch stays cache/TLB-warm and its one-time allocation
#: (page-fault cost scales with size) stays cheap.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024

_SIXTEEN = np.uint64(16)
_LOW_MASK = np.uint64(0xFFFF)
_THIRTY_TWO = np.uint64(32)


def as_uint64_elements(items: Iterable[int]) -> np.ndarray:
    """Coerce one pivot set to a flat ``uint64`` array.

    Integer ndarrays take a zero-copy (or single-cast) fast path;
    anything else goes through the reference per-element conversion.
    Negative elements are rejected rather than wrapped so the universe
    bound check downstream stays meaningful.
    """
    if isinstance(items, np.ndarray) and np.issubdtype(items.dtype, np.integer):
        arr = items.ravel()
        if np.issubdtype(arr.dtype, np.signedinteger) and arr.size and int(arr.min()) < 0:
            raise ValueError("element outside the pivot universe")
        return arr.astype(np.uint64, copy=False)
    return np.fromiter((int(v) for v in items), dtype=np.uint64)


def flatten_sets(sets: Sequence[Iterable[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate pivot sets into ``(flat, offsets)``.

    ``flat`` holds every element back to back; set ``i`` occupies
    ``flat[offsets[i]:offsets[i + 1]]``. Empty sets occupy zero
    elements (consecutive equal offsets).
    """
    n = len(sets)
    offsets = np.zeros(n + 1, dtype=np.int64)
    if n == 0:
        return np.empty(0, dtype=np.uint64), offsets
    if all(isinstance(s, np.ndarray) and s.dtype == np.uint64 for s in sets):
        # Already-converted sets (the stratifier's own pivot arrays):
        # concatenate without the per-set coercion call.
        chunks = sets
    else:
        chunks = [as_uint64_elements(s) for s in sets]
    np.cumsum([c.size for c in chunks], out=offsets[1:])
    flat = (
        np.concatenate([c.ravel() for c in chunks])
        if offsets[-1]
        else np.empty(0, dtype=np.uint64)
    )
    return flat, offsets


def hash_elements(arr: np.ndarray, a: np.ndarray, b: np.ndarray, prime: int) -> np.ndarray:
    """Apply ``k`` linear permutations to ``m`` elements → ``(m, k)``.

    Identical arithmetic to the reference ``MinHasher.sketch``: the
    product ``a·x`` can exceed 64 bits for a 32-bit universe, so ``x``
    is split as ``hi·2**16 + lo`` and everything is reduced mod ``prime``
    along the way.
    """
    hi = arr >> _SIXTEEN
    lo = arr & _LOW_MASK
    a2 = a[None, :]
    t = (a2 * hi[:, None]) % prime
    t = ((t << _SIXTEEN) % prime + (a2 * lo[:, None]) % prime) % prime
    return (t + b[None, :]) % prime


#: One cached scratch set per thread, keyed by shape. Repeated
#: ``sketch_all`` calls (the distributed stratifier sketches per
#: partition) would otherwise re-pay the first-touch page-fault cost of
#: ~two ``chunk_bytes``-sized arrays on every call. Deliberately a
#: single slot per thread, not a dict: workloads alternate between at
#: most a couple of shapes and an unbounded cache could pin large dead
#: blocks. Thread-local because the kernel writes into the scratch via
#: ``out=`` — the distributed stratifier sketches from several threads
#: concurrently, and a shared block would let them corrupt each
#: other's hashes.
_SCRATCH = threading.local()


def _scratch(k: int, m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    key = (k, m)
    if getattr(_SCRATCH, "key", None) != key:
        _SCRATCH.key = key
        _SCRATCH.blocks = (
            np.empty((k, m), dtype=np.uint64),
            np.empty((k, m), dtype=np.uint64),
            np.empty(m, dtype=np.uint64),
            np.empty(m, dtype=np.uint64),
        )
    return _SCRATCH.blocks


def sketch_batch(
    flat: np.ndarray,
    offsets: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    prime: int,
    empty_slot: int,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Sketch every set of a ragged batch; returns ``(n_sets, k)``.

    Bit-identical to per-set :func:`hash_elements` + ``min``, but with
    the arithmetic restructured for throughput:

    - **No division-based modular reduction at all.** With
      ``aH = (a·2¹⁶) mod P`` precomputed per slot, the unreduced sum
      ``s = aH·hi + a·lo + b`` stays below ``2⁵⁰`` (``aH, a < P < 2³³``;
      ``hi, lo < 2¹⁶``), so it cannot overflow ``uint64`` and
      ``s mod P`` equals ``(a·x + b) mod P`` exactly. The reduction
      then exploits ``P = 2³² + 15``: with ``u = s >> 32``,
      ``s − u·P = (s & M32) − 15u`` is congruent to ``s`` and sits in
      ``(−2²², 2³²)`` (``u < 2¹⁸``), stored wrapped by uint64. The
      final fix into ``[0, P)`` is folded into the minimum itself: per
      element, one of ``s − u·P`` and ``s − u·P + P`` *is* the true
      hash and the other is strictly larger (a positive multiple of
      ``P`` away, or wrapped near ``2⁶⁴``), so reducing both images per
      set and taking the elementwise min of the two small results is
      exact — no per-element fixup pass, and the hardware divide the
      reference pays per element (five ``%`` passes) never runs.
    - **Slot-major layout.** Blocks are ``(k, m)`` so
      ``np.minimum.reduceat`` reduces contiguous runs per slot row
      instead of striding across columns.
    - **Bounded, reused scratch.** Two ``(k, m)`` uint64 scratch blocks
      are allocated once and reused across chunks; ``m`` is sized so a
      block stays under ``chunk_bytes/2`` (fresh large allocations cost
      more than the arithmetic on a cold page).

    Empty sets are skipped (``reduceat`` would misread a zero-length
    segment as a singleton) and come back as ``empty_slot`` rows —
    exactly the reference sentinel sketch. Consecutive non-empty sets
    are contiguous in ``flat``, so a chunk of whole sets always maps to
    one flat slice.
    """
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a non-empty 1-D array")
    num_sets = offsets.size - 1
    k = int(a.size)
    out = np.full((num_sets, k), empty_slot, dtype=np.uint64)
    lengths = np.diff(offsets)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size == 0:
        return out

    prime_u = np.uint64(prime)
    a_col = a[:, None]
    b_col = b[:, None]
    a_hi_col = ((a << _SIXTEEN) % prime_u)[:, None]  # (a·2^16) mod P, exact
    # The divisionless reduction is specific to P = 2^32 + 15
    # (2^32 ≡ -15 mod P); any other modulus takes the plain % pass.
    special_prime = prime == (1 << 32) + 15

    starts = offsets[nonempty]
    ends = offsets[nonempty + 1]
    # Elements per chunk such that each (k, m) scratch block fits half
    # the cap; never smaller than the largest single set.
    budget = max(1, chunk_bytes // (2 * k * 8))
    scratch_m = max(budget, int(lengths.max()))
    t, w, hi_s, lo_s = _scratch(k, scratch_m)

    i = 0
    while i < nonempty.size:
        # Largest j with ends[j-1] - starts[i] <= budget; always >= i+1
        # so a single oversized set still goes through in one piece.
        j = int(np.searchsorted(ends, starts[i] + budget, side="right"))
        j = min(max(j, i + 1), nonempty.size)
        segment = flat[starts[i] : ends[j - 1]]
        m = segment.size
        hi = np.right_shift(segment, _SIXTEEN, out=hi_s[:m])
        lo = np.bitwise_and(segment, _LOW_MASK, out=lo_s[:m])
        block = t[:, :m]
        other = w[:, :m]
        np.multiply(a_hi_col, hi[None, :], out=block)
        np.multiply(a_col, lo[None, :], out=other)
        block += other
        block += b_col  # s = aH·hi + a·lo + b < 2^50
        seg_starts = starts[i:j] - starts[i]
        if special_prime:
            # With u = s >> 32: s - u·P = (s & M32) - 15u ≡ s (mod P),
            # an integer in (-2^22, 2^32) that uint64 stores wrapped.
            # Rather than fixing every element into [0, P), exploit
            # that min commutes with the two-branch correction: for a
            # true hash h, `block` holds h (branch t ≥ 0) or
            # h + 2^64 - P (wrapped), and `block + P` holds h + P or h
            # respectively — the wrong branch is always strictly
            # larger. So reduce both images per set and take the
            # elementwise min of the two small results; the per-element
            # fixup passes never run.
            np.right_shift(block, _THIRTY_TWO, out=other)  # u < 2^18
            other *= prime_u  # u·P < 2^51
            block -= other
            np.add(block, prime_u, out=other)
            lo_img = np.minimum.reduceat(block, seg_starts, axis=1)
            hi_img = np.minimum.reduceat(other, seg_starts, axis=1)
            mins = np.minimum(lo_img, hi_img, out=lo_img)
        else:
            np.mod(block, prime_u, out=block)
            mins = np.minimum.reduceat(block, seg_starts, axis=1)
        rows = nonempty[i:j]
        first, last = int(rows[0]), int(rows[-1])
        if last - first == j - 1 - i:
            out[first : last + 1] = mins.T
        else:
            out[rows] = mins.T
        i = j
    return out
