"""Batched compositeKModes kernels.

Two hot loops dominate the reference :class:`CompositeKModes`:

- ``_match_counts`` builds a per-cluster ``(n, k, L)`` boolean
  temporary and reduces it, looping over clusters in Python;
- ``_update_centers`` runs ``collections.Counter`` over a Python list
  for every (cluster, attribute) pair — ``K·k`` interpreter-speed
  passes per iteration.

The kernels here replace both with numpy-level batches while producing
*bit-identical* results (asserted in ``tests/perf/``):

- :func:`match_counts` compares a row block against all ``K·L`` centre
  slots in one broadcasted equality, chunking rows so the largest
  temporary stays under ``chunk_bytes`` — no per-cluster ``(n, k, L)``
  allocations.
- :func:`top_l_centers` factorises the sketch matrix per attribute once
  (``np.unique`` codes), then recovers every cluster's per-attribute
  value frequencies *and* first-occurrence positions from one
  ``np.bincount`` + ``np.minimum.at`` over integer keys (stable argsort
  when the key space is too large), ranking ties exactly like
  ``Counter.most_common`` (count descending, first appearance in
  member-row order ascending).
- :func:`similarity_matrix_blocked` computes the pairwise sketch-match
  matrix in row blocks instead of one Python-loop row at a time.
"""

from __future__ import annotations

import numpy as np

from repro.perf.minhash_kernels import DEFAULT_CHUNK_BYTES


def match_counts(
    sketches: np.ndarray,
    centers: np.ndarray,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """``(n, K)`` matched-attribute counts, batched over all clusters.

    A row matches an attribute if its value appears anywhere in the
    centre's top-``L`` list. The ``(rows, K·L, k)`` equality block is
    the only temporary; ``rows`` is sized so it stays below
    ``chunk_bytes``.
    """
    n, k = sketches.shape
    K, _, L = centers.shape
    # (K, k, L) -> (K·L, k), cluster-major then slot: row c*L + l holds
    # slot l of cluster c, so the reshape back to (rows, K, L, k) below
    # groups slots of one cluster together.
    flat_centers = np.ascontiguousarray(centers.transpose(0, 2, 1)).reshape(K * L, k)
    rows = max(1, chunk_bytes // max(1, K * L * k))
    counts = np.empty((n, K), dtype=np.int64)
    for start in range(0, n, rows):
        block = sketches[start : start + rows]
        eq = block[:, None, :] == flat_centers[None, :, :]
        hit = eq.reshape(block.shape[0], K, L, k).any(axis=2)
        counts[start : start + rows] = hit.sum(axis=2, dtype=np.int64)
    return counts


def factorize_columns(sketches: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-attribute dense codes for a categorical matrix.

    Returns ``(codes, col_offsets, all_values)`` where
    ``codes[i, attr] + col_offsets[attr]`` is a globally unique id for
    the value ``sketches[i, attr]`` and ``all_values`` maps that id back
    to the value. Computed once per :meth:`fit`; the codes are what lets
    :func:`top_l_centers` sort integer keys instead of raw ``uint64``
    values.
    """
    n, k = sketches.shape
    codes = np.empty((n, k), dtype=np.int64)
    values = []
    col_offsets = np.zeros(k + 1, dtype=np.int64)
    for attr in range(k):
        vals, inv = np.unique(sketches[:, attr], return_inverse=True)
        codes[:, attr] = inv
        values.append(vals)
        col_offsets[attr + 1] = col_offsets[attr] + vals.size
    all_values = np.concatenate(values) if values else np.empty(0, dtype=np.uint64)
    return codes, col_offsets, all_values


def top_l_centers(
    codes: np.ndarray,
    col_offsets: np.ndarray,
    all_values: np.ndarray,
    labels: np.ndarray,
    old_centers: np.ndarray,
    *,
    top_l: int,
    fill: np.uint64,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Recompute every cluster's top-``L`` centre lists in one pass.

    Each cell becomes the integer key
    ``label·C + col_offsets[attr] + code`` (``C`` = total distinct
    values), so a (cluster, attribute, value) triple is one key. Value
    frequencies are then one ``np.bincount`` over the keys, and
    first-occurrence positions one ``np.minimum.at`` scatter of the row
    indices (exact and order-independent — ``min`` is commutative).
    When the key space would outgrow ``chunk_bytes`` the same
    statistics come from a stable argsort of the keys instead (runs =
    triples; a stable sort leaves ties in ascending row order, so the
    first element of each run *is* the first occurrence).

    Either way, surviving triples are ranked inside their (cluster,
    attribute) group by count descending then first occurrence
    ascending — ``Counter.most_common``'s exact order, since
    ``heapq.nlargest`` is stable over ``Counter``'s first-come
    insertion order — and ranks below ``top_l`` are written out.
    Clusters with no members keep their stale centre, matching the
    reference re-capture behaviour.
    """
    n, k = codes.shape
    K, _, L = old_centers.shape
    total_codes = int(col_offsets[-1])
    num_keys = K * total_codes

    new_centers = np.full_like(old_centers, fill)
    keys = (
        labels[:, None] * np.int64(total_codes) + (codes + col_offsets[:-1][None, :])
    ).ravel()

    if num_keys * 16 <= chunk_bytes:
        # Dense path: one bincount + one minimum.at over the key space.
        counts_per_key = np.bincount(keys, minlength=num_keys)
        first_row = np.full(num_keys, n, dtype=np.int64)
        np.minimum.at(first_row, keys, np.repeat(np.arange(n, dtype=np.int64), k))
        run_keys = np.flatnonzero(counts_per_key)
        run_counts = counts_per_key[run_keys]
        first_pos = first_row[run_keys]
    else:
        # Sparse fallback: group keys by stable sort (row-major flat
        # indices, so ties stay in ascending row order).
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        run_counts = np.diff(np.r_[run_starts, sorted_keys.size])
        run_keys = sorted_keys[run_starts]
        first_pos = order[run_starts] // np.int64(k)

    value_ids = run_keys % total_codes
    run_labels = run_keys // total_codes
    run_attrs = np.searchsorted(col_offsets, value_ids, side="right") - 1

    # Rank runs inside each (cluster, attribute) group: count desc,
    # then first occurrence asc.
    group = run_labels * np.int64(k) + run_attrs
    ranked = np.lexsort((first_pos, -run_counts, group))
    group_sorted = group[ranked]
    group_starts = np.flatnonzero(np.r_[True, group_sorted[1:] != group_sorted[:-1]])
    rank_in_group = np.arange(group_sorted.size) - np.repeat(
        group_starts, np.diff(np.r_[group_starts, group_sorted.size])
    )
    keep = rank_in_group < top_l
    sel = ranked[keep]
    new_centers[run_labels[sel], run_attrs[sel], rank_in_group[keep]] = all_values[value_ids[sel]]

    empty = np.bincount(labels, minlength=K) == 0
    if empty.any():
        new_centers[empty] = old_centers[empty]
    return new_centers


def similarity_matrix_blocked(
    sketches: np.ndarray, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> np.ndarray:
    """Pairwise sketch-match fractions, computed in row blocks.

    Equivalent to the reference per-row loop; the block size is chosen
    so the ``(rows, n, k)`` boolean temporary stays under
    ``chunk_bytes``.
    """
    sketches = np.asarray(sketches)
    n, k = sketches.shape if sketches.ndim == 2 else (sketches.shape[0], 1)
    sim = np.empty((n, n), dtype=np.float64)
    rows = max(1, chunk_bytes // max(1, n * k))
    for start in range(0, n, rows):
        block = sketches[start : start + rows]
        sim[start : start + rows] = np.mean(
            block[:, None, :] == sketches[None, :, :], axis=2
        )
    return sim
