"""Vectorised kernel layer for the stratifier hot paths.

The stratification front door (pivot sketching + compositeKModes) is
paid by every experiment before a single partition runs, so its cost
must stay negligible next to the workloads being partitioned (the
bi-objective gains evaporate otherwise — cf. Khaleghzadeh et al.,
arXiv:1907.04080). This package holds the batched numpy kernels that
the stratifier modules call into:

- :mod:`repro.perf.minhash_kernels` — ragged-batch MinHash sketching
  (one broadcasted multiply-add over all sets at once, per-set minima
  via ``np.minimum.reduceat``) and the ndarray element fast path.
- :mod:`repro.perf.kmodes_kernels` — batched match-count matrices with
  memory-aware row chunking, a sort/bincount-based top-L centre update,
  and a blocked similarity matrix.
- :mod:`repro.perf.fpm_kernels` / :mod:`repro.perf.lz77_kernels` —
  packed-bitmap support counting and the precomputed-link LZ77 coder.
- :mod:`repro.perf.native` — optional numba-compiled (``native``)
  counterparts of the four hottest kernels. Imports lazily; without
  numba the tier reports unavailable and nothing changes.
- :mod:`repro.perf.autotune` — shape-aware dispatch among the
  ``reference | numpy | native`` tiers behind ``kernel="auto"``, the
  default on every workload. Deliberately not re-exported here — it
  imports :mod:`repro.obs`, and keeping it out of this package marker
  keeps the kernel modules import-cycle-free.

Every kernel is bit-identical to the reference implementation it
replaces; the reference paths are kept on the calling classes as
oracles (``sketch_all_reference``, ``kernel="reference"``, …) and the
equivalence is asserted by ``tests/perf/`` and
``benchmarks/bench_kernels.py``. Kernels are pure functions of their
arguments (no imports from the stratifier modules) so they stay free of
import cycles and are trivially testable.
"""

from repro.perf.kmodes_kernels import (
    factorize_columns,
    match_counts,
    similarity_matrix_blocked,
    top_l_centers,
)
from repro.perf.minhash_kernels import (
    DEFAULT_CHUNK_BYTES,
    as_uint64_elements,
    flatten_sets,
    hash_elements,
    sketch_batch,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "as_uint64_elements",
    "factorize_columns",
    "flatten_sets",
    "hash_elements",
    "match_counts",
    "similarity_matrix_blocked",
    "sketch_batch",
    "top_l_centers",
]
