"""Optional compiled (numba) kernel tier.

One ``*_njit`` module per hot kernel family — MinHash sketching,
compositeKModes assignment, LZ77 match scanning, bitmap support
counting — each a tight loop decorated with the :mod:`runtime` shim's
``@njit(cache=True)``. Importing this package never imports numba;
the shim probes for it lazily, and without it the kernels run
interpreted (bit-identical, slow) while
:func:`repro.perf.native.runtime.numba_available` tells the autotuner
to keep dispatching to the numpy tier instead.

Like every :mod:`repro.perf` module, the kernels here are pure
functions of their arguments, are bit-identical to the kept reference
oracles, and must be imported by a parity test under ``tests/perf/``
(the KERNEL-ORACLE lint rule enforces this for the native subpackage
too).
"""

from repro.perf.native.runtime import njit, numba_available

__all__ = ["njit", "numba_available"]
