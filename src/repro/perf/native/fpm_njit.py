"""Compiled bitmap support counting (Apriori levels, Eclat DFS nodes).

The numpy tier pays one fancy-indexed copy of the candidate's first
item row per block plus a ``bitwise_count`` pass; the compiled loops
AND the item rows word-by-word with the popcount inlined (a SWAR
sequence — ``np.bitwise_count`` needs numpy 2.x and is not guaranteed
inside nopython code), so a candidate's support never materialises an
intermediate row. All masks are ``uint64`` module constants; the SWAR
steps never overflow, so the interpreted fallback is warning-free.
"""

from __future__ import annotations

import numpy as np

from repro.perf.native.runtime import njit

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_LOW7 = np.uint64(0x7F)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S8 = np.uint64(8)
_S16 = np.uint64(16)
_S32 = np.uint64(32)
_ZERO = np.uint64(0)


@njit(cache=True)
def _popcount(x):
    x = x - ((x >> _S1) & _M1)
    x = (x & _M2) + ((x >> _S2) & _M2)
    x = (x + (x >> _S4)) & _M4
    x = x + (x >> _S8)
    x = x + (x >> _S16)
    x = x + (x >> _S32)
    return x & _LOW7


@njit(cache=True)
def _candidate_supports(bits, rows):
    n_cand, k = rows.shape
    num_words = bits.shape[1]
    out = np.zeros(n_cand, dtype=np.int64)
    for i in range(n_cand):
        total = _ZERO
        for w in range(num_words):
            acc = bits[rows[i, 0], w]
            for j in range(1, k):
                acc = acc & bits[rows[i, j], w]
            total = total + _popcount(acc)
        out[i] = total
    return out


@njit(cache=True)
def _intersect_supports(prefix_bits, bits, ext_rows):
    n_ext = ext_rows.shape[0]
    num_words = prefix_bits.shape[0]
    inter = np.empty((n_ext, num_words), dtype=np.uint64)
    sup = np.zeros(n_ext, dtype=np.int64)
    for i in range(n_ext):
        total = _ZERO
        for w in range(num_words):
            v = prefix_bits[w] & bits[ext_rows[i], w]
            inter[i, w] = v
            total = total + _popcount(v)
        sup[i] = total
    return inter, sup


def candidate_supports_native(bitmap, rows: np.ndarray) -> np.ndarray:
    """Native counterpart of :func:`repro.perf.fpm_kernels.candidate_supports`.

    Same contract: ``rows`` is ``(n_cand, k)`` int64 of bitmap row
    indices (sentinel row for unseen items), ``k == 0`` means the empty
    itemset contained in every transaction.
    """
    n_cand, k = rows.shape
    if n_cand == 0:
        return np.empty(0, dtype=np.int64)
    if k == 0:
        return np.full(n_cand, bitmap.num_transactions, dtype=np.int64)
    return _candidate_supports(bitmap.bits, np.ascontiguousarray(rows, dtype=np.int64))


def intersect_supports_native(
    prefix_bits: np.ndarray, extension_rows: np.ndarray, bitmap
) -> tuple[np.ndarray, np.ndarray]:
    """Native counterpart of :func:`repro.perf.fpm_kernels.intersect_supports`."""
    return _intersect_supports(
        np.ascontiguousarray(prefix_bits, dtype=np.uint64),
        bitmap.bits,
        np.ascontiguousarray(extension_rows, dtype=np.int64),
    )
