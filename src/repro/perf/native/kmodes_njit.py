"""Compiled compositeKModes assignment (match counting).

The numpy tier builds a chunked ``(rows, K·L)`` boolean equality
temporary per block; the compiled loop needs none — it walks
``(row, cluster, attribute)`` and breaks out of the inner top-``L``
scan on the first hit, which is both the common case (L is 3) and
exactly the reference semantics (``any`` over slots). Centre updates
stay on the numpy ``top_l_centers`` kernel: they run once per
iteration, not once per row, so compiling them buys nothing.
"""

from __future__ import annotations

import numpy as np

from repro.perf.native.runtime import njit


@njit(cache=True)
def _match_counts(sketches, centers):
    n, k = sketches.shape
    num_clusters = centers.shape[0]
    top_l = centers.shape[2]
    out = np.zeros((n, num_clusters), dtype=np.int64)
    for i in range(n):
        for c in range(num_clusters):
            hits = 0
            for attr in range(k):
                v = sketches[i, attr]
                for slot in range(top_l):
                    if centers[c, attr, slot] == v:
                        hits += 1
                        break
            out[i, c] = hits
    return out


def match_counts_native(sketches: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Native counterpart of :func:`repro.perf.kmodes_kernels.match_counts`.

    ``sketches`` is ``(n, k)`` uint64, ``centers`` ``(K, k, L)`` uint64;
    returns the ``(n, K)`` int64 matched-attribute counts, bit-identical
    to the reference per-cluster matcher.
    """
    return _match_counts(
        np.ascontiguousarray(sketches, dtype=np.uint64),
        np.ascontiguousarray(centers, dtype=np.uint64),
    )
