"""Numba availability gate and ``@njit`` shim for the native tier.

The native kernels are plain Python loops decorated with :func:`njit`.
When numba imports cleanly, :func:`njit` is ``numba.njit`` and the
loops compile to machine code on first call (``cache=True`` persists
the compilation across processes). When numba is absent — the supported
degraded mode — :func:`njit` is an identity decorator: the kernels stay
importable and runnable (interpreted, slowly), so the parity suites can
still exercise the exact arithmetic the compiled tier would run, while
the autotuner never *selects* the native tier because
:func:`numba_available` reports it unavailable.

The availability probe is cached (one import attempt per process);
tests that poison ``sys.modules["numba"]`` call
``numba_available.cache_clear()`` to re-probe.
"""

from __future__ import annotations

import functools
import importlib
import logging

from repro.obs.log import get_logger, log_event


@functools.lru_cache(maxsize=1)
def numba_available() -> bool:
    """True iff ``import numba`` succeeds in this interpreter."""
    try:
        importlib.import_module("numba")
    except Exception as exc:  # ImportError, or a broken install raising anything
        log_event(
            get_logger(__name__),
            logging.DEBUG,
            "native.numba_missing",
            error=repr(exc),
        )
        return False
    return True


def njit(*args, **kwargs):
    """``numba.njit`` when numba imports; identity decorator otherwise.

    Always used with arguments (``@njit(cache=True)``); the bare-
    decorator form is accepted for completeness.
    """
    if numba_available():
        numba = importlib.import_module("numba")
        return numba.njit(*args, **kwargs)
    if args and callable(args[0]):
        return args[0]

    def passthrough(fn):
        return fn

    return passthrough
