"""Compiled ragged-batch MinHash sketching.

One fused loop over (set, slot, element) replaces the numpy tier's
chunked broadcast + ``reduceat``: the running minimum lives in a
register, the flat element segment of each set is re-read per slot from
L1, and no ``(k, m)`` temporary is ever materialised. The arithmetic is
the *reference* five-step mod-``P`` sequence of
:func:`repro.perf.minhash_kernels.hash_elements` (every intermediate
stays below ``2**49``, so ``uint64`` never wraps and the interpreted
fallback is warning-free), which makes bit-identity to
``MinHasher.sketch_all_reference`` an arithmetic identity rather than a
proof obligation.
"""

from __future__ import annotations

import numpy as np

from repro.perf.native.runtime import njit

_SIXTEEN = np.uint64(16)
_LOW_MASK = np.uint64(0xFFFF)


@njit(cache=True)
def _sketch_sets(flat, offsets, a, b, prime, empty_slot):
    num_sets = offsets.shape[0] - 1
    k = a.shape[0]
    out = np.full((num_sets, k), empty_slot, dtype=np.uint64)
    for s in range(num_sets):
        start = offsets[s]
        end = offsets[s + 1]
        if end <= start:
            continue  # empty set: keep the sentinel row
        for j in range(k):
            aj = a[j]
            bj = b[j]
            best = empty_slot
            for idx in range(start, end):
                x = flat[idx]
                hi = x >> _SIXTEEN
                lo = x & _LOW_MASK
                t = (aj * hi) % prime
                t = ((t << _SIXTEEN) % prime + (aj * lo) % prime) % prime
                h = (t + bj) % prime
                if h < best:
                    best = h
            out[s, j] = best
    return out


def sketch_all_native(
    flat: np.ndarray,
    offsets: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    prime: int,
    empty_slot: int,
) -> np.ndarray:
    """Native counterpart of :func:`repro.perf.minhash_kernels.sketch_batch`.

    Same contract: ``(flat, offsets)`` is the CSR layout of
    ``flatten_sets``, empty sets come back as ``empty_slot`` rows, and
    the result is bit-identical to the per-set reference sketch.
    """
    return _sketch_sets(
        np.ascontiguousarray(flat, dtype=np.uint64),
        np.ascontiguousarray(offsets, dtype=np.int64),
        np.ascontiguousarray(a, dtype=np.uint64),
        np.ascontiguousarray(b, dtype=np.uint64),
        np.uint64(prime),
        np.uint64(empty_slot),
    )
