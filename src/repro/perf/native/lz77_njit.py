"""Compiled LZ77 match scanning over precomputed links.

The numpy tier's :func:`repro.perf.lz77_kernels.compress_block` already
precomputes the newest-first ``prev`` links with one argsort; its
remaining Python cost is the per-position chain walk and the
binary-search match extension. The compiled scan here walks the same
links with the reference's exact probe discipline (``max_chain`` cap,
deque-trim emulation on the first out-of-window candidate) and extends
matches byte-at-a-time — free once compiled — returning the match
token arrays. Serialization stays in
:func:`repro.perf.lz77_kernels.serialize_tokens`, shared with the
numpy tier, so blobs are byte-identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro.perf.native.runtime import njit

_MIN_MATCH = 4


@njit(cache=True)
def _scan(data, links, window, max_chain, max_match):
    n = data.shape[0]
    nlink = links.shape[0]
    cap = n // _MIN_MATCH + 1  # a match advances >= _MIN_MATCH positions
    m_pos = np.empty(cap, dtype=np.int64)
    m_dist = np.empty(cap, dtype=np.int64)
    m_len = np.empty(cap, dtype=np.int64)
    n_matches = 0
    probes_total = 0
    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos < nlink:
            cand = links[pos]
            first = cand
            probes = 0
            limit = max_match if max_match < n - pos else n - pos
            while cand >= 0:
                if probes >= max_chain:
                    break
                dist = pos - cand
                if dist > window:
                    # Deque-trim emulation: an out-of-window candidate
                    # the reference deque still held costs one probe
                    # before the break; a trimmed one costs nothing.
                    if cand >= first - window:
                        probes += 1
                    break
                probes += 1
                length = _MIN_MATCH
                while length < limit and data[cand + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = dist
                    if length >= limit:
                        break
                cand = links[cand]
            probes_total += probes
        if best_len >= _MIN_MATCH:
            m_pos[n_matches] = pos
            m_dist[n_matches] = best_dist
            m_len[n_matches] = best_len
            n_matches += 1
            pos += best_len
        else:
            pos += 1
    return m_pos[:n_matches], m_dist[:n_matches], m_len[:n_matches], probes_total


def scan_matches_native(
    data: bytes, links: np.ndarray, *, window: int, max_chain: int, max_match: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Native counterpart of :func:`repro.perf.lz77_kernels.scan_matches`.

    ``links`` is the output of ``build_match_links(data)``. Returns
    ``(match_pos, match_dists, match_lens, probes_total)`` with the
    reference coder's exact match choices and probe accounting.
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    m_pos, m_dist, m_len, probes = _scan(
        arr,
        np.ascontiguousarray(links, dtype=np.int64),
        int(window),
        int(max_chain),
        int(max_match),
    )
    return m_pos, m_dist, m_len, int(probes)
