"""Fast LZ77 coder kernels and batched varint encoding.

The reference :meth:`LZ77Codec.compress` maintains Python
``dict[bytes, deque]`` hash chains — a bytes-slice allocation plus dict
probe per scanned position — and extends matches one byte at a time.
The kernels here remove both costs while emitting the **byte-identical
token stream** (and identical probe/match/literal statistics):

- :func:`build_match_links` precomputes, with one vectorised stable
  argsort over the 4-byte keys, a ``prev`` array linking every position
  to the nearest earlier position with the same 4-byte prefix — the
  hash chains of the reference, newest-first, materialised up front.
  Because links compare the actual 32-bit key there are no hash
  collisions to re-verify.
- :func:`scan_matches` walks the links with the reference's exact
  probe discipline (``max_chain`` cap, the window-trimming the deques
  performed, the count-then-break on the first out-of-window entry)
  and extends candidate matches by slice comparison — one ``memcmp``
  per doubling step instead of one interpreter iteration per byte.
  :func:`serialize_tokens` turns the chosen matches into the token
  stream; :func:`compress_block` composes the two. The native tier
  (:mod:`repro.perf.native.lz77_njit`) reuses ``serialize_tokens``, so
  its blobs are byte-identical by construction.
- :func:`encode_varint_batch` LEB128-encodes a whole int array at once
  (vectorised byte-count + scatter), so match tokens and the WebGraph
  coder's gap lists serialize without a per-value Python call.

Kernels are pure numpy + stdlib, importable without touching the
workload modules; the reference coder survives as
``LZ77Codec(kernel="reference")`` and the equivalence suite asserts
identical blobs and stats.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_MIN_MATCH = 4
_LITERAL_FLAG = 0
_MATCH_FLAG = 1


def build_match_links(data: bytes) -> np.ndarray:
    """``prev[i]`` = nearest ``j < i`` with ``data[j:j+4] == data[i:i+4]``.

    Returns an int64 array of length ``max(len(data) - 3, 0)`` with
    ``-1`` where no earlier occurrence exists. Equal keys keep position
    order via a stable argsort, so following the links walks the
    reference's deque newest-first.
    """
    n = len(data)
    if n < _MIN_MATCH:
        return np.empty(0, dtype=np.int64)
    arr = np.frombuffer(data, dtype=np.uint8)
    keys = (
        arr[: n - 3].astype(np.uint32)
        | (arr[1 : n - 2].astype(np.uint32) << np.uint32(8))
        | (arr[2 : n - 1].astype(np.uint32) << np.uint32(16))
        | (arr[3:].astype(np.uint32) << np.uint32(24))
    )
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    prev = np.full(keys.size, -1, dtype=np.int64)
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _match_length(data: bytes, cand: int, pos: int, limit: int) -> int:
    """Longest ``L <= limit`` with ``data[cand:cand+L] == data[pos:pos+L]``.

    The first ``_MIN_MATCH`` bytes are known equal (same 4-byte key);
    the extension binary-searches with slice compares (memcmp) instead
    of byte-at-a-time interpreter steps. ``data[a:a+L] == data[b:b+L]``
    is a pure function of the *original* buffer, exactly like the
    reference's ``data[cand + length] == data[pos + length]`` walk, so
    self-overlapping matches behave identically.
    """
    if data[cand + _MIN_MATCH : cand + limit] == data[pos + _MIN_MATCH : pos + limit]:
        return limit
    lo, hi = _MIN_MATCH, limit - 1
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        if data[cand + lo : cand + mid] == data[pos + lo : pos + mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


def encode_varint_batch(values: Sequence[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LEB128-encode an array of non-negative ints in one pass.

    Returns ``(buf, offsets)``: ``buf`` is a uint8 array of the
    concatenated encodings and value ``i`` occupies
    ``buf[offsets[i]:offsets[i + 1]]`` — byte-identical to calling the
    scalar ``encode_varint`` per value.
    """
    if isinstance(values, np.ndarray):
        if values.size and values.dtype.kind != "u" and values.min() < 0:
            raise ValueError("varint requires non-negative values")
        v = values.astype(np.uint64)
    else:
        try:
            # Direct uint64 conversion: a plain np.asarray would promote
            # a mix of small ints and values >= 2**63 to float64 and
            # silently round them.
            v = np.asarray(values, dtype=np.uint64)
        except OverflowError as exc:
            raise ValueError(
                "varint batch values must be non-negative and fit uint64"
            ) from exc
    if v.size == 0:
        return np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64)
    nbytes = np.ones(v.size, dtype=np.int64)
    shifted = v >> np.uint64(7)
    while shifted.any():
        nbytes += shifted > 0
        shifted >>= np.uint64(7)
    offsets = np.zeros(v.size + 1, dtype=np.int64)
    np.cumsum(nbytes, out=offsets[1:])
    buf = np.empty(int(offsets[-1]), dtype=np.uint8)
    rem = v.copy()
    for j in range(int(nbytes.max())):
        active = nbytes > j
        byte = (rem[active] & np.uint64(0x7F)).astype(np.uint8)
        cont = (nbytes[active] > j + 1).astype(np.uint8) << np.uint8(7)
        buf[offsets[:-1][active] + j] = byte | cont
        rem >>= np.uint64(7)
    return buf, offsets


def encode_varints_bytes(values: Sequence[int] | np.ndarray) -> bytes:
    """Concatenated LEB128 encodings of ``values`` as one bytes object."""
    buf, _ = encode_varint_batch(values)
    return buf.tobytes()


def scan_matches(
    data: bytes, links: np.ndarray, *, window: int, max_chain: int, max_match: int
) -> tuple[list[int], list[int], list[int], int]:
    """Walk precomputed links, choosing the reference coder's matches.

    ``links`` is the output of :func:`build_match_links`. Returns
    ``(match_pos, match_dists, match_lens, probes_total)`` — matches in
    position order with the reference's exact probe accounting. The
    native tier's :func:`repro.perf.native.lz77_njit.scan_matches_native`
    implements the same contract.
    """
    n = len(data)
    nlink = links.size

    probes_total = 0
    match_pos: list[int] = []
    match_dists: list[int] = []
    match_lens: list[int] = []

    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos < nlink:
            cand = int(links[pos])
            # The reference deque was front-trimmed whenever a same-key
            # position was indexed: after the newest entry `first` went
            # in, only entries >= first - window survive. An
            # out-of-window candidate still in the deque costs one
            # probe before the break; a trimmed one costs nothing.
            first = cand
            probes = 0
            limit = min(max_match, n - pos)
            while cand >= 0:
                if probes >= max_chain:
                    break
                dist = pos - cand
                if dist > window:
                    if cand >= first - window:
                        probes += 1
                    break
                probes += 1
                length = _match_length(data, cand, pos, limit)
                if length > best_len:
                    best_len = length
                    best_dist = dist
                    if length >= limit:
                        break
                cand = int(links[cand])
            probes_total += probes
        if best_len >= _MIN_MATCH:
            match_pos.append(pos)
            match_dists.append(best_dist)
            match_lens.append(best_len)
            pos += best_len
        else:
            pos += 1
    return match_pos, match_dists, match_lens, probes_total


def serialize_tokens(
    data: bytes,
    match_pos: Sequence[int],
    match_dists: Sequence[int],
    match_lens: Sequence[int],
    probes_total: int,
) -> tuple[bytes, dict[str, int]]:
    """Serialize a match scan into the reference coder's token stream.

    Shared by the numpy and native tiers (identical match arrays in,
    identical blob out). Returns ``(blob, stats)`` where stats carries
    the reference's counters: ``matches``, ``literals``, ``probes``.
    """
    n = len(data)
    # Each op is (literal_start, literal_end, match_index); match_index
    # -1 marks the trailing literal run. Literal runs are the gaps
    # between consecutive matches.
    ops: list[tuple[int, int, int]] = []
    prev_end = 0
    for mi in range(len(match_pos)):
        ops.append((prev_end, int(match_pos[mi]), mi))
        prev_end = int(match_pos[mi]) + int(match_lens[mi])
    if prev_end < n:
        ops.append((prev_end, n, -1))

    # Serialize: header + runs + match tokens, all varints batch-encoded
    # up front (a single-value encode_varint_batch call per literal run
    # would pay numpy dispatch ~5000 times on repetitive data).
    run_lens = [lit_b - lit_a for lit_a, lit_b, _ in ops if lit_b > lit_a]
    dist_buf, dist_off = encode_varint_batch(match_dists)
    len_buf, len_off = encode_varint_batch(match_lens)
    run_buf, run_off = encode_varint_batch(run_lens)
    dist_mem = dist_buf.data
    len_mem = len_buf.data
    run_mem = run_buf.data
    out = bytearray(encode_varints_bytes([n]))
    literals_total = 0
    ri = 0
    for lit_a, lit_b, mi in ops:
        if lit_b > lit_a:
            literals_total += lit_b - lit_a
            out.append(_LITERAL_FLAG)
            out += run_mem[run_off[ri] : run_off[ri + 1]]
            ri += 1
            out += data[lit_a:lit_b]
        if mi >= 0:
            out.append(_MATCH_FLAG)
            out += dist_mem[dist_off[mi] : dist_off[mi + 1]]
            out += len_mem[len_off[mi] : len_off[mi + 1]]
    stats = {
        "matches": len(match_dists),
        "literals": literals_total,
        "probes": probes_total,
    }
    return bytes(out), stats


def compress_block(
    data: bytes, *, window: int, max_chain: int, max_match: int
) -> tuple[bytes, dict[str, int]]:
    """LZ77-compress ``data``; byte-identical to the reference coder.

    Composes :func:`build_match_links`, :func:`scan_matches` and
    :func:`serialize_tokens`. Returns ``(blob, stats)`` where stats
    carries the reference's counters: ``matches``, ``literals``,
    ``probes``.
    """
    links = build_match_links(data)
    match_pos, match_dists, match_lens, probes_total = scan_matches(
        data, links, window=window, max_chain=max_chain, max_match=max_match
    )
    return serialize_tokens(data, match_pos, match_dists, match_lens, probes_total)
