"""Packed vertical-bitmap kernels for frequent pattern mining.

The reference Apriori counts every candidate against every transaction
with Python ``frozenset`` containment — ``O(n_tx · n_cand)`` interpreter
iterations per level — and the reference Eclat intersects Python
``frozenset`` tidlists. Both hot loops collapse onto the same vertical
layout: a bit-matrix with one **row per distinct item** and one **bit
per transaction** (64 transactions per ``uint64`` word). A candidate
itemset's support is then the popcount of the AND of its item rows, so
one level of candidate counting becomes a handful of fancy-indexed
``np.bitwise_and`` passes plus one ``np.bitwise_count`` — no per-
transaction Python at all — and an Eclat tidlist intersection is a
single vectorised AND over words.

As everywhere in :mod:`repro.perf`, the kernels are pure functions of
their arguments (numpy only, no imports from the workload modules) and
the callers keep their original implementations behind
``kernel="reference"`` as the oracles the equivalence suite tests
against. Outputs are bit-identical: supports, the candidate counts and
the work-unit accounting all match the reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.perf.minhash_kernels import DEFAULT_CHUNK_BYTES


@dataclass(frozen=True)
class TransactionBitmap:
    """Vertical bit-matrix of one partition's transactions.

    Attributes
    ----------
    items:
        Sorted distinct item ids, shape ``(num_items,)`` int64.
    bits:
        ``(num_items + 1, num_words)`` uint64; row ``r`` is item
        ``items[r]``'s bitmap over transactions (bit ``t`` of word
        ``t // 64`` set iff transaction ``t`` contains the item). The
        **last row is an all-zero sentinel** so out-of-vocabulary items
        can be counted (their support is 0) without branching.
    supports:
        Per-item support (popcount of each item row), ``(num_items,)``.
    num_transactions:
        Number of transactions packed (bit-width of each row).
    total_occurrences:
        Total set bits — Σ per-transaction *distinct* item counts,
        which is exactly the reference miners' level-1 work charge.
    """

    items: np.ndarray
    bits: np.ndarray
    supports: np.ndarray
    num_transactions: int
    total_occurrences: int

    @property
    def num_items(self) -> int:
        return int(self.items.size)

    @property
    def sentinel_row(self) -> int:
        return self.num_items

    def rows_for(self, patterns: np.ndarray) -> np.ndarray:
        """Map an ``(n, k)`` int64 matrix of item ids to row indices.

        Items absent from the partition map to the zero sentinel row,
        so any pattern containing one gets support 0 — the same answer
        the reference containment scan gives.
        """
        pos = np.searchsorted(self.items, patterns)
        pos = np.minimum(pos, max(self.num_items - 1, 0))
        if self.num_items == 0:
            return np.full(patterns.shape, self.sentinel_row, dtype=np.int64)
        miss = self.items[pos] != patterns
        return np.where(miss, self.sentinel_row, pos)


def pack_transactions(transactions: Sequence[Iterable[int]]) -> TransactionBitmap:
    """Pack transactions into a :class:`TransactionBitmap`.

    Duplicate items within a transaction collapse to one bit, matching
    the reference miners' ``frozenset(t)`` conversion.
    """
    tx_ids: list[int] = []
    values: list[int] = []
    n_tx = 0
    for tid, t in enumerate(transactions):
        n_tx = tid + 1
        distinct = set(t)
        values.extend(distinct)
        tx_ids.extend([tid] * len(distinct))
    num_words = max(1, -(-n_tx // 64))
    vals = np.asarray(values, dtype=np.int64)
    if vals.size == 0:
        return TransactionBitmap(
            items=np.empty(0, dtype=np.int64),
            bits=np.zeros((1, num_words), dtype=np.uint64),
            supports=np.empty(0, dtype=np.int64),
            num_transactions=n_tx,
            total_occurrences=0,
        )
    items, rows = np.unique(vals, return_inverse=True)
    tx = np.asarray(tx_ids, dtype=np.uint64)
    bits = np.zeros((items.size + 1, num_words), dtype=np.uint64)
    np.bitwise_or.at(
        bits, (rows, (tx >> np.uint64(6)).astype(np.int64)), np.uint64(1) << (tx & np.uint64(63))
    )
    supports = np.bitwise_count(bits[:-1]).sum(axis=1, dtype=np.int64)
    return TransactionBitmap(
        items=items,
        bits=bits,
        supports=supports,
        num_transactions=n_tx,
        total_occurrences=int(vals.size),
    )


def candidate_supports(
    bitmap: TransactionBitmap,
    rows: np.ndarray,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Support of each candidate row-tuple: popcount(AND of item rows).

    ``rows`` is ``(n_cand, k)`` int64 of row indices (see
    :meth:`TransactionBitmap.rows_for`). Candidates are processed in
    blocks sized so the ``(block, num_words)`` AND temporary stays under
    ``chunk_bytes``. ``k == 0`` means the empty itemset, contained in
    every transaction.
    """
    n_cand, k = rows.shape
    if n_cand == 0:
        return np.empty(0, dtype=np.int64)
    if k == 0:
        return np.full(n_cand, bitmap.num_transactions, dtype=np.int64)
    num_words = bitmap.bits.shape[1]
    out = np.empty(n_cand, dtype=np.int64)
    block = max(1, chunk_bytes // (num_words * 8))
    for start in range(0, n_cand, block):
        stop = min(start + block, n_cand)
        acc = bitmap.bits[rows[start:stop, 0]]  # fancy index: fresh copy
        for j in range(1, k):
            np.bitwise_and(acc, bitmap.bits[rows[start:stop, j]], out=acc)
        out[start:stop] = np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    return out


def pattern_supports(
    bitmap: TransactionBitmap,
    patterns: Sequence[tuple[int, ...]],
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    supports: Callable[[TransactionBitmap, np.ndarray], np.ndarray] | None = None,
) -> dict[tuple[int, ...], int]:
    """Support of arbitrary (mixed-length) patterns, grouped by length.

    Patterns with items the partition never saw get support 0 via the
    sentinel row — the global-pruning scan of Savasere's phase 2 counts
    a candidate union that other partitions contributed to. ``supports``
    swaps the per-group counting kernel (the native tier passes its
    compiled counterpart); default is :func:`candidate_supports`.
    """
    if supports is None:
        def supports(bm, rows):
            return candidate_supports(bm, rows, chunk_bytes)
    by_len: dict[int, list[tuple[int, ...]]] = {}
    for p in patterns:
        by_len.setdefault(len(p), []).append(p)
    counts: dict[tuple[int, ...], int] = {}
    for k, group in by_len.items():
        if k == 0:
            for p in group:
                counts[p] = bitmap.num_transactions
            continue
        idx = bitmap.rows_for(np.asarray(group, dtype=np.int64).reshape(len(group), k))
        sup = supports(bitmap, idx)
        for p, c in zip(group, sup):
            counts[p] = int(c)
    return counts


def intersect_supports(
    prefix_bits: np.ndarray, extension_rows: np.ndarray, bitmap: TransactionBitmap
) -> tuple[np.ndarray, np.ndarray]:
    """AND one prefix tidlist-bitmap against many item rows at once.

    Returns ``(intersections, supports)`` where ``intersections`` is
    ``(n_ext, num_words)`` and ``supports`` its per-row popcount — the
    batched Eclat DFS step.
    """
    inter = np.bitwise_and(prefix_bits[None, :], bitmap.bits[extension_rows])
    return inter, np.bitwise_count(inter).sum(axis=1, dtype=np.int64)
