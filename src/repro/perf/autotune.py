"""Shape-aware kernel tier dispatch (the autotuner).

Every hot kernel family now has up to three implementations —
``reference`` (the kept Python/numpy-loop oracle), ``numpy`` (the
batched kernels of PRs 1–2) and ``native`` (the optional numba tier in
:mod:`repro.perf.native`) — all bit-identical. This module picks one
per call:

- An explicit ``kernel=`` argument wins outright. The historical
  spellings ``"batched"``, ``"bitmap"`` and ``"fast"`` remain accepted
  as aliases of the numpy tier. Explicitly requesting ``"native"``
  without numba raises (you asked for something the interpreter cannot
  provide); everything else degrades gracefully.
- ``kernel="auto"`` (the new default everywhere) consults, in order:
  the ``REPRO_KERNEL_TIER`` environment variable (a process-wide pin;
  ignored for kinds that lack the pinned tier, softened to the shape
  choice when it pins an unavailable native tier), then the shape of
  the input: below a per-kind work threshold the fixed dispatch
  overhead of the batched tiers loses to the reference path, above it
  the fastest available tier wins, with the native-vs-numpy ranking
  seeded from the per-tier timings ``benchmarks/bench_kernels.py``
  records in ``BENCH_kernels.json``.

Every resolution increments the
``repro_kernel_dispatch_total{kernel,tier}`` counter when
:mod:`repro.obs` is enabled, so ``repro obs report`` can show which
tier actually ran during a job. When ``auto`` wanted the native tier
but numba is missing, a single ``kernel.native_unavailable`` log event
records the downgrade (once per kernel kind per process) and the numpy
tier runs instead — never an exception.
"""

from __future__ import annotations

import functools
import json
import logging
import os
import pathlib
from typing import Iterator

from repro import obs
from repro.perf.native import runtime

__all__ = [
    "AUTO",
    "TIERS",
    "KIND_TIERS",
    "SMALL_WORK",
    "ENV_TIER",
    "ENV_SEEDS",
    "canonical_kernel",
    "validate_kernel",
    "resolve_tier",
    "seed_measurements",
]

AUTO = "auto"

#: Canonical tier names, slowest-but-simplest first.
TIERS = ("reference", "numpy", "native")

#: Pre-autotuner kernel spellings, kept as aliases of the numpy tier.
_ALIASES = {"batched": "numpy", "bitmap": "numpy", "fast": "numpy"}

#: Tiers each kernel kind actually implements. WebGraph's batched coder
#: is symbol-stream bookkeeping over Python sets — no native candidate.
KIND_TIERS = {
    "minhash": ("reference", "numpy", "native"),
    "kmodes": ("reference", "numpy", "native"),
    "fpm": ("reference", "numpy", "native"),
    "lz77": ("reference", "numpy", "native"),
    "webgraph": ("reference", "numpy"),
}

#: Below this per-kind work estimate the reference path wins on the
#: batched tiers' fixed dispatch overhead (array conversion, packing,
#: argsort setup). Work units per kind: minhash = elements x hashes;
#: kmodes = rows x clusters x attrs x L; fpm/webgraph = input records;
#: lz77 = input bytes.
SMALL_WORK = {
    "minhash": 2048,
    "kmodes": 4096,
    "fpm": 16,
    "lz77": 512,
    "webgraph": 8,
}

#: BENCH_kernels.json section holding each kind's per-tier timings.
_BENCH_SECTION = {
    "minhash": "sketch_all",
    "kmodes": "kmodes_fit",
    "fpm": "apriori_mine",
    "lz77": "lz77_compress",
    "webgraph": "webgraph_compress",
}

ENV_TIER = "REPRO_KERNEL_TIER"
ENV_SEEDS = "REPRO_BENCH_KERNELS"


def canonical_kernel(kernel: str) -> str:
    """Map legacy kernel spellings onto canonical tier names."""
    return _ALIASES.get(kernel, kernel)


def validate_kernel(kernel: str, kind: str) -> str:
    """Check a ``kernel=`` argument for ``kind``; returns the canonical name.

    Raises ``ValueError`` for spellings that name no tier of this kind,
    so constructors fail fast exactly as they did pre-autotuner.
    """
    choice = canonical_kernel(kernel)
    allowed = (AUTO,) + KIND_TIERS[kind]
    if choice not in allowed:
        raise ValueError(
            f"kernel must be one of {allowed} (or a legacy alias "
            f"{tuple(_ALIASES)}), got {kernel!r}"
        )
    return choice


def _seed_paths() -> Iterator[pathlib.Path]:
    env = os.environ.get(ENV_SEEDS)
    if env:
        yield pathlib.Path(env)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    yield pathlib.Path.cwd() / "BENCH_kernels.json"
    yield repo_root / "BENCH_kernels.json"
    yield repo_root / "benchmarks" / "results" / "BENCH_kernels.json"


@functools.lru_cache(maxsize=1)
def seed_measurements() -> dict:
    """The persisted ``BENCH_kernels.json`` measurements, if any.

    Looked up once per process from ``$REPRO_BENCH_KERNELS``, the
    working directory, the repo root, then ``benchmarks/results/``;
    missing or malformed files mean no seeds (``{}``), never an error.
    """
    for candidate in _seed_paths():
        try:
            loaded = json.loads(candidate.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(loaded, dict):
            return loaded
    return {}


def _native_beats_numpy(kind: str) -> bool:
    """Seeded ranking: is the native tier measured faster than numpy?

    With no usable measurement the compiled tier is assumed to win —
    that is what the recorded benchmarks show wherever both exist.
    """
    section = seed_measurements().get(_BENCH_SECTION[kind])
    tiers = section.get("tiers") if isinstance(section, dict) else None
    if not isinstance(tiers, dict):
        return True
    native_s = tiers.get("native")
    numpy_s = tiers.get("numpy")
    if isinstance(native_s, (int, float)) and isinstance(numpy_s, (int, float)):
        if native_s > 0 and numpy_s > 0:
            return native_s <= numpy_s
    return True


@functools.lru_cache(maxsize=None)
def _log_native_unavailable(kind: str) -> None:
    """One log event per kernel kind per process for the auto downgrade."""
    obs.log_event(
        obs.get_logger(__name__),
        logging.INFO,
        "kernel.native_unavailable",
        kernel=kind,
        fallback="numpy",
    )


def _record_dispatch(kind: str, tier: str) -> None:
    if obs.enabled():
        obs.get_metrics().counter(
            "repro_kernel_dispatch_total", kernel=kind, tier=tier
        ).inc()


def _choose(kind: str, work: float) -> str:
    if work < SMALL_WORK[kind]:
        return "reference"
    if "native" in KIND_TIERS[kind] and _native_beats_numpy(kind):
        if runtime.numba_available():
            return "native"
        _log_native_unavailable(kind)
    return "numpy"


def resolve_tier(kernel: str, *, kind: str, work: float = 0) -> str:
    """Resolve a ``kernel=`` argument to a concrete tier for one call.

    ``work`` is the caller's cheap size estimate (see
    :data:`SMALL_WORK` for units). Returns one of :data:`TIERS`.
    """
    choice = validate_kernel(kernel, kind)
    if choice == AUTO:
        env = os.environ.get(ENV_TIER)
        if env:
            pinned = canonical_kernel(env)
            if pinned not in TIERS:
                raise ValueError(
                    f"{ENV_TIER} must name a tier {TIERS} (or a legacy "
                    f"alias {tuple(_ALIASES)}), got {env!r}"
                )
            if pinned in KIND_TIERS[kind]:
                if pinned == "native" and not runtime.numba_available():
                    _log_native_unavailable(kind)
                else:
                    choice = pinned
        if choice == AUTO:
            choice = _choose(kind, work)
    elif choice == "native" and not runtime.numba_available():
        raise RuntimeError(
            "kernel='native' requested but numba is not importable; "
            "install numba or use kernel='auto' to fall back gracefully"
        )
    _record_dispatch(kind, choice)
    return choice
