"""Length-prefixed raw-bytes codec for partition payloads.

The paper avoids millions of per-item get/put requests by storing a data
item as a sequence of raw bytes whose *first four bytes contain the
length of the data object*, and keeping a list of such sequences per
partition. That gives single-round-trip access to a whole partition
while still allowing indexed access to individual items.

This module implements exactly that framing. Items are arbitrary
iterables of non-negative integers (the universal representation the
stratifier produces for trees, graphs and text: pivot-id sets, adjacency
lists, token-id sets). Integers are packed little-endian uint32 after
the 4-byte length header, so a record is ``[len:u32][payload:u32 * n]``.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

import numpy as np

_HEADER = struct.Struct("<I")

#: Maximum number of elements a single record may carry (len header is u32).
MAX_RECORD_ITEMS = 0xFFFFFFFF


def encode_record(items: Iterable[int]) -> bytes:
    """Encode one data item as ``[count:u32][item:u32]*``.

    Raises
    ------
    ValueError
        If any element is negative or exceeds the uint32 range.
    """
    arr = np.asarray(list(items), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() > MAX_RECORD_ITEMS):
        raise ValueError("record elements must fit in uint32")
    payload = arr.astype("<u4").tobytes()
    return _HEADER.pack(arr.size) + payload


def decode_record(blob: bytes) -> list[int]:
    """Decode one record produced by :func:`encode_record`."""
    if len(blob) < _HEADER.size:
        raise ValueError("record too short for length header")
    (count,) = _HEADER.unpack_from(blob, 0)
    expected = _HEADER.size + 4 * count
    if len(blob) != expected:
        raise ValueError(f"record length mismatch: header says {count} items, blob has {len(blob)} bytes")
    return np.frombuffer(blob, dtype="<u4", offset=_HEADER.size).astype(int).tolist()


def encode_records(records: Sequence[Iterable[int]]) -> list[bytes]:
    """Encode a whole partition worth of items (one blob per item)."""
    return [encode_record(rec) for rec in records]


def decode_records(blobs: Iterable[bytes]) -> list[list[int]]:
    """Decode a list of record blobs back into integer lists."""
    return [decode_record(blob) for blob in blobs]


def encode_partition(records: Sequence[Iterable[int]]) -> bytes:
    """Concatenate a partition's records into a single byte string.

    Useful when the partition should move as one ``SET``/``GET`` rather
    than a list of blobs; records remain individually addressable through
    the length headers.
    """
    return b"".join(encode_record(rec) for rec in records)


def decode_partition(blob: bytes) -> list[list[int]]:
    """Invert :func:`encode_partition`, walking the length headers."""
    out: list[list[int]] = []
    offset = 0
    n = len(blob)
    while offset < n:
        if n - offset < _HEADER.size:
            raise ValueError("trailing bytes too short for a record header")
        (count,) = _HEADER.unpack_from(blob, offset)
        end = offset + _HEADER.size + 4 * count
        if end > n:
            raise ValueError("record payload truncated")
        out.append(
            np.frombuffer(blob, dtype="<u4", count=count, offset=offset + _HEADER.size)
            .astype(int)
            .tolist()
        )
        offset = end
    return out
