"""Request pipelining for the key-value store.

Redis pipelining batches commands client-side and ships them in one
round trip; the paper reports this "substantially improves response
times". :class:`Pipeline` queues commands until either the preset
pipeline width is reached (auto-flush) or :meth:`execute` is called.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kvstore.store import KeyValueStore, StoreError


@dataclass
class Pipeline:
    """Client-side command buffer bound to one store instance.

    Parameters
    ----------
    store:
        Target store.
    width:
        Auto-flush threshold: when this many commands are queued the
        pipeline flushes itself. ``0`` disables auto-flush (explicit
        :meth:`execute` only).
    """

    store: KeyValueStore
    width: int = 128
    _queue: list[tuple[str, tuple, dict]] = field(default_factory=list, repr=False)
    _results: list[Any] = field(default_factory=list, repr=False)
    flushes: int = 0

    def __post_init__(self) -> None:
        if self.width < 0:
            raise StoreError("pipeline width must be >= 0")

    def __len__(self) -> int:
        return len(self._queue)

    def _enqueue(self, name: str, *args: Any, **kwargs: Any) -> "Pipeline":
        self._queue.append((name, args, kwargs))
        if self.width and len(self._queue) >= self.width:
            self._flush()
        return self

    # Mirror the store's command surface; each call queues, returns self
    # so calls can be chained fluently.
    def set(self, key: str, value: Any) -> "Pipeline":
        return self._enqueue("set", key, value)

    def get(self, key: str) -> "Pipeline":
        return self._enqueue("get", key)

    def incr(self, key: str, amount: int = 1) -> "Pipeline":
        return self._enqueue("incr", key, amount)

    def rpush(self, key: str, *values: Any) -> "Pipeline":
        return self._enqueue("rpush", key, *values)

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> "Pipeline":
        return self._enqueue("lrange", key, start, stop)

    def lindex(self, key: str, index: int) -> "Pipeline":
        return self._enqueue("lindex", key, index)

    def llen(self, key: str) -> "Pipeline":
        return self._enqueue("llen", key)

    def hset(self, key: str, field_name: str, value: Any) -> "Pipeline":
        return self._enqueue("hset", key, field_name, value)

    def hget(self, key: str, field_name: str) -> "Pipeline":
        return self._enqueue("hget", key, field_name)

    def delete(self, *keys: str) -> "Pipeline":
        return self._enqueue("delete", *keys)

    def _flush(self) -> None:
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        self._results.extend(self.store.execute_batch(batch))
        self.flushes += 1

    def execute(self) -> list[Any]:
        """Flush any queued commands and return all results since the
        last ``execute`` call, in command order."""
        self._flush()
        results, self._results = self._results, []
        return results

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._flush()
