"""In-process Redis-like key-value store substrate.

The paper implements its partitioning middleware on top of Redis (one
server instance per cluster node, non-cluster mode, manual placement).
This subpackage provides an in-process equivalent with the features the
framework actually exercises:

- string / list / hash values and atomic counters (``incr`` — the
  paper's fetch-and-increment barrier primitive),
- a length-prefixed raw-bytes codec for storing whole partitions as a
  single list entry (single get/put per partition, the paper's batching
  data structure),
- request pipelining that batches commands up to a preset width before
  flushing (Redis pipelining),
- a client that routes keys to per-node store instances.
"""

from repro.kvstore.store import KeyValueStore, StoreError, WrongTypeError
from repro.kvstore.codec import encode_records, decode_records, encode_record, decode_record
from repro.kvstore.pipeline import Pipeline
from repro.kvstore.client import ClusterClient
from repro.kvstore.network import NetworkModel

__all__ = [
    "KeyValueStore",
    "StoreError",
    "WrongTypeError",
    "Pipeline",
    "ClusterClient",
    "NetworkModel",
    "encode_records",
    "decode_records",
    "encode_record",
    "decode_record",
]
