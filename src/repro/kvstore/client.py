"""Cluster client: manual key→node placement over per-node stores.

The paper deliberately avoids Redis cluster mode because consistent
hashing would defeat the point — the framework must place each partition
on the node the optimizer chose. :class:`ClusterClient` holds one
:class:`~repro.kvstore.store.KeyValueStore` per node and routes by an
explicit node index, exactly like the paper's middleware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.kvstore.codec import decode_records, encode_records
from repro.kvstore.pipeline import Pipeline
from repro.kvstore.store import KeyValueStore, StoreError

#: Key layout used for partition payloads on each node's store.
PARTITION_KEY = "partition:{pid}"
META_KEY = "partition:{pid}:meta"


@dataclass
class ClusterClient:
    """Routes commands to per-node store instances by explicit node id."""

    num_nodes: int
    pipeline_width: int = 128
    stores: list[KeyValueStore] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise StoreError("cluster must have at least one node")
        if not self.stores:
            self.stores = [KeyValueStore(node_id=i) for i in range(self.num_nodes)]
        if len(self.stores) != self.num_nodes:
            raise StoreError("stores list must match num_nodes")

    def store_for(self, node: int) -> KeyValueStore:
        """The store instance hosted on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise StoreError(f"node {node} out of range [0, {self.num_nodes})")
        return self.stores[node]

    def pipeline_for(self, node: int) -> Pipeline:
        """A fresh pipeline bound to ``node``'s store."""
        return Pipeline(self.store_for(node), width=self.pipeline_width)

    # -- partition payload movement ---------------------------------------

    def put_partition(self, node: int, pid: int, records: Sequence[Iterable[int]]) -> int:
        """Encode ``records`` and push them to ``node`` as one pipelined
        list write. Returns the number of records stored."""
        store = self.store_for(node)
        key = PARTITION_KEY.format(pid=pid)
        store.delete(key)
        blobs = encode_records(records)
        with Pipeline(store, width=self.pipeline_width) as pipe:
            for blob in blobs:
                pipe.rpush(key, blob)
        store.hset(META_KEY.format(pid=pid), "count", len(blobs))
        store.hset(META_KEY.format(pid=pid), "node", node)
        return len(blobs)

    def get_partition(self, node: int, pid: int) -> list[list[int]]:
        """Fetch a whole partition in a single LRANGE round trip."""
        store = self.store_for(node)
        blobs = store.lrange(PARTITION_KEY.format(pid=pid))
        return decode_records(blobs)

    def get_item(self, node: int, pid: int, index: int) -> list[int] | None:
        """Fetch one record of a partition without moving the rest."""
        store = self.store_for(node)
        blob = store.lindex(PARTITION_KEY.format(pid=pid), index)
        if blob is None:
            return None
        from repro.kvstore.codec import decode_record

        return decode_record(blob)

    def partition_size(self, node: int, pid: int) -> int:
        """Number of records in a stored partition."""
        return self.store_for(node).llen(PARTITION_KEY.format(pid=pid))

    def drop_partition(self, node: int, pid: int) -> None:
        """Remove a partition and its metadata from ``node``."""
        store = self.store_for(node)
        store.delete(PARTITION_KEY.format(pid=pid), META_KEY.format(pid=pid))

    def total_round_trips(self) -> int:
        """Aggregate round-trip count across all node stores."""
        return sum(s.stats.round_trips for s in self.stores)

    def flushall(self) -> None:
        """Clear every node's store."""
        for store in self.stores:
            store.flushall()
