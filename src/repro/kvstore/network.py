"""Simulated network cost model for the KV middleware.

The paper's Section IV argues two performance points about the
middleware path: storing items as length-prefixed byte sequences in a
list lets a whole partition move in a single get/put, and pipelining
"is known to substantially improve the response times". The in-process
store already counts round trips and bytes; this model converts those
counters into transfer time so benches can quantify both claims:

``time = round_trips · latency + bytes / bandwidth``

Defaults approximate a same-datacenter network (0.5 ms RTT, 1 Gb/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.client import ClusterClient
from repro.kvstore.store import KeyValueStore, StoreStats


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth cost model for store access."""

    latency_s: float = 5e-4
    bandwidth_bytes_per_s: float = 125e6  # 1 Gb/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time_s(self, round_trips: int, bytes_moved: int) -> float:
        """Wall time to perform the counted traffic."""
        if round_trips < 0 or bytes_moved < 0:
            raise ValueError("counters must be non-negative")
        return round_trips * self.latency_s + bytes_moved / self.bandwidth_bytes_per_s

    def store_time_s(self, store: KeyValueStore) -> float:
        """Transfer time implied by one store's lifetime counters."""
        return self.transfer_time_s(
            store.stats.round_trips, store.stats.bytes_moved
        )

    def client_time_s(self, client: ClusterClient) -> float:
        """Aggregate transfer time across a cluster client's stores."""
        return sum(self.store_time_s(s) for s in client.stores)

    def delta_time_s(self, before: StoreStats, after: StoreStats) -> float:
        """Transfer time of the traffic between two stat snapshots."""
        return self.transfer_time_s(
            after.round_trips - before.round_trips,
            after.bytes_moved - before.bytes_moved,
        )


def snapshot(store: KeyValueStore) -> StoreStats:
    """Copy a store's counters (for delta accounting)."""
    return StoreStats(**vars(store.stats))
