"""Flat-integer serialization of dataset items for the KV codec.

The KV record codec moves flat non-negative integer sequences. Graph and
text items already are that; trees ``(parent, labels)`` are framed as
``[n, parent_0+1, …, parent_{n-1}+1, label_0, …, label_{n-1}]`` (the +1
shift makes the root's ``-1`` representable).
"""

from __future__ import annotations

from typing import Sequence


def serialize_item(kind: str, item) -> list[int]:
    """Flatten one dataset item to a non-negative int list."""
    if kind == "tree":
        parent, labels = item
        if len(parent) != len(labels):
            raise ValueError("tree parent/labels length mismatch")
        return [len(parent), *(int(p) + 1 for p in parent), *(int(l) for l in labels)]
    if kind in ("graph", "text", "set"):
        return [int(v) for v in item]
    raise ValueError(f"unknown kind {kind!r}")


def deserialize_item(kind: str, flat: Sequence[int]):
    """Invert :func:`serialize_item`."""
    if kind == "tree":
        if not flat:
            raise ValueError("empty tree record")
        n = int(flat[0])
        if len(flat) != 1 + 2 * n:
            raise ValueError("tree record length mismatch")
        parent = tuple(int(p) - 1 for p in flat[1 : 1 + n])
        labels = tuple(int(l) for l in flat[1 + n :])
        return (parent, labels)
    if kind in ("graph", "text", "set"):
        return [int(v) for v in flat]
    raise ValueError(f"unknown kind {kind!r}")
