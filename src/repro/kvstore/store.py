"""A single-node, in-process Redis-like key-value store.

Implements the subset of Redis semantics the partitioning framework
relies on: strings, lists, hashes, atomic integer counters, key
expiry-free lifecycle (DEL/EXISTS/KEYS), and per-command statistics so
tests and benchmarks can assert on access patterns (e.g. "the whole
partition moved in one LRANGE").

Thread safety: every public command takes an internal lock, matching
Redis's single-threaded command execution model. This makes the
fetch-and-increment barrier primitive (`incr`) safe to call from the
process-pool execution engine's worker threads.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable


class StoreError(Exception):
    """Base error for key-value store misuse."""


class WrongTypeError(StoreError):
    """Raised when a command is applied to a key holding the wrong type.

    Mirrors Redis's ``WRONGTYPE`` error.
    """


@dataclass
class StoreStats:
    """Per-store command counters, used to assert batching behaviour."""

    gets: int = 0
    sets: int = 0
    list_ops: int = 0
    hash_ops: int = 0
    incrs: int = 0
    round_trips: int = 0
    bytes_moved: int = 0

    def total_commands(self) -> int:
        return self.gets + self.sets + self.list_ops + self.hash_ops + self.incrs


def _payload_bytes(value: Any) -> int:
    """Approximate wire size of a stored/fetched value."""
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(_payload_bytes(v) for v in value)
    if isinstance(value, dict):
        return sum(
            _payload_bytes(k) + _payload_bytes(v) for k, v in value.items()
        )
    return 8


@dataclass
class KeyValueStore:
    """One Redis-server-equivalent instance (the paper runs one per node).

    Parameters
    ----------
    node_id:
        Identifier of the cluster node hosting this store instance.
    """

    node_id: int = 0
    _data: dict[str, Any] = field(default_factory=dict, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    stats: StoreStats = field(default_factory=StoreStats)

    # -- string commands ------------------------------------------------

    def set(self, key: str, value: bytes | str | int) -> None:
        """SET: store a scalar value under ``key`` (overwrites any type)."""
        with self._lock:
            self._data[key] = value
            self.stats.sets += 1
            self.stats.round_trips += 1
            self.stats.bytes_moved += _payload_bytes(value)

    def get(self, key: str) -> Any:
        """GET: return the scalar stored at ``key`` or ``None``."""
        with self._lock:
            self.stats.gets += 1
            self.stats.round_trips += 1
            value = self._data.get(key)
            if isinstance(value, (list, dict)):
                raise WrongTypeError(f"key {key!r} holds a {type(value).__name__}")
            self.stats.bytes_moved += _payload_bytes(value)
            return value

    def incr(self, key: str, amount: int = 1) -> int:
        """INCRBY: atomic fetch-and-add; returns the *new* value.

        This is the primitive the paper uses to build its global barrier.
        Missing keys start at 0, as in Redis.
        """
        with self._lock:
            value = self._data.get(key, 0)
            if not isinstance(value, int):
                raise WrongTypeError(f"key {key!r} is not an integer")
            value += amount
            self._data[key] = value
            self.stats.incrs += 1
            self.stats.round_trips += 1
            return value

    # -- list commands ---------------------------------------------------

    def rpush(self, key: str, *values: Any) -> int:
        """RPUSH: append values to the list at ``key``; returns new length."""
        if not values:
            raise StoreError("rpush requires at least one value")
        with self._lock:
            lst = self._data.setdefault(key, [])
            if not isinstance(lst, list):
                raise WrongTypeError(f"key {key!r} is not a list")
            lst.extend(values)
            self.stats.list_ops += 1
            self.stats.round_trips += 1
            self.stats.bytes_moved += _payload_bytes(values)
            return len(lst)

    def lrange(self, key: str, start: int = 0, stop: int = -1) -> list[Any]:
        """LRANGE: return list slice using Redis's inclusive-stop indexing."""
        with self._lock:
            lst = self._data.get(key, [])
            if not isinstance(lst, list):
                raise WrongTypeError(f"key {key!r} is not a list")
            self.stats.list_ops += 1
            self.stats.round_trips += 1
            n = len(lst)
            if start < 0:
                start = max(n + start, 0)
            if stop < 0:
                stop = n + stop
            out = lst[start : stop + 1]
            self.stats.bytes_moved += _payload_bytes(out)
            return out

    def lindex(self, key: str, index: int) -> Any:
        """LINDEX: return the element at ``index`` (negative = from tail)."""
        with self._lock:
            lst = self._data.get(key, [])
            if not isinstance(lst, list):
                raise WrongTypeError(f"key {key!r} is not a list")
            self.stats.list_ops += 1
            self.stats.round_trips += 1
            try:
                value = lst[index]
            except IndexError:
                return None
            self.stats.bytes_moved += _payload_bytes(value)
            return value

    def llen(self, key: str) -> int:
        """LLEN: list length (0 for missing keys)."""
        with self._lock:
            lst = self._data.get(key, [])
            if not isinstance(lst, list):
                raise WrongTypeError(f"key {key!r} is not a list")
            self.stats.list_ops += 1
            self.stats.round_trips += 1
            return len(lst)

    # -- hash commands -----------------------------------------------------

    def hset(self, key: str, field_name: str, value: Any) -> None:
        """HSET: set one field of the hash at ``key``."""
        with self._lock:
            h = self._data.setdefault(key, {})
            if not isinstance(h, dict):
                raise WrongTypeError(f"key {key!r} is not a hash")
            h[field_name] = value
            self.stats.hash_ops += 1
            self.stats.round_trips += 1

    def hget(self, key: str, field_name: str) -> Any:
        """HGET: read one field of the hash at ``key`` (None if missing)."""
        with self._lock:
            h = self._data.get(key, {})
            if not isinstance(h, dict):
                raise WrongTypeError(f"key {key!r} is not a hash")
            self.stats.hash_ops += 1
            self.stats.round_trips += 1
            return h.get(field_name)

    def hgetall(self, key: str) -> dict[str, Any]:
        """HGETALL: copy of the whole hash at ``key``."""
        with self._lock:
            h = self._data.get(key, {})
            if not isinstance(h, dict):
                raise WrongTypeError(f"key {key!r} is not a hash")
            self.stats.hash_ops += 1
            self.stats.round_trips += 1
            return dict(h)

    # -- key lifecycle -----------------------------------------------------

    def delete(self, *keys: str) -> int:
        """DEL: remove keys; returns how many existed."""
        with self._lock:
            removed = 0
            for key in keys:
                if key in self._data:
                    del self._data[key]
                    removed += 1
            self.stats.round_trips += 1
            return removed

    def exists(self, key: str) -> bool:
        """EXISTS for a single key."""
        with self._lock:
            self.stats.round_trips += 1
            return key in self._data

    def keys(self, pattern: str = "*") -> list[str]:
        """KEYS: glob-match key names (sorted, for determinism)."""
        with self._lock:
            self.stats.round_trips += 1
            return sorted(k for k in self._data if fnmatch.fnmatchcase(k, pattern))

    def flushall(self) -> None:
        """FLUSHALL: drop every key (stats are preserved)."""
        with self._lock:
            self._data.clear()
            self.stats.round_trips += 1

    def dbsize(self) -> int:
        """DBSIZE: number of keys."""
        with self._lock:
            return len(self._data)

    # -- bulk entry point used by the pipeline -----------------------------

    def execute_batch(self, commands: Iterable[tuple[str, tuple, dict]]) -> list[Any]:
        """Run a batch of commands under one lock acquisition / round trip.

        Each command is ``(method_name, args, kwargs)``. The batch counts as
        a single network round trip, which is what Redis pipelining buys.
        """
        results: list[Any] = []
        with self._lock:
            before = self.stats.round_trips
            for name, args, kwargs in commands:
                method = getattr(self, name, None)
                if method is None or name.startswith("_"):
                    raise StoreError(f"unknown command {name!r}")
                results.append(method(*args, **kwargs))
            # Collapse the per-command round trips into one.
            self.stats.round_trips = before + 1
        return results
