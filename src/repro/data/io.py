"""Plain-text dataset I/O for bringing real data into the framework.

The synthetic generators stand in for the paper's datasets, but a
downstream user with the real thing (or any other corpus) needs a way
in. These loaders cover the standard flat-text shapes:

- **transactions / documents**: one record per line, whitespace-
  separated non-negative integer item ids — the classic FIMI /
  market-basket layout. Works for text corpora too (token ids).
- **adjacency**: either ``src: dst dst …`` adjacency lines or a two-
  column ``src dst`` edge list (auto-detected); vertex ids must be
  dense 0..n-1.
- **trees**: one tree per line, ``parent₀ … parentₙ | label₀ … labelₙ``
  with ``-1`` marking the root.

Each loader has a matching writer so datasets round-trip, and
:func:`load_dataset_file` wraps any of them into a
:class:`~repro.data.datasets.Dataset` ready for the framework.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

from repro.data.datasets import Dataset
from repro.stratify.prufer import prufer_sequence


def _read_lines(path) -> list[str]:
    text = pathlib.Path(path).read_text()
    return [line.strip() for line in text.splitlines() if line.strip() and not line.lstrip().startswith("#")]


# -- transactions / documents -------------------------------------------------


def load_transactions(path) -> list[list[int]]:
    """Load one whitespace-separated integer record per line."""
    records = []
    for lineno, line in enumerate(_read_lines(path), start=1):
        try:
            items = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: non-integer token") from exc
        if any(i < 0 for i in items):
            raise ValueError(f"{path}:{lineno}: negative item id")
        records.append(items)
    if not records:
        raise ValueError(f"{path}: no records")
    return records


def save_transactions(records: Sequence[Sequence[int]], path) -> None:
    """Inverse of :func:`load_transactions`."""
    lines = [" ".join(str(int(i)) for i in rec) for rec in records]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


# -- adjacency -----------------------------------------------------------------


def load_adjacency(path) -> list[list[int]]:
    """Load adjacency lists from ``src: dst…`` lines or an edge list."""
    lines = _read_lines(path)
    if not lines:
        raise ValueError(f"{path}: no records")
    if ":" in lines[0]:
        entries: dict[int, list[int]] = {}
        for lineno, line in enumerate(lines, start=1):
            head, _, tail = line.partition(":")
            try:
                src = int(head)
                dsts = [int(tok) for tok in tail.split()]
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad adjacency line") from exc
            if src in entries:
                raise ValueError(f"{path}:{lineno}: duplicate source {src}")
            entries[src] = sorted(set(dsts))
        n = max(entries) + 1
        adjacency = [entries.get(v, []) for v in range(n)]
    else:
        edges: list[tuple[int, int]] = []
        max_v = -1
        for lineno, line in enumerate(lines, start=1):
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'src dst'")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative vertex id")
            edges.append((u, v))
            max_v = max(max_v, u, v)
        adjacency = [[] for _ in range(max_v + 1)]
        for u, v in edges:
            adjacency[u].append(v)
        adjacency = [sorted(set(a)) for a in adjacency]
    for v, nbrs in enumerate(adjacency):
        if any(not 0 <= u < len(adjacency) for u in nbrs):
            raise ValueError(f"vertex {v} links outside the id range")
    return adjacency


def save_adjacency(adjacency: Sequence[Sequence[int]], path) -> None:
    """Write ``src: dst…`` adjacency lines (one per vertex)."""
    lines = [
        f"{v}: " + " ".join(str(int(u)) for u in nbrs)
        for v, nbrs in enumerate(adjacency)
    ]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


# -- trees ----------------------------------------------------------------------


def load_trees(path) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Load ``parent… | label…`` tree lines; validates each tree."""
    trees = []
    for lineno, line in enumerate(_read_lines(path), start=1):
        head, sep, tail = line.partition("|")
        if not sep:
            raise ValueError(f"{path}:{lineno}: missing '|' separator")
        try:
            parent = tuple(int(tok) for tok in head.split())
            labels = tuple(int(tok) for tok in tail.split())
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: non-integer token") from exc
        if len(parent) != len(labels):
            raise ValueError(f"{path}:{lineno}: parent/label length mismatch")
        prufer_sequence(parent)  # raises on malformed trees
        trees.append((parent, labels))
    if not trees:
        raise ValueError(f"{path}: no records")
    return trees


def save_trees(trees: Sequence[tuple[Sequence[int], Sequence[int]]], path) -> None:
    """Inverse of :func:`load_trees`."""
    lines = []
    for parent, labels in trees:
        lines.append(
            " ".join(str(int(p)) for p in parent)
            + " | "
            + " ".join(str(int(l)) for l in labels)
        )
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


# -- dataset wrapper --------------------------------------------------------------


def load_dataset_file(kind: str, path, name: str | None = None) -> Dataset:
    """Load a flat-text file as a framework-ready :class:`Dataset`.

    ``kind`` selects the parser: ``"text"`` (transactions/documents),
    ``"graph"`` (adjacency) or ``"tree"``.
    """
    if kind == "text":
        items = load_transactions(path)
    elif kind == "graph":
        items = load_adjacency(path)
    elif kind == "tree":
        items = load_trees(path)
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return Dataset(
        name=name or pathlib.Path(path).stem,
        kind=kind,
        items=items,
        ground_truth=None,
        meta={"source": str(path), "items": len(items)},
    )
