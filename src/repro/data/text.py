"""Synthetic topic-model corpus (RCV1 analog).

Documents are token-id sets drawn from a Zipfian topic mixture: each
topic owns a preference over a vocabulary slice plus a shared background
(stopword-like) distribution. Topic proportions are skewed so a handful
of topics dominate, as in RCV1's category distribution. The topic of
each document is its planted stratum; high-frequency background tokens
give Apriori non-trivial frequent itemsets whose support varies with
partition payload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorpusConfig:
    """Generator knobs for the synthetic corpus."""

    num_docs: int = 1500
    vocab_size: int = 1200
    num_topics: int = 10
    doc_length_mean: int = 40
    doc_length_spread: int = 15
    tokens_per_topic: int = 120
    background_tokens: int = 40
    background_prob: float = 0.3
    topic_skew: float = 0.8
    zipf_exponent: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_docs <= 0 or self.num_topics <= 0:
            raise ValueError("num_docs and num_topics must be positive")
        if self.doc_length_mean - self.doc_length_spread < 1:
            raise ValueError("documents must have at least one token")
        if self.tokens_per_topic + self.background_tokens > self.vocab_size:
            raise ValueError("vocabulary too small for topic + background slices")
        if not 0.0 <= self.background_prob < 1.0:
            raise ValueError("background_prob must be in [0, 1)")


@dataclass
class Corpus:
    """Generated corpus: token-id sets plus planted topic labels."""

    documents: list[list[int]]
    topic_of: np.ndarray
    vocab_size: int

    @property
    def num_docs(self) -> int:
        return len(self.documents)

    def records(self) -> list[list[int]]:
        return self.documents


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
    return w / w.sum()


def generate_corpus(config: CorpusConfig) -> Corpus:
    """Generate the corpus described by ``config`` (deterministic in seed)."""
    rng = np.random.default_rng(config.seed)
    # Background slice occupies the lowest token ids (the "stopwords").
    background = np.arange(config.background_tokens)
    bg_weights = _zipf_weights(config.background_tokens, config.zipf_exponent)

    content_pool = np.arange(config.background_tokens, config.vocab_size)
    topic_vocab: list[np.ndarray] = []
    topic_weights: list[np.ndarray] = []
    for _t in range(config.num_topics):
        vocab = rng.choice(content_pool, size=config.tokens_per_topic, replace=False)
        topic_vocab.append(vocab)
        topic_weights.append(_zipf_weights(config.tokens_per_topic, config.zipf_exponent))

    mix = _zipf_weights(config.num_topics, config.topic_skew)
    topics = rng.choice(config.num_topics, size=config.num_docs, p=mix)

    documents: list[list[int]] = []
    for t in topics:
        length = int(
            rng.integers(
                config.doc_length_mean - config.doc_length_spread,
                config.doc_length_mean + config.doc_length_spread + 1,
            )
        )
        n_bg = rng.binomial(length, config.background_prob)
        n_topic = length - n_bg
        tokens: set[int] = set()
        if n_bg:
            tokens.update(rng.choice(background, size=n_bg, p=bg_weights).tolist())
        if n_topic:
            tokens.update(
                rng.choice(topic_vocab[int(t)], size=n_topic, p=topic_weights[int(t)]).tolist()
            )
        documents.append(sorted(int(x) for x in tokens))

    return Corpus(documents=documents, topic_of=topics, vocab_size=config.vocab_size)
