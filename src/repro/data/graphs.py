"""Synthetic webgraphs (UK / Arabic analogs) with host locality.

Records are per-vertex adjacency lists — the unit the paper's graph
pipeline partitions and compresses. Generation follows the structure
WebGraph compression exploits:

- vertices are grouped into **hosts**; ids within a host are contiguous
  (URL-lexicographic ordering in real crawls), so intra-host links have
  small gaps;
- a **copying model**: a new page copies a fraction of the out-links of
  a random earlier page in the same host (link-exchange similarity —
  what reference compression exploits), plus fresh links that are
  mostly intra-host and occasionally global;
- out-degrees are heavy-tailed (lognormal), as in real crawls.

The host of each vertex is its planted stratum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WebGraphConfig:
    """Generator knobs for a synthetic webgraph.

    ``intra_host_prob`` controls locality; ``copy_prob`` the fraction of
    links copied from a same-host template page; ``host_skew`` the
    Zipf exponent of host sizes (payload skew across strata).
    """

    num_vertices: int = 3000
    num_hosts: int = 12
    mean_degree: float = 12.0
    degree_sigma: float = 0.8
    intra_host_prob: float = 0.8
    copy_prob: float = 0.5
    host_skew: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vertices < self.num_hosts:
            raise ValueError("need at least one vertex per host")
        if self.num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        if not 0.0 <= self.intra_host_prob <= 1.0:
            raise ValueError("intra_host_prob must be in [0, 1]")
        if not 0.0 <= self.copy_prob <= 1.0:
            raise ValueError("copy_prob must be in [0, 1]")
        if self.mean_degree <= 0:
            raise ValueError("mean_degree must be positive")


@dataclass
class WebGraph:
    """Adjacency-list view of a generated webgraph."""

    adjacency: list[list[int]]
    host_of: np.ndarray
    host_ranges: list[tuple[int, int]]

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self.adjacency)

    def records(self) -> list[list[int]]:
        """Per-vertex sorted out-neighbour lists (the partitioned items)."""
        return self.adjacency


def _host_sizes(config: WebGraphConfig, rng: np.random.Generator) -> np.ndarray:
    weights = 1.0 / np.power(
        np.arange(1, config.num_hosts + 1, dtype=np.float64), config.host_skew
    )
    weights /= weights.sum()
    sizes = np.maximum(1, np.round(weights * config.num_vertices).astype(np.int64))
    # Fix rounding so sizes sum exactly to num_vertices.
    diff = config.num_vertices - int(sizes.sum())
    sizes[0] += diff
    if sizes[0] < 1:
        raise ValueError("host size rounding failed; reduce num_hosts")
    return sizes


def generate_webgraph(config: WebGraphConfig) -> WebGraph:
    """Generate a webgraph per ``config`` (deterministic in seed)."""
    rng = np.random.default_rng(config.seed)
    sizes = _host_sizes(config, rng)
    host_ranges: list[tuple[int, int]] = []
    start = 0
    for s in sizes:
        host_ranges.append((start, start + int(s)))
        start += int(s)
    host_of = np.empty(config.num_vertices, dtype=np.int64)
    for h, (lo, hi) in enumerate(host_ranges):
        host_of[lo:hi] = h

    # Heavy-tailed degrees, clipped to the vertex count.
    mu = np.log(config.mean_degree) - config.degree_sigma**2 / 2.0
    degrees = np.minimum(
        np.maximum(1, rng.lognormal(mu, config.degree_sigma, config.num_vertices).astype(np.int64)),
        config.num_vertices - 1,
    )

    adjacency: list[list[int]] = []
    for v in range(config.num_vertices):
        h = int(host_of[v])
        lo, hi = host_ranges[h]
        target_deg = int(degrees[v])
        links: set[int] = set()
        # Copy links from a *recent* same-host page: URL-ordered crawls
        # put template-sharing pages at adjacent ids, which is exactly
        # the structure WebGraph's bounded reference window exploits.
        local_prev = v - lo
        if local_prev > 0 and rng.random() < config.copy_prob:
            template = int(rng.integers(max(lo, v - 6), v))
            t_links = [u for u in adjacency[template] if u != v]
            if t_links:
                keep = max(1, int(round(0.9 * min(len(t_links), target_deg))))
                links.update(rng.choice(t_links, size=keep, replace=False).tolist())
        # Fresh links: mostly intra-host, occasionally global.
        attempts = 0
        while len(links) < target_deg and attempts < 8 * target_deg:
            attempts += 1
            if rng.random() < config.intra_host_prob and hi - lo > 1:
                u = int(rng.integers(lo, hi))
            else:
                u = int(rng.integers(0, config.num_vertices))
            if u != v:
                links.add(u)
        adjacency.append(sorted(links))

    return WebGraph(adjacency=adjacency, host_of=host_of, host_ranges=host_ranges)
