"""Synthetic datasets with the statistical shape of the paper's five inputs.

The paper evaluates on SwissProt and Treebank (XML trees), the UK and
Arabic webgraphs, and the RCV1 text corpus — none redistributable here.
These generators produce seeded laptop-scale stand-ins with *planted
strata* and controllable skew, so every mechanism the paper's framework
exploits (pattern skew across partitions, adjacency locality for
compression, topic structure for support thresholds) is exercised:

- :mod:`repro.data.trees` — labelled trees drawn from perturbed cluster
  templates (shared subtrees ⇒ shared pivots);
- :mod:`repro.data.graphs` — copying-model webgraphs with host locality
  (similar adjacency lists ⇒ small gaps ⇒ compressible);
- :mod:`repro.data.text` — Zipfian topic-model documents;
- :mod:`repro.data.transactions` — IBM-style market-basket transactions
  with planted frequent itemsets;
- :mod:`repro.data.datasets` — the registry mapping paper dataset names
  to configured generators (Table I analog).
"""

from repro.data.trees import LabeledTree, TreeDatasetConfig, generate_tree_dataset
from repro.data.graphs import WebGraphConfig, generate_webgraph
from repro.data.text import CorpusConfig, generate_corpus
from repro.data.transactions import TransactionConfig, generate_transactions
from repro.data.datasets import Dataset, load_dataset, DATASET_NAMES, dataset_summary
from repro.data.io import (
    load_adjacency,
    load_dataset_file,
    load_transactions,
    load_trees,
    save_adjacency,
    save_transactions,
    save_trees,
)

__all__ = [
    "load_adjacency",
    "load_dataset_file",
    "load_transactions",
    "load_trees",
    "save_adjacency",
    "save_transactions",
    "save_trees",
    "LabeledTree",
    "TreeDatasetConfig",
    "generate_tree_dataset",
    "WebGraphConfig",
    "generate_webgraph",
    "CorpusConfig",
    "generate_corpus",
    "TransactionConfig",
    "generate_transactions",
    "Dataset",
    "load_dataset",
    "DATASET_NAMES",
    "dataset_summary",
]
