"""IBM-style synthetic market-basket transactions.

Used by the Apriori unit tests and ablation benches: transactions are
built from a pool of *planted* potentially-frequent itemsets (the
classic Agrawal–Srikant generator scheme), so tests can assert that
mining recovers the plants at the right support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TransactionConfig:
    """Generator knobs for planted-itemset transactions."""

    num_transactions: int = 1000
    num_items: int = 200
    num_patterns: int = 10
    pattern_length_mean: float = 4.0
    transaction_length_mean: float = 10.0
    corruption: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_transactions <= 0 or self.num_items <= 0:
            raise ValueError("sizes must be positive")
        if self.num_patterns <= 0:
            raise ValueError("num_patterns must be positive")
        if not 0.0 <= self.corruption < 1.0:
            raise ValueError("corruption must be in [0, 1)")


@dataclass
class TransactionData:
    """Generated transactions plus the planted pattern pool."""

    transactions: list[list[int]]
    patterns: list[tuple[int, ...]]

    def records(self) -> list[list[int]]:
        return self.transactions


def generate_transactions(config: TransactionConfig) -> TransactionData:
    """Generate transactions by sampling and corrupting planted patterns."""
    rng = np.random.default_rng(config.seed)
    patterns: list[tuple[int, ...]] = []
    for _ in range(config.num_patterns):
        length = max(2, int(rng.poisson(config.pattern_length_mean)))
        length = min(length, config.num_items)
        items = rng.choice(config.num_items, size=length, replace=False)
        patterns.append(tuple(sorted(int(i) for i in items)))

    # Pattern popularity is exponentially skewed, as in the IBM generator.
    weights = rng.exponential(1.0, size=config.num_patterns)
    weights /= weights.sum()

    transactions: list[list[int]] = []
    for _ in range(config.num_transactions):
        target_len = max(1, int(rng.poisson(config.transaction_length_mean)))
        basket: set[int] = set()
        while len(basket) < target_len:
            pattern = patterns[int(rng.choice(config.num_patterns, p=weights))]
            for item in pattern:
                # Corruption drops items from the pattern instance.
                if rng.random() >= config.corruption:
                    basket.add(item)
            if len(basket) >= target_len or rng.random() < 0.2:
                break
        if not basket:
            basket.add(int(rng.integers(0, config.num_items)))
        transactions.append(sorted(basket))

    return TransactionData(transactions=transactions, patterns=patterns)
