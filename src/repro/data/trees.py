"""Synthetic labelled-tree datasets (SwissProt / Treebank analogs).

Trees are generated from a small pool of *cluster templates*. Each
template is a random tree (uniform via a random Prüfer sequence) with
labels drawn from a cluster-specific distribution; each emitted tree is
a perturbed copy — a fraction of labels mutated and a random subtree
grafted. Trees from the same cluster therefore share many
LCA-label pivots, giving the stratifier real strata to find, while the
cluster mixing proportions control dataset skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stratify.prufer import tree_from_prufer


@dataclass(frozen=True)
class LabeledTree:
    """A rooted labelled tree: parent array + per-node integer labels."""

    parent: tuple[int, ...]
    labels: tuple[int, ...]
    cluster: int = -1

    def __post_init__(self) -> None:
        if len(self.parent) != len(self.labels):
            raise ValueError("parent and labels must have equal length")

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def as_item(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The ``(parent, labels)`` pair the tree pivot extractor takes."""
        return (self.parent, self.labels)


@dataclass(frozen=True)
class TreeDatasetConfig:
    """Generator knobs.

    Parameters
    ----------
    num_trees:
        Dataset size.
    nodes_mean / nodes_spread:
        Tree sizes are uniform in ``[mean - spread, mean + spread]``.
    num_clusters:
        Number of planted template clusters.
    num_labels:
        Global label alphabet size; each cluster prefers a subset.
    mutation_rate:
        Fraction of a template's labels redrawn per emitted tree.
    graft_fraction:
        Relative size of the random subtree grafted onto each copy.
    skew:
        Zipf-like exponent over cluster mixing proportions; 0 = uniform
        clusters, larger = a few dominant clusters (payload skew).
    """

    num_trees: int = 400
    nodes_mean: int = 24
    nodes_spread: int = 8
    num_clusters: int = 8
    num_labels: int = 64
    labels_per_cluster: int = 12
    mutation_rate: float = 0.08
    graft_fraction: float = 0.2
    skew: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_trees <= 0 or self.num_clusters <= 0:
            raise ValueError("num_trees and num_clusters must be positive")
        if self.nodes_mean - self.nodes_spread < 3:
            raise ValueError("trees must have at least 3 nodes")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.labels_per_cluster > self.num_labels:
            raise ValueError("labels_per_cluster cannot exceed num_labels")


def _random_tree(n: int, rng: np.random.Generator) -> list[int]:
    """Uniform random labelled tree on n nodes via a random Prüfer code."""
    if n < 3:
        return [-1] if n == 1 else [1, -1]
    seq = rng.integers(0, n, size=n - 2).tolist()
    return tree_from_prufer(seq, n)


def _cluster_mix(num_clusters: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, num_clusters + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    return weights


def generate_tree_dataset(config: TreeDatasetConfig) -> list[LabeledTree]:
    """Generate the dataset described by ``config`` (deterministic in seed)."""
    rng = np.random.default_rng(config.seed)
    # Template per cluster: structure + preferred label subset.
    templates: list[tuple[list[int], np.ndarray, np.ndarray]] = []
    for c in range(config.num_clusters):
        n = int(rng.integers(config.nodes_mean - config.nodes_spread,
                             config.nodes_mean + config.nodes_spread + 1))
        parent = _random_tree(n, rng)
        alphabet = rng.choice(config.num_labels, size=config.labels_per_cluster, replace=False)
        labels = rng.choice(alphabet, size=n)
        templates.append((parent, labels, alphabet))

    mix = _cluster_mix(config.num_clusters, config.skew, rng)
    assignments = rng.choice(config.num_clusters, size=config.num_trees, p=mix)

    trees: list[LabeledTree] = []
    for cluster in assignments:
        parent_t, labels_t, alphabet = templates[int(cluster)]
        n = len(parent_t)
        labels = labels_t.copy()
        # Mutate a fraction of the labels within the cluster alphabet.
        n_mut = int(round(config.mutation_rate * n))
        if n_mut:
            idx = rng.choice(n, size=n_mut, replace=False)
            labels[idx] = rng.choice(alphabet, size=n_mut)
        parent = list(parent_t)
        # Graft a random chain/subtree under a random node.
        n_graft = int(round(config.graft_fraction * n))
        if n_graft:
            attach = int(rng.integers(0, n))
            extra_labels = rng.choice(alphabet, size=n_graft)
            new_parents = []
            prev = attach
            for j in range(n_graft):
                new_id = n + j
                # Half the grafted nodes chain, half attach to random spots.
                if j and rng.random() < 0.5:
                    prev = int(rng.integers(0, new_id))
                new_parents.append(prev)
                prev = new_id
            parent = parent + new_parents
            labels = np.concatenate([labels, extra_labels])
        trees.append(
            LabeledTree(
                parent=tuple(int(p) for p in parent),
                labels=tuple(int(l) for l in labels),
                cluster=int(cluster),
            )
        )
    return trees


def tree_items(trees: Sequence[LabeledTree]) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Items in the form the ``"tree"`` pivot extractor consumes."""
    return [t.as_item() for t in trees]
