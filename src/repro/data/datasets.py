"""Dataset registry: the paper's Table I, at laptop scale.

Each entry maps one of the paper's five datasets to a configured
synthetic generator whose statistical shape matches the original's role
in the evaluation. ``size_scale`` lets benches trade fidelity for speed
uniformly.

=========== ===== ======================================= =================
Name        Type  Paper original                          Synthetic analog
=========== ===== ======================================= =================
swissprot   tree  59,545 trees / 2.98M nodes              clustered labelled trees
treebank    tree  56,479 trees / 2.44M nodes (deeper)     deeper clustered trees
uk          graph 11.1M vertices / 287M edges             host-local copying webgraph
arabic      graph 16.0M vertices / 633M edges             larger, denser webgraph
rcv1        text  804,414 docs / 47,236 vocabulary        Zipfian topic corpus
=========== ===== ======================================= =================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.graphs import WebGraphConfig, generate_webgraph
from repro.data.text import CorpusConfig, generate_corpus
from repro.data.trees import TreeDatasetConfig, generate_tree_dataset, tree_items

DATASET_NAMES = ("swissprot", "treebank", "uk", "arabic", "rcv1")


@dataclass
class Dataset:
    """A loaded dataset ready for the stratifier and workloads.

    Attributes
    ----------
    name / kind:
        Registry name and pivot-extractor domain
        (``"tree" | "graph" | "text"``).
    items:
        Records in pivot-extractor form (trees: ``(parent, labels)``
        pairs; graphs: adjacency lists; text: token-id lists).
    ground_truth:
        Planted stratum label per item, for stratification-quality tests.
    meta:
        Generator diagnostics (node/edge/vocab counts).
    """

    name: str
    kind: str
    items: list[Any]
    ground_truth: np.ndarray | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.items)


def load_dataset(name: str, *, size_scale: float = 1.0, seed: int = 0) -> Dataset:
    """Instantiate a registry dataset.

    ``size_scale`` multiplies the default item count (min 50 items so
    stratification stays meaningful).
    """
    if name not in DATASET_NAMES:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if size_scale <= 0:
        raise ValueError("size_scale must be positive")

    def scaled(n: int, minimum: int = 50) -> int:
        return max(minimum, int(round(n * size_scale)))

    if name == "swissprot":
        config = TreeDatasetConfig(
            num_trees=scaled(500),
            nodes_mean=26,
            nodes_spread=10,
            num_clusters=10,
            num_labels=80,
            labels_per_cluster=14,
            skew=0.6,
            seed=seed,
        )
        trees = generate_tree_dataset(config)
        return Dataset(
            name=name,
            kind="tree",
            items=tree_items(trees),
            ground_truth=np.array([t.cluster for t in trees]),
            meta={
                "num_trees": len(trees),
                "total_nodes": sum(t.num_nodes for t in trees),
            },
        )
    if name == "treebank":
        config = TreeDatasetConfig(
            num_trees=scaled(450),
            nodes_mean=20,
            nodes_spread=6,
            num_clusters=12,
            num_labels=100,
            labels_per_cluster=10,
            mutation_rate=0.12,
            skew=0.9,
            seed=seed + 1,
        )
        trees = generate_tree_dataset(config)
        return Dataset(
            name=name,
            kind="tree",
            items=tree_items(trees),
            ground_truth=np.array([t.cluster for t in trees]),
            meta={
                "num_trees": len(trees),
                "total_nodes": sum(t.num_nodes for t in trees),
            },
        )
    if name == "uk":
        config = WebGraphConfig(
            num_vertices=scaled(2500),
            num_hosts=12,
            mean_degree=14.0,
            intra_host_prob=0.85,
            copy_prob=0.55,
            host_skew=0.7,
            seed=seed + 2,
        )
        graph = generate_webgraph(config)
        return Dataset(
            name=name,
            kind="graph",
            items=graph.records(),
            ground_truth=graph.host_of,
            meta={
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "num_hosts": config.num_hosts,
            },
        )
    if name == "arabic":
        config = WebGraphConfig(
            num_vertices=scaled(3500),
            num_hosts=16,
            mean_degree=18.0,
            intra_host_prob=0.8,
            copy_prob=0.5,
            host_skew=0.9,
            seed=seed + 3,
        )
        graph = generate_webgraph(config)
        return Dataset(
            name=name,
            kind="graph",
            items=graph.records(),
            ground_truth=graph.host_of,
            meta={
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "num_hosts": config.num_hosts,
            },
        )
    # rcv1
    config = CorpusConfig(
        num_docs=scaled(1200),
        vocab_size=1000,
        num_topics=12,
        topic_skew=0.8,
        seed=seed + 4,
    )
    corpus = generate_corpus(config)
    return Dataset(
        name=name,
        kind="text",
        items=corpus.records(),
        ground_truth=corpus.topic_of,
        meta={
            "num_docs": corpus.num_docs,
            "vocab_size": corpus.vocab_size,
        },
    )


def dataset_summary(dataset: Dataset) -> dict[str, Any]:
    """Table I row for a loaded dataset."""
    row: dict[str, Any] = {"name": dataset.name, "type": dataset.kind, "items": len(dataset)}
    row.update(dataset.meta)
    return row
