"""Renewable-energy traces for data-center sites.

The paper selects four Google data-center locations and generates
renewable traces for each with PVWATTS. Here the trace generator
combines the clear-sky solar model with a seeded AR(1) cloud-cover
process whose parameters come from a per-location climate preset.
Traces are sampled at a configurable resolution (per-second by default,
matching the paper's note that the hourly PVWATTS output "can be
rescaled to per second average for greater precision").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.solar import SolarModel, SolarPanel


@dataclass(frozen=True)
class Location:
    """A data-center site with a solar-climate preset.

    ``mean_cloud`` and ``cloud_persistence`` parameterise the AR(1)
    cloud process; ``cloud_volatility`` is the innovation scale.
    """

    name: str
    latitude_deg: float
    longitude_deg: float
    mean_cloud: float
    cloud_persistence: float = 0.95
    cloud_volatility: float = 0.08

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError("latitude out of range")
        if not 0.0 <= self.mean_cloud <= 1.0:
            raise ValueError("mean_cloud must be in [0, 1]")
        if not 0.0 <= self.cloud_persistence < 1.0:
            raise ValueError("cloud_persistence must be in [0, 1)")


#: The four Google data-center sites the paper's setup references,
#: with climatological mean cloudiness (sunnier in OK, cloudier in OR).
GOOGLE_DC_LOCATIONS: tuple[Location, ...] = (
    Location("the-dalles-or", 45.61, -121.18, mean_cloud=0.62),
    Location("council-bluffs-ia", 41.26, -95.86, mean_cloud=0.48),
    Location("berkeley-county-sc", 33.19, -80.01, mean_cloud=0.40),
    Location("mayes-county-ok", 36.24, -95.33, mean_cloud=0.32),
)


@dataclass
class EnergyTrace:
    """A renewable power trace: ``watts[i]`` at time ``i * resolution_s``.

    Provides the two views the framework needs: the mean available green
    power over a window (feeds ``k_i`` in the LP) and the exact integral
    of green energy over an interval (feeds measured dirty energy).
    """

    watts: np.ndarray
    resolution_s: float = 1.0
    location: Location | None = None

    def __post_init__(self) -> None:
        self.watts = np.asarray(self.watts, dtype=np.float64)
        if self.watts.ndim != 1 or self.watts.size == 0:
            raise ValueError("trace must be a non-empty 1-D array")
        if (self.watts < 0).any():
            raise ValueError("green power cannot be negative")
        if self.resolution_s <= 0:
            raise ValueError("resolution must be positive")

    @property
    def duration_s(self) -> float:
        return self.watts.size * self.resolution_s

    def power_at(self, t_s: float) -> float:
        """Green power (W) at time ``t_s`` (piecewise-constant samples)."""
        if t_s < 0:
            raise ValueError("time must be non-negative")
        idx = min(int(t_s / self.resolution_s), self.watts.size - 1)
        return float(self.watts[idx])

    def mean_power(self, start_s: float = 0.0, duration_s: float | None = None) -> float:
        """Mean green power over ``[start_s, start_s + duration_s)``."""
        if duration_s is None:
            duration_s = self.duration_s - start_s
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        lo = int(start_s / self.resolution_s)
        hi = int(np.ceil((start_s + duration_s) / self.resolution_s))
        lo = min(max(lo, 0), self.watts.size - 1)
        hi = min(max(hi, lo + 1), self.watts.size)
        return float(self.watts[lo:hi].mean())

    def to_csv(self, path) -> None:
        """Write the trace as ``time_s,watts`` rows (PVWATTS-export style),
        so real trace data can round-trip through the same format."""
        import pathlib

        lines = ["time_s,watts"]
        for i, w in enumerate(self.watts):
            lines.append(f"{i * self.resolution_s:.1f},{w:.4f}")
        pathlib.Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def from_csv(cls, path, location: Location | None = None) -> "EnergyTrace":
        """Load a trace written by :meth:`to_csv` (or a real PVWATTS
        export reduced to ``time_s,watts`` columns). The resolution is
        inferred from the first two timestamps."""
        import pathlib

        rows = pathlib.Path(path).read_text().strip().splitlines()
        if len(rows) < 2:
            raise ValueError("trace CSV needs a header and at least one row")
        body = rows[1:]
        times = []
        watts = []
        for row in body:
            t_str, w_str = row.split(",")
            times.append(float(t_str))
            watts.append(float(w_str))
        resolution = times[1] - times[0] if len(times) > 1 else 1.0
        if resolution <= 0:
            raise ValueError("timestamps must be increasing")
        return cls(
            watts=np.array(watts), resolution_s=resolution, location=location
        )

    def energy_joules(self, start_s: float, duration_s: float) -> float:
        """Exact green energy (J) available in the window, integrating the
        piecewise-constant trace; windows past the end of the trace hold
        the final sample (steady-state extrapolation)."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if duration_s == 0:
            return 0.0
        total = 0.0
        t = start_s
        end = start_s + duration_s
        while t < end:
            idx = min(int(t / self.resolution_s), self.watts.size - 1)
            cell_end = (idx + 1) * self.resolution_s
            if idx == self.watts.size - 1:
                cell_end = max(cell_end, end)
            step = min(cell_end, end) - t
            total += float(self.watts[idx]) * step
            t += step
        return total


def generate_trace(
    location: Location,
    duration_s: float,
    *,
    start_day_of_year: int = 172,
    start_hour: float = 8.0,
    resolution_s: float = 1.0,
    panel: SolarPanel | None = None,
    seed: int = 0,
) -> EnergyTrace:
    """Generate a renewable trace for a site with AR(1) cloud dynamics.

    The default start (day 172 ≈ June 21, 08:00 local solar time) puts
    job windows into daylight so green supply is non-trivially variable.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    model = SolarModel(location.latitude_deg, panel or SolarPanel())
    n = max(1, int(np.ceil(duration_s / resolution_s)))
    t = np.arange(n) * resolution_s
    hours = (start_hour + t / 3600.0) % 24.0
    days = start_day_of_year + ((start_hour + t / 3600.0) // 24.0)

    rng = np.random.default_rng(seed)
    # AR(1) around the site's climatological mean; update per simulated
    # minute so second-resolution traces stay smooth.
    step_s = max(resolution_s, 60.0)
    n_steps = int(np.ceil(duration_s / step_s)) + 1
    clouds_coarse = np.empty(n_steps)
    w = location.mean_cloud
    phi = location.cloud_persistence
    sigma = location.cloud_volatility
    for i in range(n_steps):
        clouds_coarse[i] = np.clip(w, 0.0, 1.0)
        w = location.mean_cloud + phi * (w - location.mean_cloud) + rng.normal(0.0, sigma)
    cloud_idx = np.minimum((t / step_s).astype(np.int64), n_steps - 1)
    clouds = clouds_coarse[cloud_idx]

    watts = model.power(days, hours, clouds)
    return EnergyTrace(watts=watts, resolution_s=resolution_s, location=location)
