"""Clear-sky solar model and cloud attenuation (PVWATTS substitute).

Implements ``GE(t) = p(w(t)) · B(t)`` from Goiri et al. (the model the
paper adopts):

- ``B(t)``: photovoltaic output under ideal sunny conditions, from solar
  geometry (declination, hour angle, solar elevation) and a simple
  air-mass attenuation of the solar constant, scaled by the panel's
  rated DC capacity and derate factor (the PVWATTS panel parameters).
- ``p(w)``: the Kasten–Czeplak attenuation ``1 − 0.75·w**3.4`` for cloud
  cover fraction ``w ∈ [0, 1]``.

All functions are vectorised over time arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Solar constant at top of atmosphere (W/m^2).
SOLAR_CONSTANT = 1353.0
#: Standard test-condition irradiance that yields rated DC output.
STC_IRRADIANCE = 1000.0


def solar_declination(day_of_year: np.ndarray | float) -> np.ndarray:
    """Solar declination in radians (Cooper's equation)."""
    day = np.asarray(day_of_year, dtype=np.float64)
    return np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + day) / 365.0)


def solar_elevation(latitude_deg: float, day_of_year, hour) -> np.ndarray:
    """Solar elevation angle in radians for local solar ``hour`` (0–24)."""
    lat = np.deg2rad(latitude_deg)
    decl = solar_declination(day_of_year)
    hour_angle = np.deg2rad(15.0 * (np.asarray(hour, dtype=np.float64) - 12.0))
    sin_el = np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(hour_angle)
    return np.arcsin(np.clip(sin_el, -1.0, 1.0))


def clear_sky_irradiance(latitude_deg: float, day_of_year, hour) -> np.ndarray:
    """Ground-level clear-sky irradiance (W/m^2) via air-mass attenuation.

    Uses the Meinel model ``I = S · 0.7 ** (AM ** 0.678)`` with
    ``AM = 1 / sin(elevation)``; zero when the sun is below the horizon.
    """
    el = solar_elevation(latitude_deg, day_of_year, hour)
    sin_el = np.atleast_1d(np.sin(el)).astype(np.float64)
    irradiance = np.zeros_like(sin_el)
    up = sin_el > 1e-3
    air_mass = 1.0 / sin_el[up]
    irradiance[up] = SOLAR_CONSTANT * np.power(0.7, np.power(air_mass, 0.678)) * sin_el[up]
    return irradiance.reshape(np.shape(el))


def cloud_attenuation(cloud_cover: np.ndarray | float) -> np.ndarray:
    """Kasten–Czeplak factor ``p(w) = 1 − 0.75·w**3.4``; 1 = clear sky."""
    w = np.clip(np.asarray(cloud_cover, dtype=np.float64), 0.0, 1.0)
    return 1.0 - 0.75 * np.power(w, 3.4)


@dataclass(frozen=True)
class SolarPanel:
    """PVWATTS-style panel specification.

    Parameters
    ----------
    rated_dc_watts:
        Nameplate DC capacity at standard test conditions.
    derate:
        System derate factor (inverter + wiring + soiling); PVWATTS's
        classic default is 0.77.
    """

    rated_dc_watts: float = 500.0
    derate: float = 0.77

    def __post_init__(self) -> None:
        if self.rated_dc_watts <= 0:
            raise ValueError("rated_dc_watts must be positive")
        if not 0.0 < self.derate <= 1.0:
            raise ValueError("derate must be in (0, 1]")

    def output_watts(self, irradiance: np.ndarray | float) -> np.ndarray:
        """AC output for a given plane irradiance (linear in irradiance)."""
        irr = np.asarray(irradiance, dtype=np.float64)
        return self.rated_dc_watts * self.derate * np.clip(irr, 0.0, None) / STC_IRRADIANCE


@dataclass(frozen=True)
class SolarModel:
    """Combined ``GE(t) = p(w(t)) · B(t)`` generator for one site."""

    latitude_deg: float
    panel: SolarPanel = SolarPanel()

    def ideal_power(self, day_of_year, hour) -> np.ndarray:
        """``B(t)``: panel output under clear skies."""
        return self.panel.output_watts(
            clear_sky_irradiance(self.latitude_deg, day_of_year, hour)
        )

    def power(self, day_of_year, hour, cloud_cover) -> np.ndarray:
        """``GE(t)`` with the given cloud-cover fractions."""
        return self.ideal_power(day_of_year, hour) * cloud_attenuation(cloud_cover)
