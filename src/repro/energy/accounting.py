"""Dirty-energy accounting.

Two views, matching the paper's Section III-B/III-D:

- **Planning view** (fed to the LP): the mean-rate approximation
  ``g(x_i) ≈ k_i · f(x_i)`` with ``k_i = E_i − ḠE_i`` the node's *dirty
  power coefficient* — consumption rate minus mean green supply over
  the anticipated job window. By default ``k_i`` is clamped at zero
  (surplus green power cannot make dirty energy negative); pass
  ``allow_negative=True`` for the paper's raw linear form.
- **Measurement view** (reported by the evaluation harness): the exact
  integral ``∫₀ᵀ max(0, E_i − GE_i(t)) dt`` over the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.power import NodePowerModel
from repro.energy.traces import EnergyTrace


@dataclass
class DirtyEnergyAccountant:
    """Bundles a node's power model with its green-energy trace."""

    power: NodePowerModel
    trace: EnergyTrace
    allow_negative: bool = False

    def dirty_power_coefficient(self, window_s: float | None = None) -> float:
        """``k_i = E_i − ḠE_i`` over an anticipated window (W).

        ``window_s=None`` averages over the whole trace. The green
        supply credited to a node is capped at its own draw — a node
        cannot bank more green power than it consumes — unless
        ``allow_negative`` reproduces the paper's uncapped form.
        """
        mean_green = self.trace.mean_power(0.0, window_s)
        k = self.power.watts - mean_green
        if self.allow_negative:
            return k
        return max(k, 0.0)

    def predicted_dirty_energy(self, runtime_s: float, window_s: float | None = None) -> float:
        """Planning estimate ``k_i · runtime`` (J)."""
        if runtime_s < 0:
            raise ValueError("runtime must be non-negative")
        return self.dirty_power_coefficient(window_s) * runtime_s

    def measured_dirty_energy(self, runtime_s: float, start_s: float = 0.0) -> float:
        """Exact dirty energy over ``[start, start + runtime)`` (J).

        Integrates ``max(0, E_i − GE_i(t))`` sample by sample; with
        ``allow_negative`` the instantaneous surplus is allowed to
        offset deficit elsewhere in the window (paper's accounting).
        """
        if runtime_s < 0:
            raise ValueError("runtime must be non-negative")
        if runtime_s == 0:
            return 0.0
        res = self.trace.resolution_s
        draw = self.power.watts
        total = 0.0
        t = start_s
        end = start_s + runtime_s
        while t < end:
            idx = min(int(t / res), self.trace.watts.size - 1)
            cell_end = (idx + 1) * res
            if idx == self.trace.watts.size - 1:
                cell_end = max(cell_end, end)
            step = min(cell_end, end) - t
            deficit = draw - float(self.trace.watts[idx])
            if not self.allow_negative:
                deficit = max(deficit, 0.0)
            total += deficit * step
            t += step
        if self.allow_negative:
            return total
        return max(total, 0.0)

    def green_fraction(self, runtime_s: float, start_s: float = 0.0) -> float:
        """Share of consumed energy covered by green supply in [0, 1]."""
        if runtime_s <= 0:
            raise ValueError("runtime must be positive")
        consumed = self.power.energy_joules(runtime_s)
        dirty = self.measured_dirty_energy(runtime_s, start_s)
        return float(np.clip(1.0 - dirty / consumed, 0.0, 1.0))
