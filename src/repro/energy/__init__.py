"""Green-energy substrate: solar production traces and dirty-energy accounting.

The paper predicts per-node renewable supply with the PVWATTS simulator
(NREL weather database + panel model) and accounts dirty energy as
``g(x_i) = E_i f(x_i) − Σ_t GE_i(t)``. Offline we replace PVWATTS with
the same model family the paper cites (Goiri et al.'s
``GE(t) = p(w(t))·B(t)``): a clear-sky irradiance model from solar
geometry, a seeded AR(1) cloud-cover process with per-location climate
parameters, and the Kasten–Czeplak cloud attenuation factor.
"""

from repro.energy.solar import SolarPanel, clear_sky_irradiance, cloud_attenuation, SolarModel
from repro.energy.traces import Location, EnergyTrace, GOOGLE_DC_LOCATIONS, generate_trace
from repro.energy.power import NodePowerModel, PAPER_CORE_WATTS, PAPER_BASE_WATTS, paper_power_model
from repro.energy.accounting import DirtyEnergyAccountant

__all__ = [
    "SolarPanel",
    "SolarModel",
    "clear_sky_irradiance",
    "cloud_attenuation",
    "Location",
    "EnergyTrace",
    "GOOGLE_DC_LOCATIONS",
    "generate_trace",
    "NodePowerModel",
    "PAPER_CORE_WATTS",
    "PAPER_BASE_WATTS",
    "paper_power_model",
    "DirtyEnergyAccountant",
]
