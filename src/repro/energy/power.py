"""Node power-consumption model.

The paper derives per-node power from HP SL server specs: a 12-core
1200 W server with 95 W Xeons implies a 60 W base
(``1200 − 95·12 = 60``), and the four emulated machine types are
assigned 4/3/2/1 effective cores, giving 440/345/250/155 W.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-core power draw (Intel Xeon figure used by the paper).
PAPER_CORE_WATTS = 95.0
#: Base (non-CPU) power of the HP SL chassis per the paper's arithmetic.
PAPER_BASE_WATTS = 60.0


@dataclass(frozen=True)
class NodePowerModel:
    """Affine power model ``P = base + cores · per_core`` for one node."""

    cores: int
    base_watts: float = PAPER_BASE_WATTS
    per_core_watts: float = PAPER_CORE_WATTS

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.base_watts < 0 or self.per_core_watts < 0:
            raise ValueError("power terms must be non-negative")

    @property
    def watts(self) -> float:
        """Total draw while the node is busy."""
        return self.base_watts + self.cores * self.per_core_watts

    def energy_joules(self, duration_s: float) -> float:
        """Energy consumed running flat-out for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.watts * duration_s


def paper_power_model(node_type: int) -> NodePowerModel:
    """Power model for paper machine type 1..4 (1 = fastest, 4 cores)."""
    if node_type not in (1, 2, 3, 4):
        raise ValueError("node_type must be in 1..4")
    return NodePowerModel(cores=5 - node_type)
