"""Global barrier on the KV store's atomic fetch-and-increment.

The paper separates pivot extraction, sketch generation, sketch
clustering and final partitioning with global barriers built from
Redis's atomic increment. :class:`KVBarrier` reproduces that protocol:
each party increments an arrival counter and spins until the counter
reaches the party count for the current generation. Generations make
the barrier reusable, as successive pipeline phases require.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.kvstore.store import KeyValueStore, StoreError


@dataclass
class KVBarrier:
    """A reusable p-party barrier over one store instance.

    Parameters
    ----------
    store:
        The store hosting the barrier keys (the paper places this on a
        dedicated master node).
    parties:
        Number of participants that must arrive before any may pass.
    name:
        Key namespace, so multiple barriers can coexist.
    poll_interval_s:
        Spin-wait sleep between counter reads.
    timeout_s:
        Abort threshold; a lost participant otherwise hangs everyone.
    """

    store: KeyValueStore
    parties: int
    name: str = "barrier"
    poll_interval_s: float = 0.0005
    timeout_s: float = 30.0
    _local_generation: dict[int, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if self.parties <= 0:
            raise StoreError("barrier needs at least one party")

    def _arrivals_key(self, generation: int) -> str:
        return f"{self.name}:gen:{generation}:arrivals"

    def wait(self, party_id: int | None = None) -> int:
        """Arrive at the barrier; blocks until all parties arrive.

        Returns the generation number that was completed. ``party_id``
        (when given) tracks per-party generations so one thread can
        participate in successive phases.
        """
        with self._lock:
            key = 0 if party_id is None else party_id
            generation = self._local_generation.get(key, 0)
            self._local_generation[key] = generation + 1
        arrivals = self.store.incr(self._arrivals_key(generation))
        if arrivals > self.parties:
            raise StoreError(
                f"barrier {self.name!r} generation {generation} overflowed: "
                f"{arrivals} arrivals for {self.parties} parties"
            )
        deadline = time.monotonic() + self.timeout_s
        while True:
            count = self.store.get(self._arrivals_key(generation))
            if count is not None and count >= self.parties:
                return generation
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"barrier {self.name!r} generation {generation}: "
                    f"{count}/{self.parties} arrived within {self.timeout_s}s"
                )
            time.sleep(self.poll_interval_s)
