"""Execution engines: run partitioned workloads on the emulated cluster.

Two engines share one interface:

- :class:`SimulatedEngine` runs each partition's workload in-process to
  obtain its real output and work-unit count, then derives runtime
  deterministically as ``overhead/speed + work_units/(unit_rate·speed)``
  — the busy-loop emulation in closed form. This is the default for
  experiments: results are exactly reproducible.
- :class:`ProcessPoolEngine` executes partitions on a real, persistent
  ``ProcessPoolExecutor`` (created lazily, reused across jobs and
  profiling probes) and scales measured wall time by the node's speed
  factor, exercising genuine parallel execution (pickling, process
  startup, concurrent scheduling).

Both account dirty energy against each node's green trace over the
node's busy interval and support multiple partitions queued on one node
(executed back to back, as a slow node with two chunks would).
"""

from __future__ import annotations

import abc
import logging
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Sequence


import repro.obs as obs
from repro.cluster.cluster import Cluster
from repro.cluster.dataplane import (
    DataPlaneStats,
    PartitionRef,
    SharedPartitionStore,
    fetch_partition,
)
from repro.obs.energy import node_energy_breakdown, record_job_metrics, task_energy_attrs
from repro.obs.log import get_logger, log_event
from repro.obs.trace import Tracer
from repro.workloads.base import Workload, WorkloadResult

_log = get_logger(__name__)


@dataclass
class TaskResult:
    """One partition's execution record."""

    partition_id: int
    node_id: int
    start_s: float
    runtime_s: float
    work_units: float
    dirty_energy_j: float
    energy_j: float
    output: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.runtime_s


@dataclass
class JobResult:
    """Aggregate outcome of one distributed job."""

    tasks: list[TaskResult]
    makespan_s: float
    total_dirty_energy_j: float
    total_energy_j: float
    merged_output: Any = None

    def node_busy_times(self) -> dict[int, float]:
        """Total busy seconds per node."""
        busy: dict[int, float] = {}
        for t in self.tasks:
            busy[t.node_id] = busy.get(t.node_id, 0.0) + t.runtime_s
        return busy

    def energy_breakdown(self) -> dict[int, dict[str, float]]:
        """Per-node time/energy/dirty-energy telemetry.

        Exact regrouping of the per-task fields: the per-node
        ``energy_j``/``dirty_energy_j`` columns sum back to
        ``total_energy_j``/``total_dirty_energy_j``.
        """
        return node_energy_breakdown(self)

    def partition_sizes_by_node(self) -> dict[int, float]:
        work: dict[int, float] = {}
        for t in self.tasks:
            work[t.node_id] = work.get(t.node_id, 0.0) + t.work_units
        return work


def record_job_telemetry(
    job: JobResult, job_span, wall0: float, engine: str, workload: str | None = None
) -> None:
    """Emit one ``task.execute`` span per task (on the job's node-local
    timeline, anchored at the job's wall start) plus the per-node
    latency/energy metrics. Sums of the span energy attrs reproduce
    the job totals exactly — the spans carry the same floats the
    :class:`JobResult` summed. Callers must check ``obs.enabled()``.

    ``workload`` tags each span with the workload name so the live
    :class:`~repro.obs.live.NodeEstimator` can fit per-workload models
    (mixing workloads with different per-item costs would bias a
    pooled slope).

    Shared by every engine that produces a :class:`JobResult`
    (simulated, process-pool, fault-injecting, work-stealing).
    """
    tracer = obs.get_tracer()
    for task in job.tasks:
        attrs = task_energy_attrs(task)
        if workload is not None:
            attrs["workload"] = workload
        tracer.emit(
            "task.execute",
            start_s=wall0 + task.start_s,
            duration_s=task.runtime_s,
            parent_id=job_span.span_id,
            **attrs,
        )
    job_span.set_attr("makespan_s", job.makespan_s)
    job_span.set_attr("total_energy_j", job.total_energy_j)
    job_span.set_attr("total_dirty_energy_j", job.total_dirty_energy_j)
    record_job_metrics(obs.get_metrics(), job, engine=engine)
    # Deferred import: repro.obs.live sits above the cluster layer.
    from repro.obs.live import active_plane

    plane = active_plane()
    if plane is not None:
        plane.publish_event(
            "job.complete",
            engine=engine,
            workload=workload,
            tasks=len(job.tasks),
            makespan_s=job.makespan_s,
            energy_j=job.total_energy_j,
            dirty_energy_j=job.total_dirty_energy_j,
        )


def _validate_assignment(cluster: Cluster, partitions: Sequence, assignment: Sequence[int]) -> None:
    if len(partitions) != len(assignment):
        raise ValueError("one node assignment required per partition")
    if len(partitions) == 0:
        raise ValueError("job needs at least one partition")
    for node in assignment:
        if not 0 <= node < cluster.num_nodes:
            raise ValueError(f"assignment references unknown node {node}")


class ExecutionEngine(abc.ABC):
    """Common engine machinery: scheduling, energy accounting, merging."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    @abc.abstractmethod
    def _execute_partitions(
        self, workload: Workload, partitions: Sequence[Sequence[Any]], assignment: Sequence[int]
    ) -> list[tuple[WorkloadResult, float]]:
        """Return ``(result, runtime_s)`` per partition, in order."""

    def profile(self, workload: Workload, records: Sequence[Any], node_id: int) -> float:
        """Runtime of ``workload`` on ``records`` at ``node_id`` — the
        probe the progressive-sampling estimator uses."""
        with obs.span(
            "engine.profile",
            engine=type(self).__name__,
            node=node_id,
            records=len(records),
        ) as sp:
            (pair,) = self._execute_partitions(workload, [records], [node_id])
            sp.set_attr("runtime_s", pair[1])
            return pair[1]

    def profile_all_nodes(
        self, workload: Workload, records: Sequence[Any]
    ) -> list[float]:
        """Runtime of one sample on *every* node (node-id order).

        Default: one probe per node. Engines whose runtime is a pure
        function of work units override this to run the workload once.
        """
        with obs.span(
            "engine.profile_all_nodes",
            engine=type(self).__name__,
            nodes=self.cluster.num_nodes,
            records=len(records),
        ):
            return [
                self.profile(workload, records, node_id)
                for node_id in range(self.cluster.num_nodes)
            ]

    def run_job(
        self,
        workload: Workload,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int] | None = None,
        start_offset_s: float = 0.0,
    ) -> JobResult:
        """Execute one partition per assignment slot and aggregate.

        ``assignment=None`` maps partition ``i`` to node
        ``i % num_nodes``. Multiple partitions on a node run back to
        back; all nodes start at ``start_offset_s`` (global barrier
        semantics — pass the previous phase's makespan so energy is
        billed against the right window of each node's green trace).
        Reported start/end times and the makespan are relative to the
        offset.
        """
        if assignment is None:
            assignment = [i % self.cluster.num_nodes for i in range(len(partitions))]
        if start_offset_s < 0:
            raise ValueError("start_offset_s must be non-negative")
        _validate_assignment(self.cluster, partitions, assignment)

        wall0 = time.time()
        with obs.span(
            "engine.run_job",
            engine=type(self).__name__,
            partitions=len(partitions),
            nodes=self.cluster.num_nodes,
        ) as job_span:
            executed = self._execute_partitions(workload, partitions, assignment)

            tasks: list[TaskResult] = []
            node_clock: dict[int, float] = {}
            for pid, ((result, runtime), node_id) in enumerate(zip(executed, assignment)):
                node = self.cluster[node_id]
                start = node_clock.get(node_id, 0.0)
                dirty = node.accountant.measured_dirty_energy(
                    runtime, start_s=start_offset_s + start
                )
                energy = node.accountant.power.energy_joules(runtime)
                tasks.append(
                    TaskResult(
                        partition_id=pid,
                        node_id=node_id,
                        start_s=start,
                        runtime_s=runtime,
                        work_units=result.work_units,
                        dirty_energy_j=dirty,
                        energy_j=energy,
                        output=result.output,
                        stats=result.stats,
                    )
                )
                node_clock[node_id] = start + runtime

            makespan = max(node_clock.values())
            merged = workload.merge(
                [WorkloadResult(t.work_units, t.output, t.stats) for t in tasks]
            )
            job = JobResult(
                tasks=tasks,
                makespan_s=makespan,
                total_dirty_energy_j=sum(t.dirty_energy_j for t in tasks),
                total_energy_j=sum(t.energy_j for t in tasks),
                merged_output=merged,
            )
            if obs.enabled():
                record_job_telemetry(
                    job, job_span, wall0, type(self).__name__, workload=workload.name
                )
            return job


class SimulatedEngine(ExecutionEngine):
    """Deterministic engine: runtime = overhead/speed + work/(rate·speed).

    Parameters
    ----------
    unit_rate:
        Work units per second a speed-1 node processes. Calibrates the
        absolute time scale only; strategy comparisons are invariant.
    """

    def __init__(self, cluster: Cluster, unit_rate: float = 5e4):
        super().__init__(cluster)
        if unit_rate <= 0:
            raise ValueError("unit_rate must be positive")
        self.unit_rate = unit_rate

    def _execute_partitions(self, workload, partitions, assignment):
        out = []
        for records, node_id in zip(partitions, assignment):
            result = workload.run(records)
            node = self.cluster[node_id]
            runtime = node.runtime_for_work(result.work_units, self.unit_rate)
            out.append((result, runtime))
        return out

    def profile_all_nodes(self, workload, records):
        # Simulated runtime is work/(rate·speed): run the workload once
        # and derive every node's runtime from the same work count.
        with obs.span(
            "engine.profile_all_nodes",
            engine=type(self).__name__,
            nodes=self.cluster.num_nodes,
            records=len(records),
        ):
            result = workload.run(list(records))
        return [
            node.runtime_for_work(result.work_units, self.unit_rate)
            for node in self.cluster
        ]


def _worker_ignore_sigint() -> None:
    """Pool-worker initializer: leave Ctrl-C to the parent.

    A terminal delivers SIGINT to the whole foreground process group; a
    worker interrupted mid ``call_queue.get()`` prints a traceback and
    can wedge the queue into a BrokenProcessPool. Workers ignore the
    signal so only the parent reacts and drains via :meth:`shutdown`
    (which still SIGTERMs workers if they hang).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_task(
    args: tuple[Workload, Sequence[Any], bool]
) -> tuple[WorkloadResult, float, tuple]:
    workload, records, trace = args
    tracer = Tracer() if trace else None
    span = tracer.span("worker.run", items=len(records), shm=False) if tracer is not None else None
    t0 = time.perf_counter()
    if span is not None:
        with span:
            result = workload.run(records)
    else:
        result = workload.run(records)
    wall = time.perf_counter() - t0
    # Worker spans ship back through the normal task return path; the
    # parent re-parents them under the span that launched the job.
    return result, wall, tuple(tracer.finished_spans()) if tracer is not None else ()


def _pool_task_shm(
    args: tuple[Workload, PartitionRef, bool]
) -> tuple[WorkloadResult, float, tuple]:
    workload, ref, trace = args
    tracer = Tracer() if trace else None
    # Fetch outside the timer: with the eager path the partition was
    # unpickled by the executor before _pool_task started, so measured
    # wall time covers only workload.run either way.
    if tracer is not None:
        with tracer.span(
            "worker.fetch", segment=ref.segment, bytes=ref.total_bytes
        ):
            records = fetch_partition(ref)
    else:
        records = fetch_partition(ref)
    span = tracer.span("worker.run", items=len(records), shm=True) if tracer is not None else None
    t0 = time.perf_counter()
    if span is not None:
        with span:
            result = workload.run(records)
    else:
        result = workload.run(records)
    wall = time.perf_counter() - t0
    return result, wall, tuple(tracer.finished_spans()) if tracer is not None else ()


class ProcessPoolEngine(ExecutionEngine):
    """Real parallel engine: wall time scaled by each node's speed factor.

    Partition workloads run concurrently in worker processes (capped at
    ``max_workers``); the measured wall time of each task is divided by
    the assigned node's speed factor and the per-task overhead added,
    emulating the busy-loop slowdown without burning cores on spin
    loops.

    The worker pool is **persistent**: it is created lazily on the
    first job and reused by every subsequent :meth:`run_job` /
    :meth:`profile` / :meth:`profile_all_nodes` call, so process
    fork/spawn cost is paid once per engine, not once per job. Because
    worker start-up is real wall time, the first task measured on a
    cold pool can carry import/fork noise — callers comparing measured
    runtimes should issue a throwaway :meth:`profile` first (or accept
    the first probe as warm-up). Use the engine as a context manager,
    or call :meth:`shutdown`, to release the workers deterministically;
    a garbage-collected engine tears its pool down without waiting.

    With ``use_shared_memory=True`` (the default) partitions travel
    through the :mod:`repro.cluster.dataplane` shared-memory store:
    each distinct partition is serialized once into a shared segment
    and tasks carry only a tiny :class:`PartitionRef`, so repeated
    ``run_job``/``profile`` calls over the same partitions never
    re-pickle the data. :meth:`shutdown` unlinks the segments. Set the
    flag to ``False`` to pickle partitions into every task tuple (the
    pre-data-plane behaviour). ``cache_limit`` bounds the store's
    segment cache: least-recently-used segments are unlinked once more
    than ``cache_limit`` are live, so long-running engines streaming
    many distinct jobs keep a bounded ``/dev/shm`` footprint (``None``
    = unbounded, the pre-limit behaviour).
    """

    def __init__(
        self,
        cluster: Cluster,
        max_workers: int | None = None,
        use_shared_memory: bool = True,
        cache_limit: int | None = 64,
    ):
        super().__init__(cluster)
        self.max_workers = max_workers
        self.use_shared_memory = use_shared_memory
        if cache_limit is not None and cache_limit <= 0:
            raise ValueError("cache_limit must be positive (or None for unbounded)")
        self.cache_limit = cache_limit
        self._pool: ProcessPoolExecutor | None = None
        self._store: SharedPartitionStore | None = None
        self._pools_created = 0
        # Serializes pool/store creation against teardown and counts
        # in-flight pool jobs so shutdown(wait=True) can drain before
        # unlinking shared-memory segments workers may still be reading.
        self._lifecycle = threading.Condition()
        self._inflight = 0

    @property
    def pools_created(self) -> int:
        """How many executors this engine has ever constructed.

        Stays at 1 across any number of jobs unless the pool broke (a
        worker died) or :meth:`shutdown` was followed by more work.
        """
        with self._lifecycle:
            return self._pools_created

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lifecycle:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_worker_ignore_sigint,
                )
                self._pools_created += 1
                log_event(
                    _log, logging.DEBUG, "engine.pool.created",
                    total=self._pools_created, max_workers=self.max_workers,
                )
                if obs.enabled():
                    obs.get_metrics().counter("repro_pool_creations_total").inc()
            return self._pool

    def _ensure_store(self) -> SharedPartitionStore:
        with self._lifecycle:
            if self._store is None or self._store.closed:
                self._store = SharedPartitionStore(cache_limit=self.cache_limit)
            return self._store

    @property
    def dataplane_stats(self) -> DataPlaneStats:
        """Counters from the shared-memory store (zeros before first use)."""
        with self._lifecycle:
            store = self._store
        if store is None:
            return DataPlaneStats()
        return store.stats

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker processes and unlink any shared-memory
        segments. Idempotent; the next job after a shutdown
        transparently builds a fresh pool (and store).

        With ``wait=True`` (the default) the call **drains first**: it
        blocks until every in-flight :meth:`run_job` / :meth:`profile`
        on other threads has finished, then unlinks — so concurrent
        callers never observe their segments disappearing mid-fetch.
        ``wait=False`` tears down immediately (interpreter exit, broken
        pool).
        """
        lifecycle = getattr(self, "_lifecycle", None)
        if lifecycle is None:
            # __init__ raised before the lifecycle existed; nothing to free.
            return
        with lifecycle:
            if wait:
                while self._inflight > 0:
                    lifecycle.wait()
            # Detach the handles before tearing them down so a failure (or
            # a re-entrant call) can never double-release.
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
        if pool is not None or store is not None:
            log_event(
                _log, logging.DEBUG, "engine.shutdown",
                wait=wait, had_pool=pool is not None, had_store=store is not None,
            )
        try:
            if pool is not None:
                pool.shutdown(wait=wait)
        finally:
            if store is not None:
                store.close()

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:
        # Interpreter teardown may have already dismantled the modules
        # shutdown() needs (ImportError/TypeError/AttributeError from
        # half-dead internals); a dying engine must not raise — but it
        # leaves a debug record behind when logging still works.
        try:
            self.shutdown(wait=False)
        except BaseException as exc:
            try:
                log_event(
                    _log, logging.DEBUG, "engine.del.shutdown_failed",
                    error=type(exc).__name__,
                )
            except BaseException:  # repro: noqa[SILENT-EXCEPT] — logging itself is gone this deep into interpreter teardown
                pass

    def _map_tasks(
        self, workload: Workload, partitions: Sequence[Sequence[Any]]
    ) -> list[tuple[WorkloadResult, float]]:
        # Every pool round-trip is bracketed by the in-flight counter so
        # a concurrent shutdown(wait=True) drains us before unlinking.
        with self._lifecycle:
            self._inflight += 1
        try:
            return self._map_tasks_inner(workload, partitions)
        finally:
            with self._lifecycle:
                self._inflight -= 1
                self._lifecycle.notify_all()

    def _map_tasks_inner(
        self, workload: Workload, partitions: Sequence[Sequence[Any]]
    ) -> list[tuple[WorkloadResult, float]]:
        pool = self._ensure_pool()
        workers = self.max_workers or os.cpu_count() or 1
        # Hand each worker a few tasks per round-trip: one pickle per
        # chunk instead of one per partition.
        chunksize = max(1, len(partitions) // (4 * workers))
        # The tracing flag rides in the task tuple, so toggling obs
        # needs no pool restart (workers may predate enable()).
        trace = obs.enabled()
        # Workers must see a real list either way; keeping list inputs
        # un-copied lets the store's identity cache recognise repeats.
        parts = [p if isinstance(p, list) else list(p) for p in partitions]
        if self.use_shared_memory:
            try:
                refs = self._ensure_store().put_many(parts)
            except OSError as exc:
                # No usable shared memory on this host (e.g. /dev/shm
                # missing): fall back to eager pickling for good.
                log_event(
                    _log, logging.DEBUG, "engine.dataplane.fallback",
                    error=type(exc).__name__, detail=str(exc),
                )
                self.use_shared_memory = False
            else:
                return self._run_map(
                    pool, _pool_task_shm, [(workload, r, trace) for r in refs], chunksize
                )
        return self._run_map(
            pool, _pool_task, [(workload, p, trace) for p in parts], chunksize
        )

    def _run_map(self, pool, fn, tasks, chunksize):
        try:
            raw = list(pool.map(fn, tasks, chunksize=chunksize))
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; discard it so
            # the next job starts clean, then surface the failure.
            log_event(_log, logging.DEBUG, "engine.pool.broken", tasks=len(tasks))
            self.shutdown(wait=False)
            raise
        out = []
        tracer = obs.get_tracer() if obs.enabled() else None
        parent = tracer.current_span_id() if tracer is not None else None
        for result, wall, worker_spans in raw:
            if tracer is not None and worker_spans:
                tracer.adopt(worker_spans, parent_id=parent)
            out.append((result, wall))
        return out

    def _execute_partitions(self, workload, partitions, assignment):
        raw = self._map_tasks(workload, partitions)
        out = []
        for (result, wall), node_id in zip(raw, assignment):
            node = self.cluster[node_id]
            runtime = node.task_overhead_s / node.speed_factor + wall / node.speed_factor
            out.append((result, runtime))
        return out

    def profile_all_nodes(self, workload, records):
        # Runtime derives from one measured wall time scaled per node —
        # run the sample once on the pool instead of once per node.
        # Passing `records` through unchanged lets repeat probes of the
        # same sample hit the data plane's identity cache.
        with obs.span(
            "engine.profile_all_nodes",
            engine=type(self).__name__,
            nodes=self.cluster.num_nodes,
            records=len(records),
        ):
            ((_, wall),) = self._map_tasks(workload, [records])
        return [
            node.task_overhead_s / node.speed_factor + wall / node.speed_factor
            for node in self.cluster
        ]
