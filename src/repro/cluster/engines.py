"""Execution engines: run partitioned workloads on the emulated cluster.

Two engines share one interface:

- :class:`SimulatedEngine` runs each partition's workload in-process to
  obtain its real output and work-unit count, then derives runtime
  deterministically as ``overhead/speed + work_units/(unit_rate·speed)``
  — the busy-loop emulation in closed form. This is the default for
  experiments: results are exactly reproducible.
- :class:`ProcessPoolEngine` executes partitions on a real, persistent
  ``ProcessPoolExecutor`` (created lazily, reused across jobs and
  profiling probes) and scales measured wall time by the node's speed
  factor, exercising genuine parallel execution (pickling, process
  startup, concurrent scheduling).

Both account dirty energy against each node's green trace over the
node's busy interval and support multiple partitions queued on one node
(executed back to back, as a slow node with two chunks would).
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.dataplane import (
    DataPlaneStats,
    PartitionRef,
    SharedPartitionStore,
    fetch_partition,
)
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class TaskResult:
    """One partition's execution record."""

    partition_id: int
    node_id: int
    start_s: float
    runtime_s: float
    work_units: float
    dirty_energy_j: float
    energy_j: float
    output: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.runtime_s


@dataclass
class JobResult:
    """Aggregate outcome of one distributed job."""

    tasks: list[TaskResult]
    makespan_s: float
    total_dirty_energy_j: float
    total_energy_j: float
    merged_output: Any = None

    def node_busy_times(self) -> dict[int, float]:
        """Total busy seconds per node."""
        busy: dict[int, float] = {}
        for t in self.tasks:
            busy[t.node_id] = busy.get(t.node_id, 0.0) + t.runtime_s
        return busy

    def partition_sizes_by_node(self) -> dict[int, float]:
        work: dict[int, float] = {}
        for t in self.tasks:
            work[t.node_id] = work.get(t.node_id, 0.0) + t.work_units
        return work


def _validate_assignment(cluster: Cluster, partitions: Sequence, assignment: Sequence[int]) -> None:
    if len(partitions) != len(assignment):
        raise ValueError("one node assignment required per partition")
    if len(partitions) == 0:
        raise ValueError("job needs at least one partition")
    for node in assignment:
        if not 0 <= node < cluster.num_nodes:
            raise ValueError(f"assignment references unknown node {node}")


class ExecutionEngine(abc.ABC):
    """Common engine machinery: scheduling, energy accounting, merging."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    @abc.abstractmethod
    def _execute_partitions(
        self, workload: Workload, partitions: Sequence[Sequence[Any]], assignment: Sequence[int]
    ) -> list[tuple[WorkloadResult, float]]:
        """Return ``(result, runtime_s)`` per partition, in order."""

    def profile(self, workload: Workload, records: Sequence[Any], node_id: int) -> float:
        """Runtime of ``workload`` on ``records`` at ``node_id`` — the
        probe the progressive-sampling estimator uses."""
        (pair,) = self._execute_partitions(workload, [records], [node_id])
        return pair[1]

    def profile_all_nodes(
        self, workload: Workload, records: Sequence[Any]
    ) -> list[float]:
        """Runtime of one sample on *every* node (node-id order).

        Default: one probe per node. Engines whose runtime is a pure
        function of work units override this to run the workload once.
        """
        return [
            self.profile(workload, records, node_id)
            for node_id in range(self.cluster.num_nodes)
        ]

    def run_job(
        self,
        workload: Workload,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int] | None = None,
        start_offset_s: float = 0.0,
    ) -> JobResult:
        """Execute one partition per assignment slot and aggregate.

        ``assignment=None`` maps partition ``i`` to node
        ``i % num_nodes``. Multiple partitions on a node run back to
        back; all nodes start at ``start_offset_s`` (global barrier
        semantics — pass the previous phase's makespan so energy is
        billed against the right window of each node's green trace).
        Reported start/end times and the makespan are relative to the
        offset.
        """
        if assignment is None:
            assignment = [i % self.cluster.num_nodes for i in range(len(partitions))]
        if start_offset_s < 0:
            raise ValueError("start_offset_s must be non-negative")
        _validate_assignment(self.cluster, partitions, assignment)

        executed = self._execute_partitions(workload, partitions, assignment)

        tasks: list[TaskResult] = []
        node_clock: dict[int, float] = {}
        for pid, ((result, runtime), node_id) in enumerate(zip(executed, assignment)):
            node = self.cluster[node_id]
            start = node_clock.get(node_id, 0.0)
            dirty = node.accountant.measured_dirty_energy(
                runtime, start_s=start_offset_s + start
            )
            energy = node.accountant.power.energy_joules(runtime)
            tasks.append(
                TaskResult(
                    partition_id=pid,
                    node_id=node_id,
                    start_s=start,
                    runtime_s=runtime,
                    work_units=result.work_units,
                    dirty_energy_j=dirty,
                    energy_j=energy,
                    output=result.output,
                    stats=result.stats,
                )
            )
            node_clock[node_id] = start + runtime

        makespan = max(node_clock.values())
        merged = workload.merge([WorkloadResult(t.work_units, t.output, t.stats) for t in tasks])
        return JobResult(
            tasks=tasks,
            makespan_s=makespan,
            total_dirty_energy_j=sum(t.dirty_energy_j for t in tasks),
            total_energy_j=sum(t.energy_j for t in tasks),
            merged_output=merged,
        )


class SimulatedEngine(ExecutionEngine):
    """Deterministic engine: runtime = overhead/speed + work/(rate·speed).

    Parameters
    ----------
    unit_rate:
        Work units per second a speed-1 node processes. Calibrates the
        absolute time scale only; strategy comparisons are invariant.
    """

    def __init__(self, cluster: Cluster, unit_rate: float = 5e4):
        super().__init__(cluster)
        if unit_rate <= 0:
            raise ValueError("unit_rate must be positive")
        self.unit_rate = unit_rate

    def _execute_partitions(self, workload, partitions, assignment):
        out = []
        for records, node_id in zip(partitions, assignment):
            result = workload.run(records)
            node = self.cluster[node_id]
            runtime = node.runtime_for_work(result.work_units, self.unit_rate)
            out.append((result, runtime))
        return out

    def profile_all_nodes(self, workload, records):
        # Simulated runtime is work/(rate·speed): run the workload once
        # and derive every node's runtime from the same work count.
        result = workload.run(list(records))
        return [
            node.runtime_for_work(result.work_units, self.unit_rate)
            for node in self.cluster
        ]


def _pool_task(args: tuple[Workload, Sequence[Any]]) -> tuple[WorkloadResult, float]:
    workload, records = args
    t0 = time.perf_counter()
    result = workload.run(records)
    return result, time.perf_counter() - t0


def _pool_task_shm(args: tuple[Workload, PartitionRef]) -> tuple[WorkloadResult, float]:
    workload, ref = args
    # Fetch outside the timer: with the eager path the partition was
    # unpickled by the executor before _pool_task started, so measured
    # wall time covers only workload.run either way.
    records = fetch_partition(ref)
    t0 = time.perf_counter()
    result = workload.run(records)
    return result, time.perf_counter() - t0


class ProcessPoolEngine(ExecutionEngine):
    """Real parallel engine: wall time scaled by each node's speed factor.

    Partition workloads run concurrently in worker processes (capped at
    ``max_workers``); the measured wall time of each task is divided by
    the assigned node's speed factor and the per-task overhead added,
    emulating the busy-loop slowdown without burning cores on spin
    loops.

    The worker pool is **persistent**: it is created lazily on the
    first job and reused by every subsequent :meth:`run_job` /
    :meth:`profile` / :meth:`profile_all_nodes` call, so process
    fork/spawn cost is paid once per engine, not once per job. Because
    worker start-up is real wall time, the first task measured on a
    cold pool can carry import/fork noise — callers comparing measured
    runtimes should issue a throwaway :meth:`profile` first (or accept
    the first probe as warm-up). Use the engine as a context manager,
    or call :meth:`shutdown`, to release the workers deterministically;
    a garbage-collected engine tears its pool down without waiting.

    With ``use_shared_memory=True`` (the default) partitions travel
    through the :mod:`repro.cluster.dataplane` shared-memory store:
    each distinct partition is serialized once into a shared segment
    and tasks carry only a tiny :class:`PartitionRef`, so repeated
    ``run_job``/``profile`` calls over the same partitions never
    re-pickle the data. :meth:`shutdown` unlinks the segments. Set the
    flag to ``False`` to pickle partitions into every task tuple (the
    pre-data-plane behaviour).
    """

    def __init__(
        self,
        cluster: Cluster,
        max_workers: int | None = None,
        use_shared_memory: bool = True,
    ):
        super().__init__(cluster)
        self.max_workers = max_workers
        self.use_shared_memory = use_shared_memory
        self._pool: ProcessPoolExecutor | None = None
        self._store: SharedPartitionStore | None = None
        self._pools_created = 0

    @property
    def pools_created(self) -> int:
        """How many executors this engine has ever constructed.

        Stays at 1 across any number of jobs unless the pool broke (a
        worker died) or :meth:`shutdown` was followed by more work.
        """
        return self._pools_created

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pools_created += 1
        return self._pool

    def _ensure_store(self) -> SharedPartitionStore:
        if self._store is None or self._store.closed:
            self._store = SharedPartitionStore()
        return self._store

    @property
    def dataplane_stats(self) -> DataPlaneStats:
        """Counters from the shared-memory store (zeros before first use)."""
        if self._store is None:
            return DataPlaneStats()
        return self._store.stats

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker processes and unlink any shared-memory
        segments. Idempotent; the next job after a shutdown
        transparently builds a fresh pool (and store)."""
        # Detach the handles before tearing them down so a failure (or
        # a re-entrant call) can never double-release.
        pool, self._pool = getattr(self, "_pool", None), None
        store, self._store = getattr(self, "_store", None), None
        try:
            if pool is not None:
                pool.shutdown(wait=wait)
        finally:
            if store is not None:
                store.close()

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:
        # Interpreter teardown may have already dismantled the modules
        # shutdown() needs (ImportError/TypeError/AttributeError from
        # half-dead internals); a dying engine must stay silent.
        try:
            self.shutdown(wait=False)
        except BaseException:
            pass

    def _map_tasks(
        self, workload: Workload, partitions: Sequence[Sequence[Any]]
    ) -> list[tuple[WorkloadResult, float]]:
        pool = self._ensure_pool()
        workers = self.max_workers or os.cpu_count() or 1
        # Hand each worker a few tasks per round-trip: one pickle per
        # chunk instead of one per partition.
        chunksize = max(1, len(partitions) // (4 * workers))
        # Workers must see a real list either way; keeping list inputs
        # un-copied lets the store's identity cache recognise repeats.
        parts = [p if isinstance(p, list) else list(p) for p in partitions]
        if self.use_shared_memory:
            try:
                refs = self._ensure_store().put_many(parts)
            except OSError:
                # No usable shared memory on this host (e.g. /dev/shm
                # missing): fall back to eager pickling for good.
                self.use_shared_memory = False
            else:
                return self._run_map(
                    pool, _pool_task_shm, [(workload, r) for r in refs], chunksize
                )
        return self._run_map(
            pool, _pool_task, [(workload, p) for p in parts], chunksize
        )

    def _run_map(self, pool, fn, tasks, chunksize):
        try:
            return list(pool.map(fn, tasks, chunksize=chunksize))
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; discard it so
            # the next job starts clean, then surface the failure.
            self.shutdown(wait=False)
            raise

    def _execute_partitions(self, workload, partitions, assignment):
        raw = self._map_tasks(workload, partitions)
        out = []
        for (result, wall), node_id in zip(raw, assignment):
            node = self.cluster[node_id]
            runtime = node.task_overhead_s / node.speed_factor + wall / node.speed_factor
            out.append((result, runtime))
        return out

    def profile_all_nodes(self, workload, records):
        # Runtime derives from one measured wall time scaled per node —
        # run the sample once on the pool instead of once per node.
        # Passing `records` through unchanged lets repeat probes of the
        # same sample hit the data plane's identity cache.
        ((_, wall),) = self._map_tasks(workload, [records])
        return [
            node.task_overhead_s / node.speed_factor + wall / node.speed_factor
            for node in self.cluster
        ]
