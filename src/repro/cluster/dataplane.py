"""Zero-copy partition data plane for the process-pool engine.

The stock ``ProcessPoolExecutor`` path pickles every partition into the
task tuple, so each :meth:`run_job`/:meth:`profile` call pays
O(partition bytes) serialization per task — and pays it again on every
repeat of the same partitions (the profile → optimize → execute
pipeline sends the same data several times).

:class:`SharedPartitionStore` serializes each partition **once** with
pickle protocol 5, splitting out-of-band buffers (numpy arrays, big
bytes) from the pickle frame, and publishes the bytes in
``multiprocessing.shared_memory`` segments. Tasks then carry only a
:class:`PartitionRef` — segment name, offset, lengths — a few dozen
bytes regardless of partition size. Workers attach each segment once
per process (:func:`fetch_partition` keeps a module-level attachment
cache) and unpickle straight out of the mapping: the pickle frame is
read through a memoryview and out-of-band buffers stay zero-copy.

Repeats are free twice over:

- **identity cache** — a partition object already published (same
  ``id``, pinned by a strong reference so the id cannot be recycled)
  returns its existing ref without touching pickle;
- **digest cache** — a new object with byte-identical serialized form
  (blake2b over frame + buffers) reuses the published bytes.

Segments live until :meth:`SharedPartitionStore.close` (idempotent,
also registered via ``atexit`` so interpreter exit never leaks
``/dev/shm`` entries). Unlinking is safe while workers remain attached
— the kernel refcounts the mapping.

A ``cache_limit`` bounds the number of live segments: once more than
``cache_limit`` are held, the least-recently-used segments (hits and
fresh publishes both refresh recency) are unlinked and every cache
entry pointing into them dropped, so an engine streaming many distinct
jobs keeps a bounded shared-memory footprint instead of growing the
digest/identity caches without limit.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import pickle
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import repro.obs as obs
from repro.obs.log import get_logger, log_event

_log = get_logger(__name__)

__all__ = [
    "PartitionRef",
    "DataPlaneStats",
    "SharedPartitionStore",
    "fetch_partition",
]


@dataclass(frozen=True)
class PartitionRef:
    """Locator for one serialized partition inside a shared segment.

    The ref is what actually crosses the process boundary, so its
    pickled size is the per-task payload — O(1) in partition size.
    """

    segment: str
    offset: int
    frame_bytes: int
    buffer_lengths: tuple[int, ...] = ()

    @property
    def total_bytes(self) -> int:
        """Serialized partition footprint inside the segment."""
        return self.frame_bytes + sum(self.buffer_lengths)


@dataclass
class DataPlaneStats:
    """Parent-side counters for one store's lifetime."""

    refs_issued: int = 0
    serializations: int = 0
    identity_hits: int = 0
    digest_hits: int = 0
    segments_created: int = 0
    segments_evicted: int = 0
    shared_bytes: int = 0
    evicted_bytes: int = 0
    ref_bytes_total: int = 0
    bytes_referenced: int = 0

    @property
    def ref_bytes_per_task(self) -> float:
        """Mean pickled task-payload bytes — the O(1) the plane buys."""
        if self.refs_issued == 0:
            return 0.0
        return self.ref_bytes_total / self.refs_issued


class SharedPartitionStore:
    """Publishes partitions into shared memory, deduplicating repeats.

    ``cache_limit`` bounds the number of live segments; ``None`` keeps
    every segment until :meth:`close` (the pre-limit behaviour).
    """

    def __init__(self, cache_limit: int | None = None) -> None:
        if cache_limit is not None and cache_limit <= 0:
            raise ValueError("cache_limit must be positive (or None for unbounded)")
        self.cache_limit = cache_limit
        self.stats = DataPlaneStats()
        # One lock serializes publishing against eviction and close, so
        # concurrent engine callers (the job service runs several worker
        # threads over one engine) cannot corrupt the LRU/cache maps or
        # observe a segment unlinked mid-publish.
        self._lock = threading.RLock()
        # name -> segment; insertion order doubles as LRU order (oldest
        # first) — hits re-append via _touch().
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        # id(obj) -> (obj, ref); the strong reference pins the object so
        # its id cannot be recycled while the cache entry lives.
        self._by_identity: dict[int, tuple[object, PartitionRef]] = {}
        self._by_digest: dict[bytes, PartitionRef] = {}
        self._closed = False
        atexit.register(self.close)

    @property
    def live_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def _touch(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is not None:
            self._segments[name] = seg

    def _evict_over_limit(self, pinned: set[str]) -> None:
        """Unlink LRU segments beyond ``cache_limit``, dropping every
        cache entry that points into them. Segments serving the current
        call (``pinned``) are never evicted, so a single oversized
        batch can exceed the limit transiently rather than lose refs it
        is about to hand out."""
        if self.cache_limit is None:
            return
        evictable = [n for n in self._segments if n not in pinned]
        excess = len(self._segments) - self.cache_limit
        for name in evictable[:max(0, excess)]:
            seg = self._segments.pop(name)
            self._by_digest = {
                d: r for d, r in self._by_digest.items() if r.segment != name
            }
            self._by_identity = {
                i: (o, r) for i, (o, r) in self._by_identity.items() if r.segment != name
            }
            self.stats.segments_evicted += 1
            self.stats.evicted_bytes += seg.size
            log_event(
                _log, logging.DEBUG, "dataplane.segment.evicted",
                segment=name, bytes=seg.size, live=len(self._segments),
            )
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError) as exc:
                log_event(
                    _log, logging.DEBUG, "dataplane.segment.evict_failed",
                    segment=name, error=type(exc).__name__,
                )

    # -- publishing ---------------------------------------------------------

    def put_many(self, partitions: list) -> list[PartitionRef]:
        """Publish every partition, packing cache misses into one new
        segment; returns one ref per partition, in order. Thread-safe:
        concurrent publishers serialize on the store lock."""
        with self._lock:
            return self._put_many_locked(partitions)

    def _put_many_locked(self, partitions: list) -> list[PartitionRef]:
        if self._closed:
            raise RuntimeError("store is closed")
        refs: list[PartitionRef | None] = [None] * len(partitions)
        misses: list[tuple[int, object, bytes, bytes, list[memoryview]]] = []
        before = DataPlaneStats(**vars(self.stats)) if obs.enabled() else None
        for i, part in enumerate(partitions):
            cached = self._by_identity.get(id(part))
            if cached is not None and cached[0] is part:
                self.stats.identity_hits += 1
                refs[i] = cached[1]
                self._touch(cached[1].segment)
                continue
            frame, buffers = _serialize(part)
            self.stats.serializations += 1
            digest = _digest(frame, buffers)
            ref = self._by_digest.get(digest)
            if ref is not None:
                self.stats.digest_hits += 1
                self._by_identity[id(part)] = (part, ref)
                refs[i] = ref
                self._touch(ref.segment)
                continue
            misses.append((i, part, digest, frame, buffers))

        if misses:
            total = sum(
                len(frame) + sum(len(b) for b in bufs)
                for _, _, _, frame, bufs in misses
            )
            seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
            self._segments[seg.name] = seg
            self.stats.segments_created += 1
            self.stats.shared_bytes += total
            cursor = 0
            for i, part, digest, frame, buffers in misses:
                offset = cursor
                seg.buf[cursor : cursor + len(frame)] = frame
                cursor += len(frame)
                lengths = []
                for buf in buffers:
                    flat = buf.cast("B") if buf.ndim != 1 or buf.format != "B" else buf
                    seg.buf[cursor : cursor + flat.nbytes] = flat
                    cursor += flat.nbytes
                    lengths.append(flat.nbytes)
                ref = PartitionRef(
                    segment=seg.name,
                    offset=offset,
                    frame_bytes=len(frame),
                    buffer_lengths=tuple(lengths),
                )
                self._by_digest[digest] = ref
                self._by_identity[id(part)] = (part, ref)
                refs[i] = ref

        out = [r for r in refs if r is not None]
        assert len(out) == len(partitions)
        self.stats.refs_issued += len(out)
        self.stats.ref_bytes_total += sum(
            len(pickle.dumps(r, protocol=pickle.HIGHEST_PROTOCOL)) for r in out
        )
        self.stats.bytes_referenced += sum(r.total_bytes for r in out)
        self._evict_over_limit(pinned={r.segment for r in out})
        if before is not None:
            self._record_metrics(before)
        return out

    def _record_metrics(self, before: DataPlaneStats) -> None:
        """Bridge this call's stat deltas into the obs metrics registry
        (bytes copied into segments vs bytes merely referenced, cache
        hit/miss counts, segment churn)."""
        metrics = obs.get_metrics()
        after = self.stats
        deltas = {
            "repro_dataplane_refs_total": after.refs_issued - before.refs_issued,
            "repro_dataplane_serializations_total": after.serializations
            - before.serializations,
            "repro_dataplane_identity_hits_total": after.identity_hits
            - before.identity_hits,
            "repro_dataplane_digest_hits_total": after.digest_hits - before.digest_hits,
            "repro_dataplane_segments_created_total": after.segments_created
            - before.segments_created,
            "repro_dataplane_segments_evicted_total": after.segments_evicted
            - before.segments_evicted,
            "repro_dataplane_bytes_copied_total": after.shared_bytes
            - before.shared_bytes,
            "repro_dataplane_bytes_referenced_total": after.bytes_referenced
            - before.bytes_referenced,
        }
        for name, delta in deltas.items():
            if delta:
                metrics.counter(name).inc(delta)
        metrics.gauge("repro_dataplane_live_segments").set(len(self._segments))

    def put(self, partition) -> PartitionRef:
        """Publish one partition (see :meth:`put_many`)."""
        return self.put_many([partition])[0]

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def clear_cache(self) -> None:
        """Drop the identity/digest caches (published bytes remain
        readable until :meth:`close`). Unpins cached partitions."""
        with self._lock:
            self._by_identity.clear()
            self._by_digest.clear()

    def close(self) -> None:
        """Close and unlink every segment. Idempotent and exit-safe."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, {}
        self.clear_cache()
        for name, seg in segments.items():
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError) as exc:
                # Already gone (e.g. a second store raced us at exit).
                log_event(
                    _log, logging.DEBUG, "dataplane.segment.close_failed",
                    segment=name, error=type(exc).__name__,
                )

    def __enter__(self) -> "SharedPartitionStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _serialize(obj) -> tuple[bytes, list[memoryview]]:
    buffers: list[pickle.PickleBuffer] = []
    frame = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return frame, [b.raw() for b in buffers]


def _digest(frame: bytes, buffers: list[memoryview]) -> bytes:
    h = hashlib.blake2b(frame, digest_size=16)
    for buf in buffers:
        h.update(buf.cast("B") if buf.ndim != 1 or buf.format != "B" else buf)
    return h.digest()


# -- worker side ------------------------------------------------------------

#: Per-process attachment cache: each worker maps a segment once and
#: keeps it for the process lifetime (unpickled objects may hold
#: zero-copy views into the mapping, so it must not be closed early).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is None:
        # Python 3.11 registers even attachments with the resource
        # tracker. Under the fork start method (Linux, what the
        # executor uses here) workers share the parent's tracker, so
        # the attach-register is an idempotent set-add and the parent's
        # unlink() performs the one matching unregister — no extra
        # bookkeeping needed, and no tracker KeyError/leak warnings.
        seg = shared_memory.SharedMemory(name=name, create=False)
        # Per-process cache by design: pool workers are single-threaded, and a
        # duplicate attach under a theoretical race is idempotent (same
        # segment, same name).  # repro: noqa[RACE-GLOBAL]
        _ATTACHED[name] = seg
    return seg


def fetch_partition(ref: PartitionRef):
    """Reconstruct the partition a :class:`PartitionRef` points at.

    Reads the pickle frame through a memoryview and hands out-of-band
    buffers to ``pickle.loads`` as zero-copy slices of the mapping.
    """
    seg = _attach(ref.segment)
    base = ref.offset
    frame = seg.buf[base : base + ref.frame_bytes]
    cursor = base + ref.frame_bytes
    buffers: list[memoryview] = []
    for length in ref.buffer_lengths:
        buffers.append(seg.buf[cursor : cursor + length])
        cursor += length
    return pickle.loads(frame, buffers=buffers)
