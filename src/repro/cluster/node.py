"""Cluster node model: speed, cores, power and green energy per node.

Machine types follow the paper's emulation: type 1 runs no busy loops
(fastest, relative speed 4x, 4 effective cores, 440 W), down to type 4
(slowest, 1x, 1 core, 155 W).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.accounting import DirtyEnergyAccountant
from repro.energy.power import NodePowerModel
from repro.energy.traces import EnergyTrace


@dataclass(frozen=True)
class NodeType:
    """A machine class in the emulated heterogeneous cluster."""

    type_id: int
    speed_factor: float
    cores: int

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.cores <= 0:
            raise ValueError("cores must be positive")

    def power_model(self) -> NodePowerModel:
        return NodePowerModel(cores=self.cores)


#: The paper's four machine types: speeds 4x..1x, cores 4..1.
PAPER_NODE_TYPES: tuple[NodeType, ...] = tuple(
    NodeType(type_id=t, speed_factor=float(5 - t), cores=5 - t) for t in (1, 2, 3, 4)
)


@dataclass
class Node:
    """One emulated cluster node.

    Parameters
    ----------
    node_id:
        Dense id within the cluster (also the KV-store routing key).
    node_type:
        Machine class (speed + cores + power).
    trace:
        Green-energy trace of the site hosting this node.
    task_overhead_s:
        Fixed per-task startup cost at unit speed; surfaces as the
        intercept ``c_i`` the regression learns.
    """

    node_id: int
    node_type: NodeType
    trace: EnergyTrace
    task_overhead_s: float = 0.5
    allow_negative_dirty: bool = False
    accountant: DirtyEnergyAccountant = field(init=False)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.task_overhead_s < 0:
            raise ValueError("task_overhead_s must be non-negative")
        self.accountant = DirtyEnergyAccountant(
            power=self.node_type.power_model(),
            trace=self.trace,
            allow_negative=self.allow_negative_dirty,
        )

    @property
    def speed_factor(self) -> float:
        return self.node_type.speed_factor

    @property
    def watts(self) -> float:
        return self.node_type.power_model().watts

    def runtime_for_work(self, work_units: float, unit_rate: float) -> float:
        """Emulated runtime (s) to process ``work_units`` on this node.

        ``unit_rate`` is the cluster-wide work-unit throughput of a
        speed-1 machine; the busy-loop emulation divides it by the
        node's speed factor and adds the per-task overhead.
        """
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        if unit_rate <= 0:
            raise ValueError("unit_rate must be positive")
        return self.task_overhead_s / self.speed_factor + work_units / (
            unit_rate * self.speed_factor
        )

    def dirty_power_coefficient(self, window_s: float | None = None) -> float:
        """``k_i`` for the LP (see :class:`DirtyEnergyAccountant`)."""
        return self.accountant.dirty_power_coefficient(window_s)
