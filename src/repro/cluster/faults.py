"""Fault injection: node failures mid-job with recovery re-execution.

The paper's Section II motivates heterogeneity with node churn ("nodes
fail periodically and are often replaced with upgraded hardware").
:class:`FaultInjectingEngine` wraps the simulated engine and kills
chosen nodes at chosen times: a partition running on a failed node is
lost (its energy is still charged — wasted work costs real joules) and
re-executed, after a detection latency, on the surviving node that can
finish it earliest. Because the framework's partitions are independent
(Savasere phase 1, per-partition compression), recovery is exactly
re-running the lost partitions — no global restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import repro.obs as obs
from repro.cluster.cluster import Cluster
from repro.cluster.engines import JobResult, TaskResult, record_job_telemetry
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class FaultInjectingEngine:
    """Simulated engine with scheduled node failures.

    Parameters
    ----------
    cluster:
        Target cluster.
    fail_at:
        ``node_id → failure time (s)``; the node stops executing at
        that instant and never recovers within the job.
    unit_rate:
        Work units per second at speed 1 (as in the simulated engine).
    detection_latency_s:
        Delay before a lost partition can restart elsewhere.
    """

    cluster: Cluster
    fail_at: dict[int, float] = field(default_factory=dict)
    unit_rate: float = 5e4
    detection_latency_s: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_rate <= 0:
            raise ValueError("unit_rate must be positive")
        if self.detection_latency_s < 0:
            raise ValueError("detection_latency_s must be non-negative")
        for node, t in self.fail_at.items():
            if not 0 <= node < self.cluster.num_nodes:
                raise ValueError(f"unknown node {node}")
            if t < 0:
                raise ValueError("failure times must be non-negative")
        if len(self.fail_at) >= self.cluster.num_nodes:
            raise ValueError("at least one node must survive")

    def _runtime_on(self, node_id: int, work_units: float) -> float:
        return self.cluster[node_id].runtime_for_work(work_units, self.unit_rate)

    def run_job(
        self,
        workload: Workload,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int] | None = None,
    ) -> JobResult:
        """Execute with failures; lost partitions re-run on survivors."""
        p = self.cluster.num_nodes
        if assignment is None:
            assignment = [i % p for i in range(len(partitions))]
        if len(assignment) != len(partitions):
            raise ValueError("one node assignment required per partition")

        wall0 = time.time()
        job_span = obs.span(
            "engine.run_job",
            engine=type(self).__name__,
            partitions=len(partitions),
            nodes=p,
            failures=len(self.fail_at),
        )
        with job_span:
            job = self._run_job_impl(workload, partitions, assignment, p, wall0, job_span)
        return job

    def _inject_fault(self, wall0: float, node_id: int, pid: int, lost_at: float) -> None:
        """Telemetry for one lost partition (point event on the
        simulated timeline plus the ``fault.injected`` counter)."""
        if not obs.enabled():
            return
        obs.get_tracer().emit(
            "fault.injected",
            start_s=wall0 + lost_at,
            duration_s=0.0,
            node_id=node_id,
            partition_id=pid,
            lost_at_s=lost_at,
        )
        obs.get_metrics().counter("repro_fault_injected_total", node=str(node_id)).inc()
        from repro.obs.live import active_plane

        plane = active_plane()
        if plane is not None:
            plane.publish_event(
                "fault.injected", node_id=node_id, partition_id=pid, lost_at_s=lost_at
            )

    def _run_job_impl(
        self,
        workload: Workload,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int],
        p: int,
        wall0: float,
        job_span,
    ) -> JobResult:
        results: list[WorkloadResult] = [workload.run(list(part)) for part in partitions]

        clock = {node: 0.0 for node in range(p)}
        tasks: list[TaskResult] = []
        orphans: list[tuple[int, float]] = []  # (partition id, loss time)

        def charge(node_id: int, pid: int, start: float, runtime: float, result, wasted: bool):
            node = self.cluster[node_id]
            tasks.append(
                TaskResult(
                    partition_id=pid,
                    node_id=node_id,
                    start_s=start,
                    runtime_s=runtime,
                    work_units=0.0 if wasted else result.work_units,
                    dirty_energy_j=node.accountant.measured_dirty_energy(runtime, start_s=start),
                    energy_j=node.accountant.power.energy_joules(runtime),
                    output=None if wasted else result.output,
                    stats={"wasted": True} if wasted else dict(result.stats),
                )
            )

        # First pass: nominal execution until each node's failure time.
        for pid, node_id in enumerate(assignment):
            if not 0 <= node_id < p:
                raise ValueError(f"assignment references unknown node {node_id}")
            fail_time = self.fail_at.get(node_id)
            start = clock[node_id]
            if fail_time is not None and start >= fail_time:
                orphans.append((pid, fail_time))
                self._inject_fault(wall0, node_id, pid, fail_time)
                continue
            runtime = self._runtime_on(node_id, results[pid].work_units)
            if fail_time is not None and start + runtime > fail_time:
                # Partial run wasted; node burns power until it dies.
                charge(node_id, pid, start, fail_time - start, results[pid], wasted=True)
                clock[node_id] = fail_time
                orphans.append((pid, fail_time))
                self._inject_fault(wall0, node_id, pid, fail_time)
                continue
            charge(node_id, pid, start, runtime, results[pid], wasted=False)
            clock[node_id] = start + runtime

        # Recovery pass: earliest-finish-time assignment on survivors.
        survivors = [n for n in range(p) if n not in self.fail_at]
        for pid, lost_at in sorted(orphans, key=lambda o: o[1]):
            ready = lost_at + self.detection_latency_s

            def finish_time(node_id: int) -> float:
                start = max(clock[node_id], ready)
                return start + self._runtime_on(node_id, results[pid].work_units)

            best = min(survivors, key=finish_time)
            start = max(clock[best], ready)
            runtime = self._runtime_on(best, results[pid].work_units)
            charge(best, pid, start, runtime, results[pid], wasted=False)
            clock[best] = start + runtime
            if obs.enabled():
                obs.get_tracer().emit(
                    "fault.retried",
                    start_s=wall0 + start,
                    duration_s=runtime,
                    partition_id=pid,
                    node_id=best,
                    detection_latency_s=self.detection_latency_s,
                )
                obs.get_metrics().counter(
                    "repro_fault_retried_total", node=str(best)
                ).inc()

        makespan = max(
            (t.end_s for t in tasks), default=0.0
        )
        merged = workload.merge(
            [
                WorkloadResult(t.work_units, t.output, t.stats)
                for t in tasks
                if not t.stats.get("wasted")
            ]
        )
        job = JobResult(
            tasks=tasks,
            makespan_s=makespan,
            total_dirty_energy_j=sum(t.dirty_energy_j for t in tasks),
            total_energy_j=sum(t.energy_j for t in tasks),
            merged_output=merged,
        )
        if obs.enabled():
            record_job_telemetry(
                job, job_span, wall0, type(self).__name__, workload=workload.name
            )
            wasted = self.wasted_energy_j(job)
            if wasted:
                obs.get_metrics().counter(
                    "repro_fault_wasted_energy_joules_total"
                ).inc(wasted)
                from repro.obs.live import active_plane

                plane = active_plane()
                if plane is not None:
                    plane.publish_event(
                        "fault.wasted",
                        wasted_energy_j=wasted,
                        retries=len([t for t in job.tasks if t.stats.get("wasted")]),
                    )
        return job

    @staticmethod
    def wasted_energy_j(job: JobResult) -> float:
        """Energy burnt on runs that were lost to failures."""
        return sum(t.energy_j for t in job.tasks if t.stats.get("wasted"))
