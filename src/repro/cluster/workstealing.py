"""Work-stealing baseline scheduler (paper Section I).

The paper's motivation argues the "typical solution" — work stealing
(Blumofe & Leiserson) — does not suit distributed analytics because
these workloads are sensitive to the *payload*, not just the size, of
the data: a stolen chunk is processed as its own unit, so for
partition-based mining every steal effectively creates a new partition,
growing the locally-frequent candidate union and with it the global
pruning cost. Stealing also pays data-movement costs the planner-based
approach avoids.

:class:`WorkStealingScheduler` simulates chunk-level stealing over the
emulated cluster: partitions are split into fixed-size chunks, each
node drains its own queue and, when idle, steals the tail chunk of the
most-loaded victim, paying a latency plus per-item transfer cost. The
chunk outputs are merged with the workload's own ``merge``, so the
candidate-inflation effect is measured, not assumed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import repro.obs as obs
from repro.cluster.cluster import Cluster
from repro.cluster.engines import JobResult, TaskResult, record_job_telemetry
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class StealEvent:
    """One successful steal, for diagnostics."""

    time_s: float
    thief: int
    victim: int
    chunk_items: int


@dataclass
class WorkStealingScheduler:
    """Chunk-level work stealing on an emulated heterogeneous cluster.

    Parameters
    ----------
    cluster:
        Target cluster (speeds drive per-chunk runtimes).
    unit_rate:
        Work units per second at speed 1 (match the engine used for
        the planner-based comparison).
    chunk_size:
        Items per chunk; the stealing granularity.
    steal_latency_s:
        Fixed cost per steal (coordination round trip).
    transfer_s_per_item:
        Data-movement cost per stolen item, charged to the thief.
    chunk_overhead_s:
        Per-chunk dispatch cost at unit speed (much smaller than a
        partition launch — chunks run inside an already-started task).
    """

    cluster: Cluster
    unit_rate: float = 5e4
    chunk_size: int = 32
    steal_latency_s: float = 0.05
    transfer_s_per_item: float = 0.001
    chunk_overhead_s: float = 0.005
    events: list[StealEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.unit_rate <= 0:
            raise ValueError("unit_rate must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.steal_latency_s < 0 or self.transfer_s_per_item < 0:
            raise ValueError("costs must be non-negative")

    def _chunks(self, partition: Sequence[Any]) -> list[list[Any]]:
        return [
            list(partition[i : i + self.chunk_size])
            for i in range(0, len(partition), self.chunk_size)
        ]

    def run_job(
        self,
        workload: Workload,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int] | None = None,
    ) -> JobResult:
        """Execute with stealing; returns the same JobResult shape as
        the planner-based engines, so comparisons are one-liners."""
        p = self.cluster.num_nodes
        if assignment is None:
            assignment = [i % p for i in range(len(partitions))]
        if len(assignment) != len(partitions):
            raise ValueError("one node assignment required per partition")

        queues: list[list[list[Any]]] = [[] for _ in range(p)]
        for part, node in zip(partitions, assignment):
            if not 0 <= node < p:
                raise ValueError(f"assignment references unknown node {node}")
            queues[node].extend(self._chunks(part))

        self.events = []
        wall0 = time.time()
        job_span = obs.span(
            "engine.run_job",
            engine=type(self).__name__,
            partitions=len(partitions),
            nodes=p,
            chunk_size=self.chunk_size,
        )
        with job_span:
            return self._run_job_impl(workload, queues, p, wall0, job_span)

    def _run_job_impl(
        self,
        workload: Workload,
        queues: list[list[list[Any]]],
        p: int,
        wall0: float,
        job_span,
    ) -> JobResult:
        # Event-driven greedy simulation: a heap of (ready_time, node).
        clock = [0.0] * p
        heap = [(0.0, node) for node in range(p)]
        heapq.heapify(heap)
        tasks: list[TaskResult] = []
        partials: list[WorkloadResult] = []
        pid = 0

        def remaining_items(node: int) -> int:
            return sum(len(c) for c in queues[node])

        while heap:
            now, node = heapq.heappop(heap)
            chunk: list[Any] | None = None
            overhead = 0.0
            if queues[node]:
                chunk = queues[node].pop(0)
            else:
                victim = max(range(p), key=remaining_items)
                if remaining_items(victim) == 0:
                    continue  # global queue drained; this node retires
                chunk = queues[victim].pop()  # steal the tail chunk
                overhead = self.steal_latency_s + self.transfer_s_per_item * len(chunk)
                self.events.append(
                    StealEvent(time_s=now, thief=node, victim=victim, chunk_items=len(chunk))
                )
                if obs.enabled():
                    obs.get_tracer().emit(
                        "worksteal.steal",
                        start_s=wall0 + now,
                        duration_s=overhead,
                        thief=node,
                        victim=victim,
                        chunk_items=len(chunk),
                    )
                    metrics = obs.get_metrics()
                    metrics.counter(
                        "repro_worksteal_steals_total", thief=str(node)
                    ).inc()
                    metrics.counter("repro_worksteal_items_stolen_total").inc(
                        len(chunk)
                    )
                    from repro.obs.live import active_plane

                    plane = active_plane()
                    if plane is not None:
                        plane.publish_event(
                            "worksteal.steal",
                            thief=node,
                            victim=victim,
                            chunk_items=len(chunk),
                        )
            result = workload.run(chunk)
            node_obj = self.cluster[node]
            speed = node_obj.speed_factor
            runtime = (
                overhead
                + self.chunk_overhead_s / speed
                + result.work_units / (self.unit_rate * speed)
            )
            start = now
            dirty = node_obj.accountant.measured_dirty_energy(runtime, start_s=start)
            energy = node_obj.accountant.power.energy_joules(runtime)
            tasks.append(
                TaskResult(
                    partition_id=pid,
                    node_id=node,
                    start_s=start,
                    runtime_s=runtime,
                    work_units=result.work_units,
                    dirty_energy_j=dirty,
                    energy_j=energy,
                    output=result.output,
                    stats=result.stats,
                )
            )
            partials.append(result)
            pid += 1
            clock[node] = now + runtime
            heapq.heappush(heap, (clock[node], node))

        makespan = max(clock) if tasks else 0.0
        merged = workload.merge(partials)
        job = JobResult(
            tasks=tasks,
            makespan_s=makespan,
            total_dirty_energy_j=sum(t.dirty_energy_j for t in tasks),
            total_energy_j=sum(t.energy_j for t in tasks),
            merged_output=merged,
        )
        if obs.enabled():
            record_job_telemetry(
                job, job_span, wall0, type(self).__name__, workload=workload.name
            )
            job_span.set_attr("steals", len(self.events))
        return job

    @property
    def num_steals(self) -> int:
        return len(self.events)
