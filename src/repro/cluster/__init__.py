"""Emulated heterogeneous cluster substrate.

The paper injects heterogeneity into a homogeneous Xeon cluster with
busy loops (relative speeds x, 2x, 3x, 4x) and assigns each machine type
a PVWATTS energy trace from one of four Google data-center sites. This
subpackage reproduces that environment in-process:

- :class:`~repro.cluster.node.Node` — speed factor, core count, power
  model and green-energy accountant per node;
- :func:`~repro.cluster.cluster.paper_cluster` — the 4-type preset;
- execution engines that run partitioned workloads either in
  deterministic simulated time (work units ÷ speed) or on a real
  process pool with wall-clock scaling;
- a global barrier built on the KV store's fetch-and-increment, as in
  the paper's middleware.
"""

from repro.cluster.node import Node, NodeType, PAPER_NODE_TYPES
from repro.cluster.cluster import Cluster, paper_cluster, homogeneous_cluster
from repro.cluster.engines import (
    ExecutionEngine,
    SimulatedEngine,
    ProcessPoolEngine,
    JobResult,
    TaskResult,
)
from repro.cluster.barrier import KVBarrier
from repro.cluster.workstealing import WorkStealingScheduler, StealEvent
from repro.cluster.faults import FaultInjectingEngine
from repro.cluster.scenarios import (
    SCENARIOS,
    geo_distributed_cluster,
    iswitch_cluster,
    rack_level_cluster,
)

__all__ = [
    "WorkStealingScheduler",
    "StealEvent",
    "FaultInjectingEngine",
    "SCENARIOS",
    "geo_distributed_cluster",
    "iswitch_cluster",
    "rack_level_cluster",
    "Node",
    "NodeType",
    "PAPER_NODE_TYPES",
    "Cluster",
    "paper_cluster",
    "homogeneous_cluster",
    "ExecutionEngine",
    "SimulatedEngine",
    "ProcessPoolEngine",
    "JobResult",
    "TaskResult",
    "KVBarrier",
]
