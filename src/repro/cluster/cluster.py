"""Cluster assembly and the paper's 4-type preset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.cluster.node import Node, NodeType, PAPER_NODE_TYPES
from repro.energy.traces import GOOGLE_DC_LOCATIONS, generate_trace
from repro.kvstore.client import ClusterClient


@dataclass
class Cluster:
    """An ordered collection of nodes plus their shared KV middleware."""

    nodes: list[Node]
    kv: ClusterClient = field(init=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if ids != list(range(len(self.nodes))):
            raise ValueError("node ids must be dense 0..p-1 in order")
        self.kv = ClusterClient(num_nodes=len(self.nodes))

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, idx: int) -> Node:
        return self.nodes[idx]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def speed_factors(self) -> np.ndarray:
        return np.array([n.speed_factor for n in self.nodes], dtype=np.float64)

    def dirty_power_coefficients(self, window_s: float | None = None) -> np.ndarray:
        return np.array(
            [n.dirty_power_coefficient(window_s) for n in self.nodes], dtype=np.float64
        )

    def fastest_node(self) -> Node:
        """The node the paper would pick as master (type 1 first)."""
        return max(self.nodes, key=lambda n: (n.speed_factor, -n.node_id))

    def master_nodes(self) -> tuple[Node, Node]:
        """Two distinct coordinator nodes (barrier master + clustering
        master), fastest types first, per the paper's Section IV."""
        if len(self.nodes) == 1:
            return self.nodes[0], self.nodes[0]
        ranked = sorted(self.nodes, key=lambda n: (-n.speed_factor, n.node_id))
        return ranked[0], ranked[1]


def paper_cluster(
    num_nodes: int,
    *,
    trace_duration_s: float = 6 * 3600.0,
    trace_resolution_s: float = 60.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
    node_types: Sequence[NodeType] = PAPER_NODE_TYPES,
    allow_negative_dirty: bool = False,
) -> Cluster:
    """Build the paper's emulated heterogeneous cluster.

    Nodes cycle through the four machine types (speeds 4x..1x) and the
    four Google DC locations, so an 8-node cluster has two of each type
    as in the paper's 8-partition configuration. Each node gets an
    independent seeded weather realisation.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    nodes = []
    for i in range(num_nodes):
        ntype = node_types[i % len(node_types)]
        location = GOOGLE_DC_LOCATIONS[i % len(GOOGLE_DC_LOCATIONS)]
        trace = generate_trace(
            location,
            duration_s=trace_duration_s,
            resolution_s=trace_resolution_s,
            seed=seed * 1009 + i,
        )
        nodes.append(
            Node(
                node_id=i,
                node_type=ntype,
                trace=trace,
                task_overhead_s=task_overhead_s,
                allow_negative_dirty=allow_negative_dirty,
            )
        )
    return Cluster(nodes=nodes)


def homogeneous_cluster(
    num_nodes: int,
    *,
    speed_factor: float = 1.0,
    cores: int = 2,
    trace_duration_s: float = 6 * 3600.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
) -> Cluster:
    """A control cluster with identical nodes (Wang et al.'s setting)."""
    ntype = NodeType(type_id=0, speed_factor=speed_factor, cores=cores)
    location = GOOGLE_DC_LOCATIONS[0]
    nodes = [
        Node(
            node_id=i,
            node_type=ntype,
            trace=generate_trace(
                location, duration_s=trace_duration_s, resolution_s=60.0, seed=seed * 1009 + i
            ),
            task_overhead_s=task_overhead_s,
        )
        for i in range(num_nodes)
    ]
    return Cluster(nodes=nodes)
