"""Data-center renewable-design scenarios (paper Section II).

The paper motivates energy heterogeneity with three contemporary
designs; each maps to a cluster preset here so their Pareto frontiers
can be compared:

1. **Rack-level renewables** (Deng, Stewart & Li) — grid ties and solar
   supplies sit at rack/server level, so otherwise-identical nodes see
   *different panel sizes*.
2. **iSwitch** (Li, Qouneh & Li) — some racks are fully green-powered,
   some fully grid-tied; jobs should prefer the green racks.
3. **Geo-distributed** (Zhang, Wang & Wang) — nodes live in different
   regions with different weather; this is the default
   :func:`~repro.cluster.cluster.paper_cluster` preset.

All presets keep the paper's 4-type speed/power mix so the *computational*
heterogeneity is identical — only the green-supply structure differs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster, paper_cluster
from repro.cluster.node import PAPER_NODE_TYPES, Node
from repro.energy.solar import SolarPanel
from repro.energy.traces import GOOGLE_DC_LOCATIONS, EnergyTrace, generate_trace


def rack_level_cluster(
    num_nodes: int,
    *,
    panel_watts: tuple[float, ...] = (800.0, 400.0, 200.0, 0.0),
    trace_duration_s: float = 6 * 3600.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
) -> Cluster:
    """Rack-level renewables: one site, per-rack panel capacity.

    Node ``i`` gets panel ``panel_watts[i % len(panel_watts)]`` (0 W =
    a purely grid-tied rack). All nodes share one location/weather, so
    energy heterogeneity comes purely from provisioning.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    location = GOOGLE_DC_LOCATIONS[1]
    nodes = []
    for i in range(num_nodes):
        watts = panel_watts[i % len(panel_watts)]
        if watts > 0:
            trace = generate_trace(
                location,
                duration_s=trace_duration_s,
                resolution_s=60.0,
                panel=SolarPanel(rated_dc_watts=watts),
                seed=seed * 1009,  # one shared weather realisation
            )
        else:
            trace = EnergyTrace(
                watts=np.zeros(int(trace_duration_s / 60.0)), resolution_s=60.0
            )
        nodes.append(
            Node(
                node_id=i,
                node_type=PAPER_NODE_TYPES[i % len(PAPER_NODE_TYPES)],
                trace=trace,
                task_overhead_s=task_overhead_s,
            )
        )
    return Cluster(nodes=nodes)


def iswitch_cluster(
    num_nodes: int,
    *,
    green_fraction: float = 0.5,
    trace_duration_s: float = 6 * 3600.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
) -> Cluster:
    """iSwitch: racks are either fully green or fully grid-tied.

    The first ``round(green_fraction · num_nodes)`` nodes get a panel
    large enough to cover their peak draw under typical daylight; the
    rest get none.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not 0.0 <= green_fraction <= 1.0:
        raise ValueError("green_fraction must be in [0, 1]")
    num_green = int(round(green_fraction * num_nodes))
    location = GOOGLE_DC_LOCATIONS[3]  # the sunniest preset
    nodes = []
    for i in range(num_nodes):
        ntype = PAPER_NODE_TYPES[i % len(PAPER_NODE_TYPES)]
        if i < num_green:
            # Panel sized ~3x the node's draw: covers it through clouds.
            panel = SolarPanel(rated_dc_watts=3.0 * ntype.power_model().watts)
            trace = generate_trace(
                location,
                duration_s=trace_duration_s,
                resolution_s=60.0,
                panel=panel,
                seed=seed * 1009 + i,
            )
        else:
            trace = EnergyTrace(
                watts=np.zeros(int(trace_duration_s / 60.0)), resolution_s=60.0
            )
        nodes.append(
            Node(
                node_id=i,
                node_type=ntype,
                trace=trace,
                task_overhead_s=task_overhead_s,
            )
        )
    return Cluster(nodes=nodes)


def geo_distributed_cluster(num_nodes: int, *, seed: int = 0, **kwargs) -> Cluster:
    """Geo-distributed sites (the paper's evaluation setup)."""
    return paper_cluster(num_nodes, seed=seed, **kwargs)


def spread_cluster(
    num_nodes: int,
    max_speed_ratio: float,
    *,
    trace_duration_s: float = 6 * 3600.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
) -> Cluster:
    """A cluster whose speeds span ``1x .. max_speed_ratio·x``.

    Four machine classes with geometrically spaced speeds (ratio 1 ⇒
    homogeneous), cores scaled to keep power ∝ speed class as in the
    paper's preset. For studying how the Het-Aware gain grows with the
    degree of computational heterogeneity (EC2's reported 2x variation
    up to the paper's 4x emulation and beyond).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if max_speed_ratio < 1.0:
        raise ValueError("max_speed_ratio must be >= 1")
    from repro.cluster.node import NodeType

    speeds = [max_speed_ratio ** (i / 3.0) for i in (3, 2, 1, 0)]
    types = [
        NodeType(type_id=i + 1, speed_factor=s, cores=max(1, round(s)))
        for i, s in enumerate(speeds)
    ]
    nodes = []
    for i in range(num_nodes):
        location = GOOGLE_DC_LOCATIONS[i % len(GOOGLE_DC_LOCATIONS)]
        nodes.append(
            Node(
                node_id=i,
                node_type=types[i % len(types)],
                trace=generate_trace(
                    location,
                    duration_s=trace_duration_s,
                    resolution_s=60.0,
                    seed=seed * 1009 + i,
                ),
                task_overhead_s=task_overhead_s,
            )
        )
    return Cluster(nodes=nodes)


def cluster_at_hour(
    num_nodes: int,
    start_hour: float,
    *,
    trace_duration_s: float = 6 * 3600.0,
    seed: int = 0,
    task_overhead_s: float = 0.5,
) -> Cluster:
    """The geo-distributed preset with every trace starting at a chosen
    local solar hour — for time-of-day scheduling studies."""
    if not 0.0 <= start_hour < 24.0:
        raise ValueError("start_hour must be in [0, 24)")
    cluster = paper_cluster(
        num_nodes,
        trace_duration_s=trace_duration_s,
        seed=seed,
        task_overhead_s=task_overhead_s,
    )
    for i, node in enumerate(cluster.nodes):
        location = GOOGLE_DC_LOCATIONS[i % len(GOOGLE_DC_LOCATIONS)]
        node.trace = generate_trace(
            location,
            duration_s=trace_duration_s,
            start_hour=start_hour,
            resolution_s=60.0,
            seed=seed * 1009 + i,
        )
        node.accountant.trace = node.trace
    return cluster


SCENARIOS = {
    "rack-level": rack_level_cluster,
    "iswitch": iswitch_cluster,
    "geo-distributed": geo_distributed_cluster,
}
