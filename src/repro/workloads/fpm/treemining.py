"""Frequent tree mining via LCA-pivot itemsets.

The paper runs Tatikonda & Parthasarathy's frequent tree miner. Its
stratifier already reduces each tree to a set of LCA-label pivots
(Section III-C step 1); mining frequent *pivot sets* preserves the cost
structure the partitioning framework targets — the candidate space
blows up exactly when a partition concentrates structurally similar
trees — while staying domain independent. Records are
``(parent_array, labels)`` pairs; the workload converts them to pivot
sets (charging work for the conversion, which scans every node) and
then runs Apriori over the pivot transactions.
"""

from __future__ import annotations

from typing import Sequence

from repro.stratify.pivots import tree_pivots
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fpm.apriori import AprioriMiner


def trees_to_pivot_sets(records: Sequence) -> tuple[list[list[int]], float]:
    """Convert ``(parent, labels)`` records to sorted pivot lists.

    Returns the pivot transactions and the conversion work (total node
    count — each node is touched a constant number of times by Prüfer
    encoding and LCA walks).
    """
    transactions: list[list[int]] = []
    work = 0.0
    for parent, labels in records:
        transactions.append(sorted(tree_pivots(parent, labels)))
        work += len(parent)
    return transactions, work


class TreeMiningWorkload(Workload):
    """Per-partition frequent tree (pivot-set) mining."""

    name = "tree-mining"

    def __init__(self, min_support: float, max_len: int | None = 3):
        self.miner = AprioriMiner(min_support=min_support, max_len=max_len)

    @property
    def min_support(self) -> float:
        return self.miner.min_support

    def run(self, records: Sequence) -> WorkloadResult:
        transactions, convert_work = trees_to_pivot_sets(records)
        out = self.miner.mine(transactions)
        return WorkloadResult(
            work_units=convert_work + out.work_units,
            output=out,
            stats={
                "patterns": len(out.counts),
                "candidates": out.candidates_generated,
                "trees": len(records),
            },
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> set:
        union: set = set()
        for p in partials:
            union.update(p.output.patterns())
        return union
