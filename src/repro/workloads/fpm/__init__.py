"""Frequent pattern mining workloads (compute-intensive, skew-sensitive).

Implements the paper's FPM stack: Apriori (Agrawal & Srikant) as the
local miner, Savasere et al.'s partition-based distributed algorithm
(local mining + global false-positive pruning scan), the frequent tree
mining variant over LCA-pivot sets, and Eclat as an alternative
vertical-layout backend (extension).
"""

from repro.workloads.fpm.apriori import AprioriMiner, AprioriWorkload, CandidateCountWorkload
from repro.workloads.fpm.savasere import SavasereJob, DistributedMiningResult
from repro.workloads.fpm.treemining import TreeMiningWorkload, trees_to_pivot_sets
from repro.workloads.fpm.eclat import EclatMiner, EclatWorkload
from repro.workloads.fpm.fpgrowth import FPGrowthMiner, FPGrowthWorkload

__all__ = [
    "FPGrowthMiner",
    "FPGrowthWorkload",
    "AprioriMiner",
    "AprioriWorkload",
    "CandidateCountWorkload",
    "SavasereJob",
    "DistributedMiningResult",
    "TreeMiningWorkload",
    "trees_to_pivot_sets",
    "EclatMiner",
    "EclatWorkload",
]
