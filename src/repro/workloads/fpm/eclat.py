"""Eclat vertical frequent itemset mining (Zaki et al., KDD 1997).

Extension backend (cited by the paper as [21]): mines the same frequent
itemsets as Apriori but via depth-first tidlist intersection in the
vertical layout. Used as an ablation to show the partitioning framework
is miner-agnostic — work units count tidlist intersection elements, the
vertical analog of candidate–transaction checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fpm.apriori import MiningOutput, Pattern


@dataclass
class EclatMiner:
    """Configured Eclat miner (equivalent output to :class:`AprioriMiner`)."""

    min_support: float
    max_len: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError("max_len must be >= 1")

    def mine(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Mine all frequent itemsets via DFS tidlist intersection."""
        tx = [set(t) for t in transactions]
        n = len(tx)
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))

        tidlists: dict[int, frozenset[int]] = {}
        work = 0.0
        for tid, t in enumerate(tx):
            work += len(t)
            for item in t:
                tidlists.setdefault(item, set()).add(tid)  # type: ignore[arg-type]
        tidlists = {i: frozenset(s) for i, s in tidlists.items()}

        frequent_items = sorted(i for i, s in tidlists.items() if len(s) >= min_count)
        result: dict[Pattern, int] = {(i,): len(tidlists[i]) for i in frequent_items}
        candidates = len(tidlists)

        stack: list[tuple[Pattern, frozenset[int], list[int]]] = [
            ((i,), tidlists[i], frequent_items[idx + 1 :])
            for idx, i in enumerate(frequent_items)
        ]
        while stack:
            prefix, tids, extensions = stack.pop()
            if self.max_len is not None and len(prefix) >= self.max_len:
                continue
            survivors: list[tuple[int, frozenset[int]]] = []
            for ext in extensions:
                candidates += 1
                inter = tids & tidlists[ext]
                work += min(len(tids), len(tidlists[ext]))
                if len(inter) >= min_count:
                    survivors.append((ext, inter))
            items_only = [e for e, _ in survivors]
            for pos, (ext, inter) in enumerate(survivors):
                pattern = prefix + (ext,)
                result[pattern] = len(inter)
                stack.append((pattern, inter, items_only[pos + 1 :]))

        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=candidates,
            work_units=work,
        )


class EclatWorkload(Workload):
    """Per-partition Eclat mining — drop-in for :class:`AprioriWorkload`."""

    name = "eclat-local"

    def __init__(self, min_support: float, max_len: int | None = None):
        self.miner = EclatMiner(min_support=min_support, max_len=max_len)

    @property
    def min_support(self) -> float:
        return self.miner.min_support

    def run(self, records: Sequence[Iterable[int]]) -> WorkloadResult:
        out = self.miner.mine(records)
        return WorkloadResult(
            work_units=out.work_units,
            output=out,
            stats={"patterns": len(out.counts), "candidates": out.candidates_generated},
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> set[Pattern]:
        union: set[Pattern] = set()
        for p in partials:
            union.update(p.output.patterns())
        return union
