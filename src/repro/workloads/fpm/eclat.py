"""Eclat vertical frequent itemset mining (Zaki et al., KDD 1997).

Extension backend (cited by the paper as [21]): mines the same frequent
itemsets as Apriori but via depth-first tidlist intersection in the
vertical layout. Used as an ablation to show the partitioning framework
is miner-agnostic — work units count tidlist intersection elements, the
vertical analog of candidate–transaction checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.perf.fpm_kernels import intersect_supports, pack_transactions
from repro.perf import autotune
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fpm.apriori import MiningOutput, Pattern


@dataclass
class EclatMiner:
    """Configured Eclat miner (equivalent output to :class:`AprioriMiner`).

    The bitmap tiers (``"numpy"``/``"bitmap"``, ``"native"``) keep
    tidlists as packed uint64 bitmaps and batch every DFS node's
    extension intersections — one ``np.bitwise_and`` + popcount, or the
    compiled word loop; ``kernel="reference"`` is the original
    frozenset DFS. ``"auto"`` (default) dispatches on input shape.
    Traversal order, candidate counts and work units are identical.
    """

    min_support: float
    max_len: int | None = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError("max_len must be >= 1")
        autotune.validate_kernel(self.kernel, "fpm")

    def mine(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Mine all frequent itemsets via DFS tidlist intersection."""
        tier = autotune.resolve_tier(
            self.kernel, kind="fpm", work=len(transactions)
        )
        if tier == "reference":
            return self.mine_reference(transactions)
        return self._mine_bitmap(transactions, tier)

    def _mine_bitmap(
        self, transactions: Sequence[Iterable[int]], tier: str = "numpy"
    ) -> MiningOutput:
        if tier == "native":
            from repro.perf.native.fpm_njit import intersect_supports_native

            intersect_fn = intersect_supports_native
        else:
            intersect_fn = intersect_supports
        bitmap = pack_transactions(transactions)
        n = bitmap.num_transactions
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))

        work = float(bitmap.total_occurrences)
        candidates = bitmap.num_items
        item_support = {
            int(i): int(c) for i, c in zip(bitmap.items, bitmap.supports)
        }
        item_row = {int(i): r for r, i in enumerate(bitmap.items)}

        frequent_items = sorted(i for i, c in item_support.items() if c >= min_count)
        result: dict[Pattern, int] = {(i,): item_support[i] for i in frequent_items}

        # Stack entries mirror the reference exactly: (prefix, prefix
        # tidlist as a bitmap row, its support, candidate extensions).
        stack: list[tuple[Pattern, np.ndarray, int, list[int]]] = [
            ((i,), bitmap.bits[item_row[i]], item_support[i], frequent_items[idx + 1 :])
            for idx, i in enumerate(frequent_items)
        ]
        while stack:
            prefix, tids, tids_support, extensions = stack.pop()
            if self.max_len is not None and len(prefix) >= self.max_len:
                continue
            if not extensions:
                continue
            candidates += len(extensions)
            ext_rows = np.array([item_row[e] for e in extensions], dtype=np.int64)
            inter, counts = intersect_fn(tids, ext_rows, bitmap)
            work += float(
                sum(min(tids_support, item_support[e]) for e in extensions)
            )
            survivors = [
                (ext, inter[pos], int(counts[pos]))
                for pos, ext in enumerate(extensions)
                if counts[pos] >= min_count
            ]
            items_only = [e for e, _, _ in survivors]
            for pos, (ext, bits, support) in enumerate(survivors):
                pattern = prefix + (ext,)
                result[pattern] = support
                stack.append((pattern, bits, support, items_only[pos + 1 :]))

        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=candidates,
            work_units=work,
        )

    def mine_reference(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Frozenset-tidlist DFS — the bitmap kernel's oracle."""
        tx = [set(t) for t in transactions]
        n = len(tx)
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))

        tidlists: dict[int, frozenset[int]] = {}
        work = 0.0
        for tid, t in enumerate(tx):
            work += len(t)
            for item in t:
                tidlists.setdefault(item, set()).add(tid)  # type: ignore[arg-type]
        tidlists = {i: frozenset(s) for i, s in tidlists.items()}

        frequent_items = sorted(i for i, s in tidlists.items() if len(s) >= min_count)
        result: dict[Pattern, int] = {(i,): len(tidlists[i]) for i in frequent_items}
        candidates = len(tidlists)

        stack: list[tuple[Pattern, frozenset[int], list[int]]] = [
            ((i,), tidlists[i], frequent_items[idx + 1 :])
            for idx, i in enumerate(frequent_items)
        ]
        while stack:
            prefix, tids, extensions = stack.pop()
            if self.max_len is not None and len(prefix) >= self.max_len:
                continue
            survivors: list[tuple[int, frozenset[int]]] = []
            for ext in extensions:
                candidates += 1
                inter = tids & tidlists[ext]
                work += min(len(tids), len(tidlists[ext]))
                if len(inter) >= min_count:
                    survivors.append((ext, inter))
            items_only = [e for e, _ in survivors]
            for pos, (ext, inter) in enumerate(survivors):
                pattern = prefix + (ext,)
                result[pattern] = len(inter)
                stack.append((pattern, inter, items_only[pos + 1 :]))

        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=candidates,
            work_units=work,
        )


class EclatWorkload(Workload):
    """Per-partition Eclat mining — drop-in for :class:`AprioriWorkload`."""

    name = "eclat-local"

    def __init__(
        self, min_support: float, max_len: int | None = None, kernel: str = "auto"
    ):
        self.miner = EclatMiner(min_support=min_support, max_len=max_len, kernel=kernel)

    @property
    def min_support(self) -> float:
        return self.miner.min_support

    def run(self, records: Sequence[Iterable[int]]) -> WorkloadResult:
        out = self.miner.mine(records)
        return WorkloadResult(
            work_units=out.work_units,
            output=out,
            stats={"patterns": len(out.counts), "candidates": out.candidates_generated},
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> set[Pattern]:
        union: set[Pattern] = set()
        for p in partials:
            union.update(p.output.patterns())
        return union
