"""Partition-based distributed frequent pattern mining (Savasere et al.).

Two phases, each a distributed job separated by a global barrier:

1. **Local mining** — every partition mines its locally frequent
   patterns at the global (relative) support. Any globally frequent
   pattern is locally frequent in at least one partition, so the union
   of phase-1 outputs is a complete candidate set.
2. **Global pruning** — every partition counts the candidate union over
   its own records; summed counts against the global threshold remove
   the false positives.

The false-positive count (|candidate union| − |globally frequent|) is
the skew indicator the paper highlights: representative (stratified)
partitions produce few false positives, skewed partitions many — and
phase 2's cost is proportional to the candidate count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.cluster.engines import ExecutionEngine, JobResult
from repro.workloads.fpm.apriori import (
    AprioriWorkload,
    CandidateCountWorkload,
    Pattern,
)


@dataclass
class DistributedMiningResult:
    """Outcome of the two-phase distributed mining job."""

    frequent: dict[Pattern, int]
    candidates: set[Pattern]
    local_job: JobResult
    count_job: JobResult

    @property
    def makespan_s(self) -> float:
        """Total job time: the two phases are barrier-separated."""
        return self.local_job.makespan_s + self.count_job.makespan_s

    @property
    def total_dirty_energy_j(self) -> float:
        return self.local_job.total_dirty_energy_j + self.count_job.total_dirty_energy_j

    @property
    def total_energy_j(self) -> float:
        return self.local_job.total_energy_j + self.count_job.total_energy_j

    @property
    def false_positives(self) -> int:
        return len(self.candidates) - len(self.frequent)


@dataclass
class SavasereJob:
    """Coordinator for the two-phase algorithm on a given engine."""

    engine: ExecutionEngine
    min_support: float
    max_len: int | None = None
    #: Kernel for both phases: ``"auto"`` (shape-dispatched), a bitmap
    #: tier (``"numpy"``/``"bitmap"``, ``"native"``) or ``"reference"``
    #: — outputs are bit-identical whichever tier runs.
    kernel: str = "auto"

    def run(
        self,
        partitions: Sequence[Sequence[Any]],
        assignment: Sequence[int] | None = None,
    ) -> DistributedMiningResult:
        """Run both phases over the given partition layout."""
        total = sum(len(p) for p in partitions)
        if total == 0:
            raise ValueError("cannot mine an empty dataset")

        local = AprioriWorkload(
            min_support=self.min_support, max_len=self.max_len, kernel=self.kernel
        )
        local_job = self.engine.run_job(local, partitions, assignment)
        candidates: set[Pattern] = local_job.merged_output

        counter = CandidateCountWorkload(
            candidates=sorted(candidates),
            min_support=self.min_support,
            total_transactions=total,
            kernel=self.kernel,
        )
        # The global scan starts after the phase-1 barrier, so its energy
        # is billed against the later trace window.
        count_job = self.engine.run_job(
            counter, partitions, assignment, start_offset_s=local_job.makespan_s
        )
        frequent: dict[Pattern, int] = count_job.merged_output

        return DistributedMiningResult(
            frequent=frequent,
            candidates=candidates,
            local_job=local_job,
            count_job=count_job,
        )
