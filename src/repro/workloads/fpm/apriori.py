"""Apriori frequent itemset mining (Agrawal & Srikant, VLDB 1994).

The levelwise algorithm: frequent 1-itemsets, then repeatedly join
``F_{k-1}`` with itself, prune candidates with an infrequent subset, and
count survivors against the transactions. The *work-unit* metric counts
candidate–transaction containment checks — exactly the search-space
measure the paper identifies ("the total number of candidate patterns
represents the search space – the more the number of candidate
patterns, the slower the run time"), which is what statistical skew
inflates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.perf.fpm_kernels import (
    candidate_supports,
    pack_transactions,
    pattern_supports,
)
from repro.perf import autotune
from repro.workloads.base import Workload, WorkloadResult

Pattern = tuple[int, ...]


@dataclass
class MiningOutput:
    """Local mining result: pattern → absolute support count."""

    counts: dict[Pattern, int]
    num_transactions: int
    candidates_generated: int
    work_units: float

    def patterns(self) -> set[Pattern]:
        return set(self.counts)


@dataclass
class AprioriMiner:
    """Configured Apriori miner.

    Parameters
    ----------
    min_support:
        Relative support threshold in (0, 1].
    max_len:
        Optional cap on pattern length (None = unbounded).
    kernel:
        Counting tier: ``"auto"`` (shape-dispatched, the default),
        ``"numpy"`` (alias ``"bitmap"``) counts candidates on the
        packed vertical bitmaps of :mod:`repro.perf.fpm_kernels`,
        ``"native"`` on the compiled popcount loops, ``"reference"``
        runs the original per-transaction containment scan. Outputs
        (supports, candidate counts, work units) are bit-identical.
    """

    min_support: float
    max_len: int | None = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError("max_len must be >= 1")
        autotune.validate_kernel(self.kernel, "fpm")

    def mine(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Mine all frequent itemsets of ``transactions``."""
        tier = autotune.resolve_tier(
            self.kernel, kind="fpm", work=len(transactions)
        )
        if tier == "reference":
            return self.mine_reference(transactions)
        return self._mine_bitmap(transactions, tier)

    def _mine_bitmap(
        self, transactions: Sequence[Iterable[int]], tier: str = "numpy"
    ) -> MiningOutput:
        """Levelwise mining over the packed vertical bitmap.

        Identical candidate generation (the shared
        :meth:`_generate_candidates`), identical accounting: level 1
        charges Σ distinct items per transaction, level ``k`` charges
        ``n_tx`` checks per candidate — exactly what the reference scan
        performs — so work units match to the digit.
        """
        if tier == "native":
            from repro.perf.native.fpm_njit import candidate_supports_native

            supports_fn = candidate_supports_native
        else:
            supports_fn = candidate_supports
        bitmap = pack_transactions(transactions)
        n = bitmap.num_transactions
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))  # ceil

        work = float(bitmap.total_occurrences)
        candidates_total = bitmap.num_items

        frequent: dict[Pattern, int] = {
            (int(item),): int(c)
            for item, c in zip(bitmap.items, bitmap.supports)
            if c >= min_count
        }
        result = dict(frequent)

        k = 2
        current = sorted(frequent)
        while current and (self.max_len is None or k <= self.max_len):
            candidates = self._generate_candidates(current, k)
            candidates_total += len(candidates)
            if not candidates:
                break
            work += float(n * len(candidates))
            rows = bitmap.rows_for(np.asarray(candidates, dtype=np.int64))
            supports = supports_fn(bitmap, rows)
            survivors = [
                (cand, int(c))
                for cand, c in zip(candidates, supports)
                if c >= min_count
            ]
            current = sorted(c for c, _ in survivors)
            for cand, c in survivors:
                result[cand] = c
            k += 1

        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=candidates_total,
            work_units=work,
        )

    def mine_reference(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Per-transaction containment scan — the bitmap kernel's oracle."""
        tx = [frozenset(t) for t in transactions]
        n = len(tx)
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))  # ceil

        work = 0.0
        candidates_total = 0

        # Level 1: single scan.
        item_counts: dict[int, int] = defaultdict(int)
        for t in tx:
            work += len(t)
            for item in t:
                item_counts[item] += 1
        frequent: dict[Pattern, int] = {
            (item,): c for item, c in item_counts.items() if c >= min_count
        }
        candidates_total += len(item_counts)
        result = dict(frequent)

        k = 2
        current = sorted(frequent)
        while current and (self.max_len is None or k <= self.max_len):
            candidates = self._generate_candidates(current, k)
            candidates_total += len(candidates)
            if not candidates:
                break
            counts: dict[Pattern, int] = defaultdict(int)
            cand_sets = [(c, frozenset(c)) for c in candidates]
            for t in tx:
                work += len(cand_sets)
                if len(t) < k:
                    continue
                for cand, cset in cand_sets:
                    if cset <= t:
                        counts[cand] += 1
            current = sorted(c for c, v in counts.items() if v >= min_count)
            for c in current:
                result[c] = counts[c]
            k += 1

        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=candidates_total,
            work_units=work,
        )

    @staticmethod
    def _generate_candidates(frequent_prev: Sequence[Pattern], k: int) -> list[Pattern]:
        """Join step + Apriori prune (every (k-1)-subset must be frequent)."""
        prev_set = set(frequent_prev)
        candidates: list[Pattern] = []
        n = len(frequent_prev)
        for i in range(n):
            a = frequent_prev[i]
            for j in range(i + 1, n):
                b = frequent_prev[j]
                if a[: k - 2] != b[: k - 2]:
                    break  # sorted order: no further joins share the prefix
                cand = a + (b[k - 2],)
                if all(
                    cand[:m] + cand[m + 1 :] in prev_set for m in range(k)
                ):
                    candidates.append(cand)
        return candidates


def count_patterns(
    transactions: Sequence[Iterable[int]],
    patterns: Sequence[Pattern],
    kernel: str = "auto",
) -> tuple[dict[Pattern, int], float]:
    """Support counts of explicit ``patterns`` over ``transactions``.

    This is the global-pruning scan of Savasere's algorithm. Returns the
    counts and the containment-check work performed. The bitmap tiers
    (``"numpy"``/``"bitmap"``, ``"native"``) pack the partition once and
    count every pattern via popcount over ANDed item rows; patterns
    naming items this partition never saw count 0, as in the reference
    scan.
    """
    tier = autotune.resolve_tier(kernel, kind="fpm", work=len(transactions))
    if tier == "reference":
        return count_patterns_reference(transactions, patterns)
    supports_fn = None
    if tier == "native":
        from repro.perf.native.fpm_njit import candidate_supports_native

        supports_fn = candidate_supports_native
    pats = list(patterns)
    bitmap = pack_transactions(transactions)
    supports = pattern_supports(bitmap, pats, supports=supports_fn)
    # A pattern listed m times is incremented m times per matching
    # transaction by the reference scan; mirror that exactly.
    multiplicity: dict[Pattern, int] = defaultdict(int)
    for p in pats:
        multiplicity[p] += 1
    counts = {p: supports[p] * m for p, m in multiplicity.items()}
    return counts, float(bitmap.num_transactions * len(pats))


def count_patterns_reference(
    transactions: Sequence[Iterable[int]], patterns: Sequence[Pattern]
) -> tuple[dict[Pattern, int], float]:
    """Per-transaction containment scan — the bitmap kernel's oracle."""
    pattern_sets = [(p, frozenset(p)) for p in patterns]
    counts: dict[Pattern, int] = {p: 0 for p, _ in pattern_sets}
    work = 0.0
    for t in transactions:
        ts = frozenset(t)
        work += len(pattern_sets)
        for p, ps in pattern_sets:
            if ps <= ts:
                counts[p] += 1
    return counts, work


class AprioriWorkload(Workload):
    """Per-partition local mining stage (phase 1 of Savasere).

    Output is the :class:`MiningOutput` of the partition; ``merge``
    unions the locally frequent patterns — the global candidate set that
    phase 2 must verify.
    """

    name = "apriori-local"

    def __init__(
        self, min_support: float, max_len: int | None = None, kernel: str = "auto"
    ):
        self.miner = AprioriMiner(min_support=min_support, max_len=max_len, kernel=kernel)

    @property
    def min_support(self) -> float:
        return self.miner.min_support

    def run(self, records: Sequence[Iterable[int]]) -> WorkloadResult:
        out = self.miner.mine(records)
        return WorkloadResult(
            work_units=out.work_units,
            output=out,
            stats={
                "patterns": len(out.counts),
                "candidates": out.candidates_generated,
                "transactions": out.num_transactions,
            },
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> set[Pattern]:
        union: set[Pattern] = set()
        for p in partials:
            union.update(p.output.patterns())
        return union


class CandidateCountWorkload(Workload):
    """Global pruning scan (phase 2 of Savasere): count a fixed candidate
    set against each partition; ``merge`` sums counts and applies the
    global support threshold."""

    name = "apriori-count"

    def __init__(
        self,
        candidates: Sequence[Pattern],
        min_support: float,
        total_transactions: int,
        kernel: str = "auto",
    ):
        if total_transactions <= 0:
            raise ValueError("total_transactions must be positive")
        if not 0.0 < min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        autotune.validate_kernel(kernel, "fpm")
        self.candidates = sorted(set(candidates))
        self.min_support = min_support
        self.total_transactions = total_transactions
        self.kernel = kernel

    def run(self, records: Sequence[Iterable[int]]) -> WorkloadResult:
        counts, work = count_patterns(records, self.candidates, kernel=self.kernel)
        return WorkloadResult(
            work_units=work,
            output=counts,
            stats={"candidates": len(self.candidates), "transactions": len(records)},
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> dict[Pattern, int]:
        min_count = max(1, int(-(-self.min_support * self.total_transactions // 1)))
        totals: dict[Pattern, int] = defaultdict(int)
        for p in partials:
            for pattern, c in p.output.items():
                totals[pattern] += c
        return {p: c for p, c in totals.items() if c >= min_count}
