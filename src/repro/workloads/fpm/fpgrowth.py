"""FP-growth frequent itemset mining (Han, Pei & Yin, SIGMOD 2000).

Third mining backend (with Apriori and Eclat): compresses the
transactions into an FP-tree — a prefix tree over frequency-descending
item orderings with per-item header chains — and mines it recursively
via conditional pattern bases, generating no candidate sets at all.

Work units count tree-node visits plus conditional-base constructions,
the cost drivers of the pattern-growth family; the output is bitwise
identical to the other miners (property-tested), so FP-growth drops
into the framework and the Savasere coordinator unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fpm.apriori import MiningOutput, Pattern


@dataclass
class _FPNode:
    """One FP-tree node: an item with a support count and children."""

    item: int
    count: int = 0
    parent: "_FPNode | None" = None
    children: dict[int, "_FPNode"] = field(default_factory=dict)
    next_same_item: "_FPNode | None" = None


class _FPTree:
    """FP-tree with header chains, built from (itemset, count) pairs."""

    def __init__(self) -> None:
        self.root = _FPNode(item=-1)
        self.headers: dict[int, _FPNode] = {}
        self.item_counts: dict[int, int] = defaultdict(int)
        self.nodes_created = 0

    def insert(self, items: Sequence[int], count: int) -> int:
        """Insert one ordered transaction; returns nodes visited."""
        node = self.root
        visited = 0
        for item in items:
            visited += 1
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item=item, parent=node)
                node.children[item] = child
                child.next_same_item = self.headers.get(item)
                self.headers[item] = child
                self.nodes_created += 1
            child.count += count
            self.item_counts[item] += count
            node = child
        return visited

    def prefix_paths(self, item: int) -> tuple[list[tuple[list[int], int]], int]:
        """Conditional pattern base of ``item``: (path, count) pairs.

        Returns the base and the number of node visits walking it.
        """
        paths: list[tuple[list[int], int]] = []
        visited = 0
        node = self.headers.get(item)
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
                visited += 1
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.next_same_item
            visited += 1
        return paths, visited


@dataclass
class FPGrowthMiner:
    """Configured FP-growth miner (same contract as :class:`AprioriMiner`)."""

    min_support: float
    max_len: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        if self.max_len is not None and self.max_len < 1:
            raise ValueError("max_len must be >= 1")

    def mine(self, transactions: Sequence[Iterable[int]]) -> MiningOutput:
        """Mine all frequent itemsets of ``transactions``."""
        tx = [sorted(set(int(i) for i in t)) for t in transactions]
        n = len(tx)
        if n == 0:
            return MiningOutput(counts={}, num_transactions=0, candidates_generated=0, work_units=0.0)
        min_count = max(1, int(-(-self.min_support * n // 1)))

        work = 0.0
        # First scan: global item frequencies.
        freq: dict[int, int] = defaultdict(int)
        for t in tx:
            work += len(t)
            for item in t:
                freq[item] += 1
        frequent_items = {i for i, c in freq.items() if c >= min_count}

        # Second scan: build the FP-tree over frequency-descending,
        # id-ascending (for determinism) orderings.
        def order_key(item: int) -> tuple[int, int]:
            return (-freq[item], item)

        tree = _FPTree()
        for t in tx:
            ordered = sorted((i for i in t if i in frequent_items), key=order_key)
            work += tree.insert(ordered, 1)

        result: dict[Pattern, int] = {}
        bases_built = 0

        def mine_tree(tree: _FPTree, suffix: tuple[int, ...]) -> None:
            nonlocal work, bases_built
            # Items in ascending frequency (reverse build order).
            items = sorted(tree.item_counts, key=order_key, reverse=True)
            for item in items:
                support = tree.item_counts[item]
                if support < min_count:
                    continue
                pattern = tuple(sorted((item,) + suffix))
                result[pattern] = support
                if self.max_len is not None and len(pattern) >= self.max_len:
                    continue
                base, visited = tree.prefix_paths(item)
                work += visited
                bases_built += 1
                if not base:
                    continue
                cond = _FPTree()
                # Conditional tree keeps only conditionally frequent items.
                cond_freq: dict[int, int] = defaultdict(int)
                for path, count in base:
                    for pitem in path:
                        cond_freq[pitem] += count
                keep = {i for i, c in cond_freq.items() if c >= min_count}
                for path, count in base:
                    filtered = [i for i in path if i in keep]
                    if filtered:
                        work += cond.insert(filtered, count)
                if cond.item_counts:
                    mine_tree(cond, pattern)

        mine_tree(tree, ())
        return MiningOutput(
            counts=result,
            num_transactions=n,
            candidates_generated=bases_built,
            work_units=work,
        )


class FPGrowthWorkload(Workload):
    """Per-partition FP-growth mining — drop-in for :class:`AprioriWorkload`."""

    name = "fpgrowth-local"

    def __init__(self, min_support: float, max_len: int | None = None):
        self.miner = FPGrowthMiner(min_support=min_support, max_len=max_len)

    @property
    def min_support(self) -> float:
        return self.miner.min_support

    def run(self, records: Sequence[Iterable[int]]) -> WorkloadResult:
        out = self.miner.mine(records)
        return WorkloadResult(
            work_units=out.work_units,
            output=out,
            stats={"patterns": len(out.counts), "bases": out.candidates_generated},
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> set[Pattern]:
        union: set[Pattern] = set()
        for p in partials:
            union.update(p.output.patterns())
        return union
