"""Workload protocol shared by all analytics tasks.

A workload consumes one partition's records and reports, besides its
output, an abstract **work-unit** count. Work units measure the
payload-dependent cost the paper's framework targets: for frequent
pattern mining they grow with the candidate-pattern blowup, for
compression with the bytes pushed through the coder. The execution
engines turn work units into emulated runtime via each node's speed
factor, so a skewed partition genuinely slows its host node down.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class WorkloadResult:
    """Outcome of running a workload on one partition.

    Attributes
    ----------
    work_units:
        Abstract processing cost of the partition (non-negative).
    output:
        Workload-specific payload (e.g. locally frequent patterns, or
        compressed bytes).
    stats:
        Free-form diagnostics (candidate counts, compressed sizes, …).
    """

    work_units: float
    output: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.work_units < 0:
            raise ValueError("work_units must be non-negative")


class Workload(abc.ABC):
    """One per-partition analytics task.

    Subclasses must be picklable (the process-pool engine ships them to
    workers) and deterministic given the same records.
    """

    #: Human-readable workload name (used in reports).
    name: str = "workload"

    @abc.abstractmethod
    def run(self, records: Sequence[Any]) -> WorkloadResult:
        """Process one partition and report output + work units."""

    def merge(self, partials: Sequence[WorkloadResult]) -> Any:
        """Combine per-partition outputs into a global answer.

        Default: list of outputs. FPM workloads override this with the
        candidate-union / global-count step of Savasere's algorithm.
        """
        return [p.output for p in partials]
