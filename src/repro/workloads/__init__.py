"""Analytics workloads: frequent pattern mining and compression.

These are the distributed algorithms the paper evaluates. Each workload
implements the :class:`~repro.workloads.base.Workload` protocol — given
one partition's records it produces an output plus an abstract
*work-unit* count, which the cluster engines convert into emulated
runtime per node speed.
"""

from repro.workloads.base import Workload, WorkloadResult

__all__ = ["Workload", "WorkloadResult"]
