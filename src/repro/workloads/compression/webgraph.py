"""WebGraph-style adjacency-list compression (Boldi & Vigna, WWW 2004).

Implements the format's two core ideas over a partition of adjacency
lists:

- **Reference compression**: each list may be encoded against one of
  the ``window`` previous lists in the partition — a copy-mask over the
  reference's entries (run-length encoded) plus the residual extras.
- **Gap encoding**: residuals are sorted and delta-encoded; gaps are
  written as varints (byte-aligned stand-ins for zeta codes).

Each list is encoded with whichever of {reference, plain-gap} is
smaller, as the real WebGraph does. Similar neighbouring lists (the
similar-together placement) make references cheap and gaps small —
the compression-ratio benefit Figure 4 evaluates.

Work units count reference-candidate comparisons plus encoded symbols:
compression cost grows when the window must be searched harder, and
shrinks per byte when references hit — matching WebGraph's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.perf import autotune
from repro.perf.lz77_kernels import encode_varints_bytes
from repro.workloads.compression.varint import (
    decode_varint,
    encode_varint,
    gaps_decode,
    gaps_encode,
)

_PLAIN = 0
_REFERENCED = 1

#: Minimum run of consecutive ids encoded as an interval (WebGraph's
#: ``Lmin``; runs shorter than this go through gap coding).
MIN_INTERVAL_LENGTH = 3


def _split_intervals(values: Sequence[int]) -> tuple[list[tuple[int, int]], list[int]]:
    """Split a sorted list into maximal consecutive runs ≥ Lmin and
    residual values (WebGraph interval extraction)."""
    intervals: list[tuple[int, int]] = []
    residuals: list[int] = []
    i = 0
    n = len(values)
    while i < n:
        j = i
        while j + 1 < n and values[j + 1] == values[j] + 1:
            j += 1
        run = j - i + 1
        if run >= MIN_INTERVAL_LENGTH:
            intervals.append((values[i], run))
        else:
            residuals.extend(values[i : j + 1])
        i = j + 1
    return intervals, residuals


@dataclass
class WebGraphStats:
    """Coder diagnostics from one compress call."""

    input_edges: int = 0
    raw_bytes: int = 0
    output_bytes: int = 0
    referenced_lists: int = 0
    plain_lists: int = 0
    work_units: float = 0.0

    @property
    def ratio(self) -> float:
        """Raw (4 bytes/edge) over compressed size; >1 means it shrank."""
        if self.output_bytes == 0:
            return 0.0
        return self.raw_bytes / self.output_bytes

    @property
    def bits_per_edge(self) -> float:
        if self.input_edges == 0:
            return 0.0
        return 8.0 * self.output_bytes / self.input_edges


def _encode_plain(neighbours: Sequence[int]) -> bytes:
    """Interval + gap coding of one sorted list (WebGraph's base coder):
    ``[n_intervals][interval lefts gap-coded][lengths − Lmin]
    [n_residual_gaps][residual gaps]``."""
    intervals, residuals = _split_intervals(list(neighbours))
    out = bytearray(encode_varint(len(intervals)))
    lefts = gaps_encode([start for start, _ in intervals])
    for left in lefts:
        out.extend(encode_varint(left))
    for _start, length in intervals:
        out.extend(encode_varint(length - MIN_INTERVAL_LENGTH))
    gaps = gaps_encode(residuals)
    out.extend(encode_varint(len(gaps)))
    for g in gaps:
        out.extend(encode_varint(g))
    return bytes(out)


def _decode_plain(data: bytes, pos: int) -> tuple[list[int], int]:
    n_intervals, pos = decode_varint(data, pos)
    lefts_gapped = []
    for _ in range(n_intervals):
        left, pos = decode_varint(data, pos)
        lefts_gapped.append(left)
    lefts = gaps_decode(lefts_gapped)
    values: list[int] = []
    for left in lefts:
        length, pos = decode_varint(data, pos)
        values.extend(range(left, left + length + MIN_INTERVAL_LENGTH))
    count, pos = decode_varint(data, pos)
    gaps = []
    for _ in range(count):
        g, pos = decode_varint(data, pos)
        gaps.append(g)
    values.extend(gaps_decode(gaps))
    return sorted(values), pos


def _varint_len(value: int) -> int:
    """Byte length of ``encode_varint(value)`` without building bytes."""
    return (value.bit_length() + 6) // 7 if value else 1


def _symbols_len(symbols: list[int]) -> int:
    """Total encoded byte length of a symbol list (most symbols are one
    byte, so only multi-byte values pay the bit_length arithmetic)."""
    total = len(symbols)
    for s in symbols:
        if s >= 128:
            total += (s.bit_length() + 6) // 7 - 1
    return total


def _plain_symbols(neighbours: Sequence[int]) -> list[int]:
    """The varint symbol sequence :func:`_encode_plain` would emit."""
    intervals, residuals = _split_intervals(list(neighbours))
    symbols = [len(intervals)]
    symbols += gaps_encode([start for start, _ in intervals])
    symbols += [length - MIN_INTERVAL_LENGTH for _, length in intervals]
    gaps = gaps_encode(residuals)
    symbols.append(len(gaps))
    symbols += gaps
    return symbols


def _referenced_symbols(
    target: set[int], shared: set[int], reference: Sequence[int], ref_offset: int
) -> list[int]:
    """The varint symbol sequence :func:`_encode_referenced` would emit.

    ``shared`` must be ``target ∩ reference`` — the caller already built
    it for the cheap-reject test, and it doubles as the copied set.
    """
    mask = [v in shared for v in reference]
    extras = sorted(target - shared)
    runs = _copy_runs(mask)
    return [ref_offset, len(runs)] + runs + _plain_symbols(extras)


def _copy_runs(mask: Sequence[bool]) -> list[int]:
    """Run-length encode a boolean copy mask, first run = kept entries."""
    runs: list[int] = []
    current = True
    count = 0
    for bit in mask:
        if bit == current:
            count += 1
        else:
            runs.append(count)
            current = bit
            count = 1
    runs.append(count)
    return runs


def _encode_referenced(
    neighbours: Sequence[int], reference: Sequence[int], ref_offset: int
) -> bytes:
    """Encode against a reference list ``ref_offset`` records back."""
    target = set(neighbours)
    mask = [v in target for v in reference]
    copied = {v for v, keep in zip(reference, mask) if keep}
    extras = sorted(target - copied)
    runs = _copy_runs(mask)
    out = bytearray(encode_varint(ref_offset))
    out.extend(encode_varint(len(runs)))
    for r in runs:
        out.extend(encode_varint(r))
    out.extend(_encode_plain(extras))
    return bytes(out)


def _decode_referenced(
    data: bytes, pos: int, previous: list[list[int]]
) -> tuple[list[int], int]:
    ref_offset, pos = decode_varint(data, pos)
    if not 1 <= ref_offset <= len(previous):
        raise ValueError("reference offset out of range")
    reference = previous[-ref_offset]
    n_runs, pos = decode_varint(data, pos)
    runs = []
    for _ in range(n_runs):
        r, pos = decode_varint(data, pos)
        runs.append(r)
    mask: list[bool] = []
    keep = True
    for run in runs:
        mask.extend([keep] * run)
        keep = not keep
    if len(mask) != len(reference):
        raise ValueError("copy mask length mismatch")
    copied = [v for v, k in zip(reference, mask) if k]
    extras, pos = _decode_plain(data, pos)
    return sorted(set(copied) | set(extras)), pos


@dataclass
class WebGraphCodec:
    """Configured WebGraph-style coder.

    Parameters
    ----------
    window:
        How many previous lists are candidate references (WebGraph's
        ``W``; 7 is the format's classic default).
    kernel:
        ``"auto"`` (default) dispatches on partition size; ``"numpy"``
        (alias ``"batched"``) scores reference candidates by computed
        byte length and varint-encodes the whole partition in one
        batched call; ``"reference"`` serializes every candidate with
        per-symbol Python loops. There is no native tier — the coder is
        symbol-stream bookkeeping over Python sets. Blobs and stats are
        byte-identical.
    """

    window: int = 7
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window must be non-negative")
        autotune.validate_kernel(self.kernel, "webgraph")

    def compress(self, adjacency: Sequence[Sequence[int]]) -> tuple[bytes, WebGraphStats]:
        """Compress a partition of sorted adjacency lists."""
        tier = autotune.resolve_tier(
            self.kernel, kind="webgraph", work=len(adjacency)
        )
        if tier == "reference":
            return self.compress_reference(adjacency)
        return self._compress_batched(adjacency)

    def _compress_batched(self, adjacency: Sequence[Sequence[int]]) -> tuple[bytes, WebGraphStats]:
        """Symbol-stream coder: byte-identical blob, one batched encode.

        Every byte the format emits is a varint — the flag bytes 0/1
        are exactly their own varint encodings — so the whole blob is
        one varint stream. The coder therefore accumulates plain int
        symbols, scores each reference candidate by its *computed* byte
        length (the reference path serializes all ``window`` candidates
        and throws most away), and serializes the winning stream with a
        single :func:`encode_varints_bytes` call at the end.
        """
        stats = WebGraphStats()
        symbols: list[int] = [len(adjacency)]
        history: list[list[int]] = []
        for raw in adjacency:
            neighbours = sorted(set(int(v) for v in raw))
            stats.input_edges += len(neighbours)
            target = set(neighbours)
            best = _plain_symbols(neighbours)
            best_len = _symbols_len(best)
            best_flag = _PLAIN
            for back in range(1, min(self.window, len(history)) + 1):
                reference = history[-back]
                stats.work_units += len(reference)
                shared = target.intersection(reference)
                if not shared:
                    continue
                cand = _referenced_symbols(target, shared, reference, back)
                cand_len = _symbols_len(cand)
                if cand_len < best_len:
                    best = cand
                    best_len = cand_len
                    best_flag = _REFERENCED
            symbols.append(best_flag)
            symbols += best
            stats.work_units += best_len + len(neighbours)
            if best_flag == _REFERENCED:
                stats.referenced_lists += 1
            else:
                stats.plain_lists += 1
            history.append(neighbours)
            if len(history) > self.window:
                history.pop(0)
        blob = encode_varints_bytes(symbols)
        stats.raw_bytes = 4 * stats.input_edges
        stats.output_bytes = len(blob)
        return blob, stats

    def compress_reference(self, adjacency: Sequence[Sequence[int]]) -> tuple[bytes, WebGraphStats]:
        """Per-symbol Python coder — the batched kernel's oracle."""
        stats = WebGraphStats()
        out = bytearray(encode_varint(len(adjacency)))
        history: list[list[int]] = []
        for neighbours in adjacency:
            neighbours = sorted(set(int(v) for v in neighbours))
            stats.input_edges += len(neighbours)
            plain = _encode_plain(neighbours)
            best = plain
            best_flag = _PLAIN
            target = set(neighbours)
            for back in range(1, min(self.window, len(history)) + 1):
                reference = history[-back]
                stats.work_units += len(reference)
                # Cheap reject: a reference sharing nothing cannot win.
                if not target.intersection(reference):
                    continue
                cand = _encode_referenced(neighbours, reference, back)
                if len(cand) < len(best):
                    best = cand
                    best_flag = _REFERENCED
            out.append(best_flag)
            out.extend(best)
            stats.work_units += len(best) + len(neighbours)
            if best_flag == _REFERENCED:
                stats.referenced_lists += 1
            else:
                stats.plain_lists += 1
            history.append(neighbours)
            if len(history) > self.window:
                history.pop(0)
        stats.raw_bytes = 4 * stats.input_edges
        stats.output_bytes = len(out)
        return bytes(out), stats

    def decompress(self, blob: bytes) -> list[list[int]]:
        """Invert :meth:`compress`."""
        count, pos = decode_varint(blob, 0)
        lists: list[list[int]] = []
        history: list[list[int]] = []
        for _ in range(count):
            flag = blob[pos]
            pos += 1
            if flag == _PLAIN:
                neighbours, pos = _decode_plain(blob, pos)
            elif flag == _REFERENCED:
                neighbours, pos = _decode_referenced(blob, pos, history)
            else:
                raise ValueError(f"unknown list flag {flag}")
            lists.append(neighbours)
            history.append(neighbours)
            if len(history) > self.window:
                history.pop(0)
        return lists
