"""Variable-length integer codes (LEB128 varint + zigzag).

The byte-aligned stand-in for WebGraph's bit-level zeta codes: small
values take one byte, so gap-encoded adjacency lists with good locality
shrink dramatically. Zigzag maps signed deltas to unsigned varints.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer (7 data bits per byte)."""
    if value < 0:
        raise ValueError("varint requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_varint_list(values: Iterable[int]) -> bytes:
    """Concatenated varints prefixed by their count."""
    vals = list(values)
    out = bytearray(encode_varint(len(vals)))
    for v in vals:
        out.extend(encode_varint(v))
    return bytes(out)


def decode_varint_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Inverse of :func:`encode_varint_list`."""
    count, pos = decode_varint(data, offset)
    values = []
    for _ in range(count):
        v, pos = decode_varint(data, pos)
        values.append(v)
    return values, pos


def zigzag_encode(value: int) -> int:
    """Map a signed integer to unsigned: 0,-1,1,-2 → 0,1,2,3."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise ValueError("zigzag-encoded values are non-negative")
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def gaps_encode(sorted_values: Sequence[int]) -> list[int]:
    """Delta-encode a sorted sequence: first value, then successive gaps.

    Gaps of a strictly increasing list are ≥ 1; we store ``gap - 1`` so
    dense runs cost single-byte varints.
    """
    if not sorted_values:
        return []
    out = [sorted_values[0]]
    prev = sorted_values[0]
    for v in sorted_values[1:]:
        if v <= prev:
            raise ValueError("gaps_encode requires strictly increasing input")
        out.append(v - prev - 1)
        prev = v
    return out


def gaps_decode(encoded: Sequence[int]) -> list[int]:
    """Inverse of :func:`gaps_encode`."""
    if not encoded:
        return []
    out = [encoded[0]]
    prev = encoded[0]
    for gap in encoded[1:]:
        prev = prev + gap + 1
        out.append(prev)
    return out
