"""Distributed compression workload: compress each partition independently.

The paper's graph-compression evaluation splits the input into ``p``
partitions and compresses each independently; quality is the aggregate
compression ratio, so low-entropy (similar-together) partitions win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.compression.lz77 import LZ77Codec
from repro.workloads.compression.webgraph import WebGraphCodec


@dataclass
class CompressionSummary:
    """Aggregate quality over all partitions of a job."""

    raw_bytes: int
    compressed_bytes: int
    num_partitions: int

    @property
    def ratio(self) -> float:
        """Global compression ratio Σraw / Σcompressed."""
        if self.compressed_bytes == 0:
            return 0.0
        return self.raw_bytes / self.compressed_bytes


class CompressionWorkload(Workload):
    """Per-partition compression with a pluggable coder.

    Parameters
    ----------
    algorithm:
        ``"webgraph"`` (reference + gap coding of adjacency lists) or
        ``"lz77"`` (sliding-window LZ over the serialized partition).
    """

    def __init__(self, algorithm: str = "webgraph", **codec_kwargs):
        if algorithm == "webgraph":
            self.codec = WebGraphCodec(**codec_kwargs)
        elif algorithm == "lz77":
            self.codec = LZ77Codec(**codec_kwargs)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.name = f"compress-{algorithm}"

    def run(self, records: Sequence[Sequence[int]]) -> WorkloadResult:
        if self.algorithm == "webgraph":
            blob, stats = self.codec.compress(records)
            raw = stats.raw_bytes
            work = stats.work_units
            extra = {
                "referenced_lists": stats.referenced_lists,
                "plain_lists": stats.plain_lists,
                "bits_per_edge": stats.bits_per_edge,
            }
        else:
            blob, stats = self.codec.compress_text_records(records)
            raw = stats.input_bytes
            # LZ77 cost is dominated by the byte stream itself plus the
            # bounded match probing — data-intensive, payload-light.
            work = stats.input_bytes + stats.probes
            extra = {"matches": stats.matches, "literals": stats.literals}
        return WorkloadResult(
            work_units=work,
            output={"compressed_bytes": len(blob), "raw_bytes": raw},
            stats={"records": len(records), **extra},
        )

    def merge(self, partials: Sequence[WorkloadResult]) -> CompressionSummary:
        return CompressionSummary(
            raw_bytes=sum(p.output["raw_bytes"] for p in partials),
            compressed_bytes=sum(p.output["compressed_bytes"] for p in partials),
            num_partitions=len(partials),
        )
