"""LZ77 sliding-window compression (Ziv & Lempel, 1977/78 family).

A pure-Python hash-chain implementation over byte strings: literals and
``(distance, length)`` match tokens, serialized with varints. Partition
records (integer lists) are framed through the KV-store codec before
compression, so similar records in a partition create long back-matches
— the low-entropy benefit the similar-together placement buys.

Work units count match-probe operations plus emitted tokens: the coder
is data-intensive and nearly payload-insensitive in throughput, which
is why the paper sees little het-aware gain for LZ77 (Tables II/III).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Sequence

from repro.kvstore.codec import decode_partition, encode_partition
from repro.perf import autotune
from repro.perf.lz77_kernels import (
    build_match_links,
    compress_block,
    serialize_tokens,
)
from repro.workloads.compression.varint import decode_varint, encode_varint

_MIN_MATCH = 4
_LITERAL_FLAG = 0
_MATCH_FLAG = 1


@dataclass
class LZ77Stats:
    """Coder diagnostics from one compress call."""

    input_bytes: int = 0
    output_bytes: int = 0
    matches: int = 0
    literals: int = 0
    probes: int = 0

    @property
    def ratio(self) -> float:
        """Compression ratio (input / output); >1 means it shrank."""
        if self.output_bytes == 0:
            return 0.0
        return self.input_bytes / self.output_bytes


@dataclass
class LZ77Codec:
    """Configured LZ77 coder.

    Parameters
    ----------
    window:
        Sliding-window size in bytes (max match distance).
    max_chain:
        Hash-chain probe cap per position — bounds worst-case time.
    max_match:
        Longest emitted match.
    kernel:
        Tier: ``"auto"`` (shape-dispatched, the default), ``"numpy"``
        (alias ``"fast"``) runs the precomputed-link coder of
        :mod:`repro.perf.lz77_kernels`, ``"native"`` the compiled scan
        over the same links, ``"reference"`` the original hash-chain
        loop. Blobs and stats are byte-identical for every tier.
    """

    window: int = 1 << 15
    max_chain: int = 16
    max_match: int = 255
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.window <= 0 or self.max_chain <= 0:
            raise ValueError("window and max_chain must be positive")
        if self.max_match < _MIN_MATCH:
            raise ValueError(f"max_match must be >= {_MIN_MATCH}")
        autotune.validate_kernel(self.kernel, "lz77")

    def compress(self, data: bytes) -> tuple[bytes, LZ77Stats]:
        """Compress ``data``; returns the token stream and stats."""
        tier = autotune.resolve_tier(self.kernel, kind="lz77", work=len(data))
        if tier == "reference":
            return self.compress_reference(data)
        if tier == "native":
            from repro.perf.native.lz77_njit import scan_matches_native

            links = build_match_links(data)
            m_pos, m_dist, m_len, probes = scan_matches_native(
                data,
                links,
                window=self.window,
                max_chain=self.max_chain,
                max_match=self.max_match,
            )
            blob, counters = serialize_tokens(data, m_pos, m_dist, m_len, probes)
        else:
            blob, counters = compress_block(
                data,
                window=self.window,
                max_chain=self.max_chain,
                max_match=self.max_match,
            )
        return blob, LZ77Stats(
            input_bytes=len(data),
            output_bytes=len(blob),
            matches=counters["matches"],
            literals=counters["literals"],
            probes=counters["probes"],
        )

    def compress_reference(self, data: bytes) -> tuple[bytes, LZ77Stats]:
        """Hash-chain reference coder — the fast kernel's oracle."""
        stats = LZ77Stats(input_bytes=len(data))
        out = bytearray(encode_varint(len(data)))
        n = len(data)
        heads: dict[bytes, deque[int]] = defaultdict(deque)
        pos = 0
        literal_run = bytearray()

        def flush_literals() -> None:
            if literal_run:
                out.append(_LITERAL_FLAG)
                out.extend(encode_varint(len(literal_run)))
                out.extend(literal_run)
                stats.literals += len(literal_run)
                literal_run.clear()

        while pos < n:
            best_len = 0
            best_dist = 0
            if pos + _MIN_MATCH <= n:
                key = data[pos : pos + _MIN_MATCH]
                chain = heads[key]
                # Probe newest-first; stale (out-of-window) entries drop off.
                probes = 0
                for cand in reversed(chain):
                    if probes >= self.max_chain:
                        break
                    probes += 1
                    stats.probes += 1
                    dist = pos - cand
                    if dist > self.window:
                        break
                    length = _MIN_MATCH
                    limit = min(self.max_match, n - pos)
                    while length < limit and data[cand + length] == data[pos + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = dist
                        if length >= limit:
                            break
            if best_len >= _MIN_MATCH:
                flush_literals()
                out.append(_MATCH_FLAG)
                out.extend(encode_varint(best_dist))
                out.extend(encode_varint(best_len))
                stats.matches += 1
                end = pos + best_len
                while pos < end:
                    if pos + _MIN_MATCH <= n:
                        self._index(heads, data, pos)
                    pos += 1
            else:
                literal_run.append(data[pos])
                if pos + _MIN_MATCH <= n:
                    self._index(heads, data, pos)
                pos += 1
        flush_literals()
        stats.output_bytes = len(out)
        return bytes(out), stats

    def _index(self, heads: dict[bytes, deque[int]], data: bytes, pos: int) -> None:
        chain = heads[data[pos : pos + _MIN_MATCH]]
        chain.append(pos)
        # Keep chains short: entries older than the window are useless.
        while chain and pos - chain[0] > self.window:
            chain.popleft()

    def decompress(self, blob: bytes) -> bytes:
        """Invert :meth:`compress`."""
        total, pos = decode_varint(blob, 0)
        out = bytearray()
        n = len(blob)
        while pos < n:
            flag = blob[pos]
            pos += 1
            if flag == _LITERAL_FLAG:
                length, pos = decode_varint(blob, pos)
                if pos + length > n:
                    raise ValueError("truncated literal run")
                out.extend(blob[pos : pos + length])
                pos += length
            elif flag == _MATCH_FLAG:
                dist, pos = decode_varint(blob, pos)
                length, pos = decode_varint(blob, pos)
                if dist <= 0 or dist > len(out):
                    raise ValueError("match distance out of range")
                start = len(out) - dist
                if dist >= length:  # disjoint source: one slice copy
                    out += out[start : start + length]
                else:
                    for i in range(length):  # self-overlapping, byte-wise
                        out.append(out[start + i])
            else:
                raise ValueError(f"unknown token flag {flag}")
        if len(out) != total:
            raise ValueError(f"decompressed {len(out)} bytes, header said {total}")
        return bytes(out)

    # -- record-level convenience -------------------------------------------

    def compress_records(self, records: Sequence[Sequence[int]]) -> tuple[bytes, LZ77Stats]:
        """Frame integer records through the KV codec, then compress."""
        return self.compress(encode_partition(records))

    def decompress_records(self, blob: bytes) -> list[list[int]]:
        """Inverse of :meth:`compress_records`."""
        return decode_partition(self.decompress(blob))

    def compress_text_records(
        self, records: Sequence[Sequence[int]]
    ) -> tuple[bytes, LZ77Stats]:
        """Compress the textual form (one space-separated line per record).

        This is what compressing the raw on-disk dataset looks like —
        the setting of the paper's LZ77 tables — and is far more
        compressible than the fixed-width binary framing because nearby
        ids share digit prefixes.
        """
        text = b"\n".join(
            b" ".join(str(int(v)).encode() for v in rec) for rec in records
        )
        return self.compress(text)

    def decompress_text_records(self, blob: bytes) -> list[list[int]]:
        """Inverse of :meth:`compress_text_records`."""
        text = self.decompress(blob)
        if not text:
            return []
        return [
            [int(tok) for tok in line.split()] for line in text.split(b"\n")
        ]
