"""Compression workloads (data-intensive, entropy-sensitive).

The paper's second workload family: partitions are compressed
independently, so the *similar-together* placement (low-entropy
partitions) directly improves compression ratios. Two coders:

- :mod:`repro.workloads.compression.webgraph` — WebGraph-style
  adjacency compression (gap + reference coding over varint/zeta codes,
  Boldi & Vigna WWW 2004);
- :mod:`repro.workloads.compression.lz77` — the classic sliding-window
  Lempel–Ziv coder over the partition's serialized byte stream.
"""

from repro.workloads.compression.varint import (
    encode_varint,
    decode_varint,
    encode_varint_list,
    decode_varint_list,
    zigzag_encode,
    zigzag_decode,
)
from repro.workloads.compression.lz77 import LZ77Codec
from repro.workloads.compression.webgraph import WebGraphCodec
from repro.workloads.compression.distributed import (
    CompressionWorkload,
    CompressionSummary,
)

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_varint_list",
    "decode_varint_list",
    "zigzag_encode",
    "zigzag_decode",
    "LZ77Codec",
    "WebGraphCodec",
    "CompressionWorkload",
    "CompressionSummary",
]
