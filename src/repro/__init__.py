"""repro — A Pareto Framework for Data Analytics on Heterogeneous Systems.

Python reproduction of Chakrabarti, Parthasarathy & Stewart (ICPP 2017):
heterogeneity- and green-energy-aware data partitioning for distributed
analytics, built on stratification, progressive-sampling time models and
a scalarized multi-objective linear program.

Public entry points:

- :class:`repro.core.ParetoPartitioner` — the partitioning framework;
- :func:`repro.cluster.paper_cluster` — the emulated heterogeneous
  cluster (speeds 4x..1x, per-site solar traces);
- :mod:`repro.workloads` — frequent pattern mining and compression;
- :func:`repro.data.load_dataset` — synthetic analogs of the paper's
  five datasets;
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation;
- :mod:`repro.obs` — opt-in tracing, metrics and energy telemetry
  (``obs.enable()``; see ``docs/observability.md``).
"""

from repro import obs
from repro.core.framework import ParetoPartitioner, RunReport
from repro.core.strategies import HET_AWARE, RANDOM, STRATIFIED, Strategy, het_energy_aware
from repro.cluster.cluster import homogeneous_cluster, paper_cluster
from repro.cluster.engines import ProcessPoolEngine, SimulatedEngine
from repro.data.datasets import load_dataset

__version__ = "1.0.0"

__all__ = [
    "ParetoPartitioner",
    "RunReport",
    "Strategy",
    "STRATIFIED",
    "HET_AWARE",
    "RANDOM",
    "het_energy_aware",
    "paper_cluster",
    "homogeneous_cluster",
    "SimulatedEngine",
    "ProcessPoolEngine",
    "load_dataset",
    "obs",
    "__version__",
]
