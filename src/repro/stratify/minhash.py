"""MinHash sketching via min-wise independent linear permutations.

Implements the sketching step of the stratifier. Rather than the exact
min-wise independent permutation family of Broder et al. (expensive for
a ``2**32`` universe), the paper uses the *linear* approximation of
Bohman, Cooper and Frieze: ``h(x) = (a·x + b) mod P`` for a prime
``P`` just above the universe size. A sketch is the vector of minima of
``k`` such permutations over a set; the fraction of agreeing positions
between two sketches is an unbiased estimator of their Jaccard
similarity.

Everything is vectorised: a set of ``n`` elements is sketched with one
``(n, k)`` broadcasted multiply-add, and whole datasets are sketched by
the ragged-batch kernel in :mod:`repro.perf.minhash_kernels` — all sets
concatenated into one flat array, hashed in memory-bounded chunks, and
reduced per set with ``np.minimum.reduceat``. The per-set path is kept
as the oracle the batch kernel is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.perf.minhash_kernels import (
    DEFAULT_CHUNK_BYTES,
    as_uint64_elements,
    flatten_sets,
    hash_elements,
    sketch_batch,
)
from repro.perf.kmodes_kernels import similarity_matrix_blocked
from repro.perf import autotune
from repro.stratify.pivots import UNIVERSE_SIZE

#: Smallest prime exceeding the 2**32 pivot universe.
MERSENNE_PRIME_CANDIDATE = (1 << 32) + 15


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


assert _is_prime(MERSENNE_PRIME_CANDIDATE), "prime constant broken"

PRIME = MERSENNE_PRIME_CANDIDATE

#: Sentinel sketch value for the empty set (larger than any hash value).
EMPTY_SLOT = np.iinfo(np.uint64).max


def jaccard(x: Iterable[int], y: Iterable[int]) -> float:
    """Exact Jaccard similarity ``|x ∩ y| / |x ∪ y|`` of two sets."""
    sx, sy = set(x), set(y)
    if not sx and not sy:
        return 1.0
    return len(sx & sy) / len(sx | sy)


def sketch_jaccard(sk_x: np.ndarray, sk_y: np.ndarray) -> float:
    """Estimate Jaccard similarity as the fraction of matching slots."""
    sk_x = np.asarray(sk_x)
    sk_y = np.asarray(sk_y)
    if sk_x.shape != sk_y.shape:
        raise ValueError("sketches must have equal length")
    if sk_x.size == 0:
        raise ValueError("sketches must be non-empty")
    return float(np.mean(sk_x == sk_y))


@dataclass
class MinHasher:
    """A family of ``k`` min-wise independent linear permutations.

    Parameters
    ----------
    num_hashes:
        Sketch length ``k``. Estimator std-err is ``~1/sqrt(k)``.
    seed:
        Seed for drawing the permutation coefficients; two hashers with
        the same seed produce identical, comparable sketches.
    chunk_bytes:
        Ceiling on the batch kernels' largest temporary (the hashed
        ``(m, k)`` block in ``sketch_all``, the ``(rows, n, k)`` block
        in ``similarity_matrix``). Purely a speed/memory knob — results
        are identical for any positive value.
    kernel:
        Tier for :meth:`sketch_all`: ``"auto"`` (shape-dispatched, the
        default), ``"reference"``, ``"numpy"`` (alias ``"batched"``) or
        ``"native"``. All tiers are bit-identical.
    """

    num_hashes: int = 64
    seed: int = 0
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    kernel: str = "auto"
    _a: np.ndarray = field(init=False, repr=False)
    _b: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        autotune.validate_kernel(self.kernel, "minhash")
        rng = np.random.default_rng(self.seed)
        # a must be non-zero mod P for h to be a permutation.
        self._a = rng.integers(1, PRIME, size=self.num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, PRIME, size=self.num_hashes, dtype=np.uint64)

    def sketch(self, items: Iterable[int]) -> np.ndarray:
        """Sketch one set: ``min over x of (a·x + b) mod P`` per slot.

        The empty set sketches to all :data:`EMPTY_SLOT` sentinels, which
        never collide with real hash values (< PRIME < 2**64 - 1).
        Integer ndarrays skip the per-element conversion entirely.
        """
        arr = as_uint64_elements(items)
        if arr.size == 0:
            return np.full(self.num_hashes, EMPTY_SLOT, dtype=np.uint64)
        if int(arr.max()) >= UNIVERSE_SIZE:
            raise ValueError("element outside the pivot universe")
        # a*x can exceed 64 bits for 32-bit universes (a < 2**32+16,
        # x < 2**32 → product < 2**64.01); hash_elements computes the
        # modulo arithmetic in two uint64-safe halves.
        return hash_elements(arr, self._a, self._b, PRIME).min(axis=0)

    def sketch_all(self, sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Sketch a dataset; returns an ``(n_items, k)`` uint64 matrix.

        Dispatches on :attr:`kernel` via :mod:`repro.perf.autotune`:
        the ragged-batch numpy kernel (flat concatenation, chunked
        broadcasted hashing, ``np.minimum.reduceat``), the compiled
        native scan, or the per-set reference. Every tier is
        bit-identical to sketching each set with :meth:`sketch` (see
        :meth:`sketch_all_reference`).
        """
        if len(sets) == 0:
            return np.empty((0, self.num_hashes), dtype=np.uint64)
        flat, offsets = flatten_sets(sets)
        if flat.size and int(flat.max()) >= UNIVERSE_SIZE:
            raise ValueError("element outside the pivot universe")
        tier = autotune.resolve_tier(
            self.kernel, kind="minhash", work=flat.size * self.num_hashes
        )
        if tier == "reference":
            return self.sketch_all_reference(sets)
        if tier == "native":
            from repro.perf.native.minhash_njit import sketch_all_native

            return sketch_all_native(
                flat, offsets, self._a, self._b, prime=PRIME, empty_slot=EMPTY_SLOT
            )
        return sketch_batch(
            flat,
            offsets,
            self._a,
            self._b,
            prime=PRIME,
            empty_slot=EMPTY_SLOT,
            chunk_bytes=self.chunk_bytes,
        )

    def sketch_all_reference(self, sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Per-set reference for :meth:`sketch_all` — the oracle the
        batch kernel is benchmarked and property-tested against."""
        if len(sets) == 0:
            return np.empty((0, self.num_hashes), dtype=np.uint64)
        return np.stack([self.sketch(s) for s in sets])

    def similarity_matrix(self, sketches: np.ndarray) -> np.ndarray:
        """Pairwise estimated Jaccard similarities of sketched items."""
        return similarity_matrix_blocked(sketches, chunk_bytes=self.chunk_bytes)

    def similarity_matrix_reference(self, sketches: np.ndarray) -> np.ndarray:
        """Row-at-a-time reference for :meth:`similarity_matrix`."""
        sketches = np.asarray(sketches)
        n = sketches.shape[0]
        sim = np.empty((n, n), dtype=np.float64)
        for i in range(n):
            sim[i] = np.mean(sketches == sketches[i][None, :], axis=1)
        return sim
