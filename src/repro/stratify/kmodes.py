"""compositeKModes clustering over MinHash sketches.

Standard KModes keeps a single modal value per attribute in each cluster
centre; with huge universes and short sketches almost every point then
has *zero* matching attributes with every centre and cannot be assigned
meaningfully. The compositeKModes variant of Wang et al. keeps the ``L``
highest-frequency values per attribute instead (``L > 1``), so a point
matches an attribute if its value appears anywhere in the centre's
top-``L`` list. Convergence follows the usual KModes argument: both the
assignment and the centre-update step never increase the total mismatch
cost, so the cost is non-increasing and the algorithm terminates.

The assign and centre-update steps run on the batched kernels in
:mod:`repro.perf.kmodes_kernels` (chunked broadcast matching, a
bincount/scatter-min top-L update). The original Python-loop
implementations are kept behind ``kernel="reference"`` as the oracle
the kernels are property-tested against — both paths are bit-identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.perf.kmodes_kernels import factorize_columns, match_counts, top_l_centers
from repro.perf.minhash_kernels import DEFAULT_CHUNK_BYTES
from repro.perf import autotune


@dataclass
class KModesResult:
    """Outcome of a compositeKModes run.

    Attributes
    ----------
    labels:
        Cluster id per input row, shape ``(n,)``.
    centers:
        Top-``L`` value lists, shape ``(K, k, L)``; unused slots hold the
        per-cluster fill sentinel and never match data.
    cost:
        Final total mismatch count (sum over rows of unmatched attributes).
    iterations:
        Number of assign/update rounds performed.
    converged:
        Whether assignments stabilised before ``max_iter``.
    """

    labels: np.ndarray
    centers: np.ndarray
    cost: float
    iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Row counts per cluster id."""
        return np.bincount(self.labels, minlength=self.num_clusters)


#: Sentinel for unused top-L slots; chosen so it cannot equal a sketch
#: value (sketch values are < 2**64 - 1, and we offset per slot).
_FILL = np.uint64(0xFFFFFFFFFFFFFFFE)


@dataclass
class CompositeKModes:
    """compositeKModes over categorical (sketch) matrices.

    Parameters
    ----------
    num_clusters:
        ``K``, the number of strata to produce.
    top_l:
        ``L``, how many high-frequency values each centre keeps per
        attribute.
    max_iter:
        Cap on assign/update rounds.
    seed:
        RNG seed for centre initialisation.
    kernel:
        Matching tier: ``"auto"`` (shape-dispatched, the default),
        ``"numpy"`` (alias ``"batched"``) for the chunked-broadcast
        kernels of :mod:`repro.perf.kmodes_kernels`, ``"native"`` for
        the compiled matcher, or ``"reference"`` for the original
        Python-loop implementations. All tiers produce bit-identical
        labels, centres and cost.
    chunk_bytes:
        Ceiling on the batched matcher's equality temporary; a pure
        speed/memory knob.
    """

    num_clusters: int = 8
    top_l: int = 3
    max_iter: int = 50
    seed: int = 0
    kernel: str = "auto"
    chunk_bytes: int = DEFAULT_CHUNK_BYTES

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if self.top_l <= 0:
            raise ValueError("top_l must be positive")
        if self.max_iter <= 0:
            raise ValueError("max_iter must be positive")
        autotune.validate_kernel(self.kernel, "kmodes")

    # -- internals ---------------------------------------------------------

    def _resolve_tier(self, sketches: np.ndarray, num_clusters: int) -> str:
        n, k = sketches.shape
        return autotune.resolve_tier(
            self.kernel, kind="kmodes", work=n * num_clusters * k * self.top_l
        )

    def _match_counts(
        self, sketches: np.ndarray, centers: np.ndarray, tier: str
    ) -> np.ndarray:
        """``(n, K)`` matrix of matched-attribute counts."""
        if tier == "native":
            from repro.perf.native.kmodes_njit import match_counts_native

            return match_counts_native(sketches, centers)
        if tier == "numpy":
            return match_counts(sketches, centers, chunk_bytes=self.chunk_bytes)
        return self._match_counts_reference(sketches, centers)

    def _match_counts_reference(
        self, sketches: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Per-cluster reference matcher — the batched kernel's oracle."""
        n, k = sketches.shape
        K = centers.shape[0]
        counts = np.empty((n, K), dtype=np.int64)
        for c in range(K):
            # (n, k, L) equality, any over L, sum over k.
            hit = (sketches[:, :, None] == centers[c][None, :, :]).any(axis=2)
            counts[:, c] = hit.sum(axis=1)
        return counts

    def _update_centers_reference(
        self, sketches: np.ndarray, labels: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Counter-loop reference centre update — the sort kernel's oracle."""
        K = centers.shape[0]
        k = sketches.shape[1]
        new_centers = np.full_like(centers, _FILL)
        for c in range(K):
            members = sketches[labels == c]
            if members.shape[0] == 0:
                new_centers[c] = centers[c]  # keep stale centre; may re-capture
                continue
            for attr in range(k):
                top = Counter(members[:, attr].tolist()).most_common(self.top_l)
                for slot, (value, _freq) in enumerate(top):
                    new_centers[c, attr, slot] = value
        return new_centers

    # -- public API ----------------------------------------------------------

    def assign(self, sketches: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Assign rows to the nearest existing centres (no refitting).

        Supports the framework's incremental path: new data joins the
        strata learned on the original payload, so the one-time
        stratification cost is amortized across dataset growth.
        """
        sketches = np.ascontiguousarray(np.asarray(sketches, dtype=np.uint64))
        if sketches.ndim != 2:
            raise ValueError("sketches must be a 2-D matrix")
        if centers.ndim != 3 or centers.shape[1] != sketches.shape[1]:
            raise ValueError("centers do not match sketch dimensionality")
        tier = self._resolve_tier(sketches, centers.shape[0])
        counts = self._match_counts(sketches, centers, tier)
        return np.argmax(counts, axis=1).astype(np.int64)

    def fit(self, sketches: np.ndarray) -> KModesResult:
        """Cluster sketch rows; returns labels, centres and diagnostics.

        Parameters
        ----------
        sketches:
            ``(n, k)`` matrix of categorical values (uint64 MinHash slots).
        """
        sketches = np.ascontiguousarray(np.asarray(sketches, dtype=np.uint64))
        if sketches.ndim != 2:
            raise ValueError("sketches must be a 2-D matrix")
        n, k = sketches.shape
        if n == 0:
            raise ValueError("cannot cluster an empty dataset")
        K = min(self.num_clusters, n)

        rng = np.random.default_rng(self.seed)
        # Initialise each centre from a distinct random row; prefer rows
        # with distinct sketches when available so initial centres differ.
        _, unique_idx = np.unique(sketches, axis=0, return_index=True)
        pool = unique_idx if unique_idx.size >= K else np.arange(n)
        chosen = rng.choice(pool, size=K, replace=pool.size < K)
        centers = np.full((K, k, self.top_l), _FILL, dtype=np.uint64)
        centers[:, :, 0] = sketches[chosen]

        # Resolve the tier once per fit: the matcher dispatches on it,
        # and centre updates run on the batched sort kernel for every
        # non-reference tier (they execute once per iteration, not once
        # per row — the native tier only compiles the matcher).
        tier = self._resolve_tier(sketches, K)

        # The sketch matrix never changes across iterations, so the
        # batched path factorises it once (per-attribute dense codes)
        # and every centre update is a bincount/scatter-min over keys.
        if tier != "reference":
            codes, col_offsets, all_values = factorize_columns(sketches)

        labels = np.full(n, -1, dtype=np.int64)
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            counts = self._match_counts(sketches, centers, tier)
            new_labels = np.argmax(counts, axis=1).astype(np.int64)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
            if tier != "reference":
                centers = top_l_centers(
                    codes,
                    col_offsets,
                    all_values,
                    labels,
                    centers,
                    top_l=self.top_l,
                    fill=_FILL,
                    chunk_bytes=self.chunk_bytes,
                )
            else:
                centers = self._update_centers_reference(sketches, labels, centers)

        final_counts = self._match_counts(sketches, centers, tier)
        matched = final_counts[np.arange(n), labels]
        cost = float(np.sum(k - matched))
        return KModesResult(
            labels=labels,
            centers=centers,
            cost=cost,
            iterations=iterations,
            converged=converged,
        )
