"""Distributed stratification pipeline (paper Section IV).

The paper's middleware runs pivot extraction and sketch generation
*distributed* across the cluster nodes — each node processes its share
of the raw data and stores sketches in its local Redis instance — with
global barriers between phases, while sketch clustering runs
*centralized* on a master node ("the size of the sketches … is of
orders of magnitude smaller than the raw data size, which is why it is
easy to fit in a single machine"; distributed clustering over sketches
was "prohibitive in terms of runtime").

:class:`DistributedStratifier` reproduces that execution plan over the
in-process substrate: one worker thread per node, the barrier built on
the KV store's fetch-and-increment, sketches staged through each node's
store, and compositeKModes on the designated master. The result is
bit-identical to the centralized :class:`~repro.stratify.stratifier.Stratifier`
(asserted in tests) — the point is exercising the coordination path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.cluster.barrier import KVBarrier
from repro.cluster.cluster import Cluster
from repro.stratify.kmodes import CompositeKModes
from repro.stratify.minhash import MinHasher
from repro.stratify.pivots import PivotExtractor
from repro.stratify.stratifier import Stratification

_SKETCH_KEY = "sketches:{node}"
_INDEX_KEY = "sketch-index:{node}"


@dataclass
class DistributedStratifier:
    """Barrier-separated, per-node stratification over the KV middleware.

    Parameters mirror :class:`~repro.stratify.stratifier.Stratifier`;
    ``cluster`` supplies the nodes, their stores and the master choice.
    """

    cluster: Cluster
    kind: str
    num_strata: int = 16
    num_hashes: int = 48
    top_l: int = 3
    seed: int = 0
    max_iter: int = 50
    phases_completed: list[str] = field(default_factory=list)

    def _worker(
        self,
        node_id: int,
        items: Sequence[Any],
        indices: np.ndarray,
        barrier: KVBarrier,
        errors: list[BaseException],
    ) -> None:
        try:
            extractor = PivotExtractor(self.kind)
            hasher = MinHasher(num_hashes=self.num_hashes, seed=self.seed)
            store = self.cluster.kv.store_for(node_id)

            # Phase 1: pivot extraction (local).
            pivot_sets = [extractor(items[i]) for i in indices]
            barrier.wait(party_id=node_id)

            # Phase 2: sketch generation, staged into the local store.
            sketches = hasher.sketch_all(pivot_sets)
            store.set(_SKETCH_KEY.format(node=node_id), sketches.tobytes())
            store.set(_INDEX_KEY.format(node=node_id), indices.tobytes())
            barrier.wait(party_id=node_id)
        except BaseException as exc:  # repro: noqa[SILENT-EXCEPT] — not swallowed: collected per worker and re-raised by stratify() after join
            errors.append(exc)

    def stratify(self, items: Sequence[Any]) -> Stratification:
        """Run the distributed pipeline; returns the same
        :class:`Stratification` the centralized stratifier produces."""
        items = list(items)
        if not items:
            raise ValueError("cannot stratify an empty dataset")
        p = self.cluster.num_nodes
        self.phases_completed = []

        barrier_master, clustering_master = self.cluster.master_nodes()
        barrier = KVBarrier(
            store=self.cluster.kv.store_for(barrier_master.node_id),
            parties=p,
            name="stratify",
        )

        # Round-robin ownership of raw items, as a data-parallel load
        # of the unpartitioned input would give.
        ownership = [np.arange(node, len(items), p, dtype=np.int64) for node in range(p)]

        errors: list[BaseException] = []
        threads = [
            threading.Thread(
                target=self._worker,
                args=(node, items, ownership[node], barrier, errors),
                name=f"stratify-node-{node}",
            )
            for node in range(p)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        self.phases_completed = ["pivots", "sketches"]

        # Phase 3: the clustering master gathers every node's sketches
        # (one GET per node) and clusters centrally.
        gathered = np.empty((len(items), self.num_hashes), dtype=np.uint64)
        for node in range(p):
            store = self.cluster.kv.store_for(node)
            blob = store.get(_SKETCH_KEY.format(node=node))
            idx = np.frombuffer(
                store.get(_INDEX_KEY.format(node=node)), dtype=np.int64
            )
            sketches = np.frombuffer(blob, dtype=np.uint64).reshape(
                idx.size, self.num_hashes
            )
            gathered[idx] = sketches
        _ = clustering_master  # master selection recorded for parity w/ paper

        kmodes = CompositeKModes(
            num_clusters=self.num_strata,
            top_l=self.top_l,
            max_iter=self.max_iter,
            seed=self.seed + 1,
        )
        result = kmodes.fit(gathered)
        self.phases_completed.append("clustering")

        labels = result.labels
        strata = [
            np.flatnonzero(labels == s)
            for s in range(result.num_clusters)
            if np.any(labels == s)
        ]
        compact = np.empty(labels.size, dtype=np.int64)
        for new_id, members in enumerate(strata):
            compact[members] = new_id
        return Stratification(labels=compact, strata=strata, kmodes=result)
