"""Clustering/partition quality metrics (no sklearn dependency).

Used by the stratifier-sensitivity ablation and tests: adjusted Rand
index and normalized mutual information against planted labels, and
label entropy of partitions (the quantity the similar-together
placement minimizes for compression).
"""

from __future__ import annotations

import numpy as np


def _contingency(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("label arrays must be 1-D and equal length")
    if a.size == 0:
        raise ValueError("label arrays must be non-empty")
    if a.min() < 0 or b.min() < 0:
        raise ValueError("labels must be non-negative")
    table = np.zeros((a.max() + 1, b.max() + 1), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Hubert–Arabie adjusted Rand index in [-1, 1]; 1 = identical
    partitions (up to relabeling), ~0 = chance agreement."""
    table = _contingency(labels_a, labels_b)
    n = table.sum()
    sum_comb_cells = float((table * (table - 1) // 2).sum())
    rows = table.sum(axis=1)
    cols = table.sum(axis=0)
    sum_comb_rows = float((rows * (rows - 1) // 2).sum())
    sum_comb_cols = float((cols * (cols - 1) // 2).sum())
    total_pairs = float(n * (n - 1) // 2)
    if total_pairs == 0:
        return 1.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    max_index = 0.5 * (sum_comb_rows + sum_comb_cols)
    if max_index == expected:
        return 1.0
    return (sum_comb_cells - expected) / (max_index - expected)


def _entropy(counts: np.ndarray) -> float:
    counts = counts[counts > 0].astype(np.float64)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def normalized_mutual_information(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    table = _contingency(labels_a, labels_b).astype(np.float64)
    n = table.sum()
    h_a = _entropy(table.sum(axis=1))
    h_b = _entropy(table.sum(axis=0))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    p_joint = table / n
    p_a = table.sum(axis=1, keepdims=True) / n
    p_b = table.sum(axis=0, keepdims=True) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(p_joint > 0, p_joint / (p_a * p_b), 1.0)
        mi = float(np.where(p_joint > 0, p_joint * np.log(ratio), 0.0).sum())
    denom = 0.5 * (h_a + h_b)
    if denom == 0.0:
        return 1.0
    return max(0.0, min(1.0, mi / denom))


def partition_label_entropy(partitions, labels) -> float:
    """Mean per-partition entropy of ground-truth labels (nats),
    weighted by partition size. Similar-together placements drive this
    toward zero; representative placements toward the global entropy."""
    labels = np.asarray(labels, dtype=np.int64)
    total = 0
    weighted = 0.0
    for part in partitions:
        part = np.asarray(part, dtype=np.int64)
        if part.size == 0:
            continue
        counts = np.bincount(labels[part])
        weighted += part.size * _entropy(counts)
        total += part.size
    if total == 0:
        raise ValueError("all partitions are empty")
    return weighted / total
