"""Prüfer sequences for labelled trees.

The paper represents trees via Prüfer sequences (Prüfer 1918) before
pivot extraction. A labelled tree on ``n`` nodes maps bijectively to a
sequence of ``n - 2`` node ids; we implement both directions plus the
rooted-tree adjacency helpers the pivot extractor needs.

Trees are given as parent arrays: ``parent[i]`` is the parent of node
``i`` and the root has ``parent[root] == -1``. Node ids are 0-based and
contiguous.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np


def _validate_parent_array(parent: Sequence[int]) -> np.ndarray:
    arr = np.asarray(parent, dtype=np.int64)
    n = arr.size
    if n == 0:
        raise ValueError("tree must have at least one node")
    roots = np.flatnonzero(arr == -1)
    if roots.size != 1:
        raise ValueError(f"tree must have exactly one root, found {roots.size}")
    bad = (arr < -1) | (arr >= n)
    if bad.any():
        raise ValueError("parent ids out of range")
    # Reject self-loops (root already excluded by the -1 check).
    if (arr == np.arange(n)).any():
        raise ValueError("node cannot be its own parent")
    return arr


def adjacency_from_parents(parent: Sequence[int]) -> list[list[int]]:
    """Undirected adjacency lists of the tree defined by ``parent``."""
    arr = _validate_parent_array(parent)
    n = arr.size
    adj: list[list[int]] = [[] for _ in range(n)]
    for child in range(n):
        p = int(arr[child])
        if p >= 0:
            adj[child].append(p)
            adj[p].append(child)
    return adj


def prufer_sequence(parent: Sequence[int]) -> list[int]:
    """Compute the Prüfer sequence of the tree given as a parent array.

    Uses the classic leaf-pruning construction: repeatedly remove the
    smallest-id leaf and emit its neighbour, stopping when two nodes
    remain. Trees with fewer than three nodes have the empty sequence.

    Raises
    ------
    ValueError
        If ``parent`` does not describe a tree (cycle or disconnected).
    """
    arr = _validate_parent_array(parent)
    n = arr.size
    if n <= 2:
        return []
    adj = adjacency_from_parents(arr)
    degree = np.array([len(a) for a in adj], dtype=np.int64)
    # Cycle check: a valid parent array on n nodes with one root is always
    # a tree (n-1 edges, connected via parent pointers to the root) unless
    # a cycle exists among parent pointers; detect by walking up.
    seen_root = np.zeros(n, dtype=bool)
    for start in range(n):
        path = []
        v = start
        while v != -1 and not seen_root[v]:
            path.append(v)
            if len(path) > n:
                raise ValueError("cycle detected in parent array")
            v = int(arr[v])
        for u in path:
            seen_root[u] = True

    neighbour_sets = [set(a) for a in adj]
    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    removed = np.zeros(n, dtype=bool)
    seq: list[int] = []
    for _ in range(n - 2):
        leaf = heapq.heappop(leaves)
        removed[leaf] = True
        (nbr,) = (u for u in neighbour_sets[leaf] if not removed[u])
        seq.append(nbr)
        neighbour_sets[nbr].discard(leaf)
        degree[nbr] -= 1
        if degree[nbr] == 1:
            heapq.heappush(leaves, nbr)
    return seq


def tree_from_prufer(seq: Sequence[int], n: int | None = None) -> list[int]:
    """Reconstruct a parent array from a Prüfer sequence.

    The resulting tree is rooted at the largest node id (``n - 1``),
    which is always one of the final two nodes of the decoding.

    Parameters
    ----------
    seq:
        Prüfer sequence (length ``n - 2``).
    n:
        Number of nodes; defaults to ``len(seq) + 2``.
    """
    seq = list(seq)
    if n is None:
        n = len(seq) + 2
    if n < 1:
        raise ValueError("need at least one node")
    if len(seq) != max(n - 2, 0):
        raise ValueError(f"sequence length {len(seq)} does not match n={n}")
    if n == 1:
        return [-1]
    if n == 2:
        return [1, -1]
    if any(not 0 <= s < n for s in seq):
        raise ValueError("sequence entries out of range")

    degree = np.ones(n, dtype=np.int64)
    for s in seq:
        degree[s] += 1
    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    parent = [-1] * n
    for s in seq:
        leaf = heapq.heappop(leaves)
        parent[leaf] = s
        degree[s] -= 1
        if degree[s] == 1:
            heapq.heappush(leaves, s)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    # Root at the larger id; attach the smaller beneath it.
    lo, hi = min(u, v), max(u, v)
    parent[lo] = hi
    parent[hi] = -1
    return parent


def depths_from_parents(parent: Sequence[int]) -> np.ndarray:
    """Depth of every node (root has depth 0)."""
    arr = _validate_parent_array(parent)
    n = arr.size
    depth = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if depth[start] >= 0:
            continue
        path = []
        v = start
        while v != -1 and depth[v] < 0:
            path.append(v)
            v = int(arr[v])
        base = 0 if v == -1 else int(depth[v])
        for offset, u in enumerate(reversed(path), start=1):
            depth[u] = base + offset - (1 if v == -1 else 0)
    return depth


def lca(parent: Sequence[int], depth: np.ndarray, p: int, q: int) -> int:
    """Least common ancestor of ``p`` and ``q`` by depth-equalising walk."""
    arr = np.asarray(parent, dtype=np.int64)
    while depth[p] > depth[q]:
        p = int(arr[p])
    while depth[q] > depth[p]:
        q = int(arr[q])
    while p != q:
        p = int(arr[p])
        q = int(arr[q])
    return p
