"""End-to-end stratification pipeline: items → pivots → sketches → strata.

Glues the three stratifier stages together and exposes the two outputs
the rest of the framework consumes:

- a :class:`Stratification` (per-item stratum labels and per-stratum
  member indices), and
- *representative samples* — stratified samples without replacement at
  a given fraction, used by the heterogeneity estimator's progressive
  sampling so profiling runs see the same payload mix as the final
  partitions (Section III-E, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

import repro.obs as obs
from repro.stratify.kmodes import CompositeKModes, KModesResult
from repro.stratify.minhash import MinHasher
from repro.stratify.pivots import PivotExtractor


@dataclass
class Stratification:
    """Result of stratifying a dataset.

    Attributes
    ----------
    labels:
        Stratum id per item, shape ``(n,)``.
    strata:
        ``strata[s]`` is the sorted array of item indices in stratum ``s``.
        Every item appears in exactly one stratum.
    kmodes:
        The underlying clustering diagnostics.
    """

    labels: np.ndarray
    strata: list[np.ndarray]
    kmodes: KModesResult | None = None

    @property
    def num_items(self) -> int:
        return int(self.labels.size)

    @property
    def num_strata(self) -> int:
        return len(self.strata)

    def stratum_sizes(self) -> np.ndarray:
        return np.array([s.size for s in self.strata], dtype=np.int64)

    def stratified_sample(self, fraction: float, rng: np.random.Generator) -> np.ndarray:
        """Sample ``fraction`` of the items, proportionally per stratum,
        without replacement (Cochran-style stratified sampling).

        Rounds per-stratum counts with the largest-remainder method so
        the total is exactly ``round(fraction * n)`` (at least 1).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = max(1, int(round(fraction * self.num_items)))
        sizes = self.stratum_sizes().astype(np.float64)
        quotas = sizes * total / self.num_items
        counts = np.floor(quotas).astype(np.int64)
        remainder = total - int(counts.sum())
        if remainder > 0:
            order = np.argsort(-(quotas - counts))
            for idx in order[:remainder]:
                if counts[idx] < sizes[idx]:
                    counts[idx] += 1
        # Clip to availability (can undershoot when strata are tiny).
        counts = np.minimum(counts, sizes.astype(np.int64))
        picks: list[np.ndarray] = []
        for stratum, count in zip(self.strata, counts):
            if count > 0:
                picks.append(rng.choice(stratum, size=int(count), replace=False))
        if not picks:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(picks)
        rng.shuffle(out)
        return out

    def ordered_by_stratum(self) -> np.ndarray:
        """All item indices, ordered stratum 0 first, then 1, … — the
        layout the similar-together partitioner chunks."""
        if not self.strata:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.strata)


@dataclass
class Stratifier:
    """Configurable stratification pipeline.

    Parameters
    ----------
    kind:
        Input domain handed to :class:`PivotExtractor`
        (``"tree" | "graph" | "text" | "set"``).
    num_strata:
        Target number of strata (``K`` for compositeKModes).
    num_hashes:
        MinHash sketch length.
    top_l:
        compositeKModes ``L``.
    seed:
        Master seed; hashing and clustering derive independent streams.
    """

    kind: str
    num_strata: int = 16
    num_hashes: int = 48
    top_l: int = 3
    seed: int = 0
    max_iter: int = 50
    _extractor: PivotExtractor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_strata <= 0:
            raise ValueError("num_strata must be positive")
        self._extractor = PivotExtractor(self.kind)

    def sketch(self, items: Sequence) -> np.ndarray:
        """Pivot-extract and sketch a dataset; ``(n, num_hashes)``."""
        with obs.span(
            "stage.sketch", items=len(items), kind=self.kind, num_hashes=self.num_hashes
        ):
            pivot_sets = self._extractor.extract_all(items)
            hasher = MinHasher(num_hashes=self.num_hashes, seed=self.seed)
            return hasher.sketch_all(pivot_sets)

    def assign_new(
        self, stratification: Stratification, new_items: Sequence
    ) -> np.ndarray:
        """Assign *new* items to existing strata without reclustering.

        Sketches the new items with the same hash family and matches
        them against the fitted compositeKModes centres, so a growing
        dataset amortizes the one-time stratification cost (the paper's
        Section III motivation). Returns the compact stratum label per
        new item. Raises if the stratification carries no kmodes state.
        """
        if stratification.kmodes is None:
            raise ValueError("stratification has no kmodes centres to assign against")
        if len(new_items) == 0:
            return np.empty(0, dtype=np.int64)
        sketches = self.sketch(new_items)
        kmodes = CompositeKModes(
            num_clusters=self.num_strata, top_l=self.top_l, seed=self.seed + 1
        )
        raw = kmodes.assign(sketches, stratification.kmodes.centers)
        # Map raw kmodes cluster ids onto the compact stratum ids.
        raw_to_compact = {}
        for compact_id, members in enumerate(stratification.strata):
            raw_to_compact[int(stratification.kmodes.labels[members[0]])] = compact_id
        fallback = 0  # raw clusters that were empty at fit time
        return np.array(
            [raw_to_compact.get(int(r), fallback) for r in raw], dtype=np.int64
        )

    def stratify(
        self, items: Sequence, sketches: np.ndarray | None = None
    ) -> Stratification:
        """Run the full pipeline on ``items``.

        Pass precomputed ``sketches`` (from :meth:`sketch` with the same
        configuration) to skip re-sketching — callers that stage the
        pipeline, or that already sketched for another purpose, avoid
        paying the hash pass twice.
        """
        if len(items) == 0:
            raise ValueError("cannot stratify an empty dataset")
        with obs.span(
            "stage.stratify", items=len(items), num_strata=self.num_strata
        ) as sp:
            if sketches is None:
                sketches = self.sketch(items)
            elif sketches.shape != (len(items), self.num_hashes):
                raise ValueError(
                    f"sketches shape {sketches.shape} does not match "
                    f"({len(items)}, {self.num_hashes})"
                )
            kmodes = CompositeKModes(
                num_clusters=self.num_strata,
                top_l=self.top_l,
                max_iter=self.max_iter,
                seed=self.seed + 1,
            )
            result = kmodes.fit(sketches)
            labels = result.labels
            strata = [
                np.flatnonzero(labels == s)
                for s in range(result.num_clusters)
                if np.any(labels == s)
            ]
            # Re-label compactly so stratum ids are dense.
            compact = np.empty(labels.size, dtype=np.int64)
            for new_id, members in enumerate(strata):
                compact[members] = new_id
            sp.set_attr("strata", len(strata))
            return Stratification(labels=compact, strata=strata, kmodes=result)
