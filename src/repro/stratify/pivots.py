"""Domain-specific pivot extraction: trees, graphs and text → integer sets.

Step 1 of the paper's stratifier (Section III-C): every input item is
converted to a *set of items* so that all later stages (sketching,
clustering, partitioning) are domain independent.

- **Trees** are first encoded as Prüfer sequences; pivots ``(a, p, q)``
  are emitted for consecutive sequence entries ``p, q`` with ``a`` their
  least common ancestor. Pivots are formed over node *labels* so that
  structurally similar trees share pivots even when node ids differ.
- **Graphs** use the adjacency list (neighbour set) of each vertex.
- **Text** uses the set of token ids in each document.

All extractors return sets of non-negative ``int`` pivot ids in a
``2**32`` universe, produced by a deterministic (unsalted) mixer so runs
are reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.stratify.prufer import depths_from_parents, lca, prufer_sequence

#: Size of the pivot universe; MinHash permutations operate modulo a
#: prime just above this.
UNIVERSE_BITS = 32
UNIVERSE_SIZE = 1 << UNIVERSE_BITS

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finaliser — a deterministic, well-mixed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_pivot_id(*parts: int) -> int:
    """Deterministically hash an integer tuple into the pivot universe."""
    acc = 0x51_7C_C1_B7_27_22_0A_95
    for part in parts:
        acc = _mix64(acc ^ _mix64(int(part)))
    return acc & (UNIVERSE_SIZE - 1)


def tree_pivots(parent: Sequence[int], labels: Sequence[int]) -> set[int]:
    """Pivot set of one labelled tree.

    For consecutive Prüfer entries ``(p, q)`` the pivot is the label
    triple ``(label[lca(p,q)], label[p], label[q])`` hashed into the
    universe; tiny trees (< 4 nodes) fall back to parent-child label
    pairs so no tree maps to the empty set.
    """
    labels_arr = np.asarray(labels, dtype=np.int64)
    parent_arr = np.asarray(parent, dtype=np.int64)
    if labels_arr.size != parent_arr.size:
        raise ValueError("labels and parent arrays must have equal length")
    seq = prufer_sequence(parent_arr)
    pivots: set[int] = set()
    if len(seq) >= 2:
        depth = depths_from_parents(parent_arr)
        for p, q in zip(seq, seq[1:]):
            a = lca(parent_arr, depth, int(p), int(q))
            pivots.add(
                stable_pivot_id(labels_arr[a], labels_arr[p], labels_arr[q])
            )
    # Parent-child label pairs guarantee coverage of every edge's labels,
    # and give small trees a non-empty representation.
    for child in range(parent_arr.size):
        par = int(parent_arr[child])
        if par >= 0:
            pivots.add(stable_pivot_id(labels_arr[par], labels_arr[child], 0))
    return pivots


def graph_pivots(neighbours: Iterable[int]) -> set[int]:
    """Pivot set of one graph vertex: its neighbour ids, hashed.

    The paper uses the adjacency list directly as the pivot set; hashing
    keeps the universe uniform across domains.
    """
    return {stable_pivot_id(int(v), 1, 1) for v in neighbours}


def text_pivots(tokens: Iterable[int]) -> set[int]:
    """Pivot set of one document: its token ids, hashed."""
    return {stable_pivot_id(int(t), 2, 2) for t in tokens}


@dataclass(frozen=True)
class PivotExtractor:
    """Uniform front-end over the three domain extractors.

    ``kind`` selects the domain: ``"tree"`` items are
    ``(parent_array, labels)`` tuples; ``"graph"`` items are neighbour
    iterables; ``"text"`` items are token-id iterables; ``"set"`` items
    are already pivot sets and pass through unchanged.
    """

    kind: str

    _KINDS = ("tree", "graph", "text", "set")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"kind must be one of {self._KINDS}, got {self.kind!r}")

    def __call__(self, item) -> set[int]:
        if self.kind == "tree":
            parent, labels = item
            return tree_pivots(parent, labels)
        if self.kind == "graph":
            return graph_pivots(item)
        if self.kind == "text":
            return text_pivots(item)
        return {int(x) for x in item}

    def extract_all(self, items: Iterable) -> list[set[int]]:
        """Extract pivot sets for a whole dataset, preserving order."""
        return [self(item) for item in items]
