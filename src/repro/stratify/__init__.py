"""Data stratification: pivots → MinHash sketches → compositeKModes strata.

Implements Section III-C of the paper. The stratifier converts
heterogeneous inputs (trees, graphs, text) into a *universal* set
representation via domain-specific pivot extraction, projects those sets
to small MinHash sketches using min-wise independent linear
permutations, and clusters the sketches with the compositeKModes
algorithm of Wang et al. (ICDE 2013) to form strata of statistically
similar items.
"""

from repro.stratify.prufer import prufer_sequence, tree_from_prufer
from repro.stratify.pivots import (
    tree_pivots,
    graph_pivots,
    text_pivots,
    PivotExtractor,
)
from repro.stratify.minhash import (
    MinHasher,
    jaccard,
    sketch_jaccard,
)
from repro.stratify.kmodes import CompositeKModes, KModesResult
from repro.stratify.stratifier import Stratifier, Stratification
from repro.stratify.distributed import DistributedStratifier
from repro.stratify.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    partition_label_entropy,
)

__all__ = [
    "prufer_sequence",
    "tree_from_prufer",
    "tree_pivots",
    "graph_pivots",
    "text_pivots",
    "PivotExtractor",
    "MinHasher",
    "jaccard",
    "sketch_jaccard",
    "CompositeKModes",
    "KModesResult",
    "Stratifier",
    "Stratification",
    "DistributedStratifier",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "partition_label_entropy",
]
