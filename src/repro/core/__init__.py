"""The paper's primary contribution: Pareto-optimal heterogeneity-aware
data partitioning.

Pipeline (Figure 1 of the paper):

1. :mod:`repro.core.heterogeneity` — task-specific heterogeneity
   estimator: progressive sampling fits per-node time models
   ``f_i(x) = m_i·x + c_i``;
2. the green-energy estimator lives in :mod:`repro.energy` (each node's
   ``k_i = E_i − ḠE_i``);
3. the data stratifier lives in :mod:`repro.stratify`;
4. :mod:`repro.core.optimizer` — the scalarized multi-objective LP
   ``min α·v + (1−α)·Σ k_i f_i(x_i)``;
5. :mod:`repro.core.partitioner` — representative and similar-together
   placement of the optimizer's partition sizes.

:mod:`repro.core.framework` wires the five stages into the public
:class:`~repro.core.framework.ParetoPartitioner` API;
:mod:`repro.core.pareto` provides frontier sweeps and dominance checks;
:mod:`repro.core.strategies` names the paper's evaluated schemes.
"""

from repro.core.heterogeneity import (
    LinearTimeModel,
    PolynomialTimeModel,
    ProgressiveSampler,
    ProfilingReport,
)
from repro.core.optimizer import PartitionPlan, ParetoOptimizer, waterfill_makespan
from repro.core.budget import CarbonBudgetPlanner, BudgetInfeasibleError
from repro.core.pareto import pareto_dominates, pareto_front, ParetoPoint, frontier_sweep
from repro.core.partitioner import (
    representative_partitions,
    similar_partitions,
    random_partitions,
    round_robin_partitions,
    equal_sizes,
)
from repro.core.strategies import Strategy, STRATIFIED, HET_AWARE, het_energy_aware, RANDOM
from repro.core.framework import ParetoPartitioner, RunReport

__all__ = [
    "LinearTimeModel",
    "PolynomialTimeModel",
    "ProgressiveSampler",
    "ProfilingReport",
    "PartitionPlan",
    "ParetoOptimizer",
    "waterfill_makespan",
    "CarbonBudgetPlanner",
    "BudgetInfeasibleError",
    "pareto_dominates",
    "pareto_front",
    "ParetoPoint",
    "frontier_sweep",
    "representative_partitions",
    "similar_partitions",
    "random_partitions",
    "round_robin_partitions",
    "equal_sizes",
    "Strategy",
    "STRATIFIED",
    "HET_AWARE",
    "het_energy_aware",
    "RANDOM",
    "ParetoPartitioner",
    "RunReport",
]
