"""The public API: :class:`ParetoPartitioner` wires the five components.

Typical use::

    from repro.cluster import paper_cluster, SimulatedEngine
    from repro.core import ParetoPartitioner, HET_AWARE
    from repro.data import load_dataset
    from repro.workloads.fpm import AprioriWorkload

    dataset = load_dataset("rcv1")
    cluster = paper_cluster(8)
    engine = SimulatedEngine(cluster)
    pp = ParetoPartitioner(engine, kind=dataset.kind)
    report = pp.execute(dataset.items, AprioriWorkload(0.05), HET_AWARE)
    print(report.makespan_s, report.total_dirty_energy_j)

``prepare`` (stratify + profile + build optimizer) is the one-time cost
the paper amortizes over repeated runs; it can be reused across
strategies and α values on the same dataset/workload pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

import repro.obs as obs
from repro.cluster.engines import ExecutionEngine, JobResult
from repro.core.heterogeneity import ProfilingReport, ProgressiveSampler
from repro.core.optimizer import ParetoOptimizer, PartitionPlan
from repro.core.partitioner import (
    random_partitions,
    representative_partitions,
    round_robin_partitions,
    similar_partitions,
)
from repro.core.strategies import Strategy
from repro.kvstore.serializers import deserialize_item, serialize_item
from repro.stratify.stratifier import Stratification, Stratifier
from repro.workloads.base import Workload
from repro.workloads.fpm.apriori import AprioriWorkload, CandidateCountWorkload
from repro.workloads.fpm.eclat import EclatWorkload
from repro.workloads.fpm.fpgrowth import FPGrowthWorkload
from repro.workloads.fpm.treemining import TreeMiningWorkload


@dataclass
class PreparedInput:
    """Cached one-time work: stratification, profiling, optimizer."""

    items: list[Any]
    stratification: Stratification
    profiling: ProfilingReport
    optimizer: ParetoOptimizer
    window_s: float | None = None

    @property
    def num_items(self) -> int:
        return len(self.items)


@dataclass
class RunReport:
    """Everything one strategy execution produced."""

    strategy: Strategy
    plan: PartitionPlan
    job: JobResult
    kv_round_trips: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return self.job.makespan_s

    @property
    def total_dirty_energy_j(self) -> float:
        return self.job.total_dirty_energy_j

    @property
    def total_energy_j(self) -> float:
        return self.job.total_energy_j

    @property
    def merged_output(self) -> Any:
        return self.job.merged_output


@dataclass
class ParetoPartitioner:
    """Heterogeneity- and energy-aware partitioning framework.

    Parameters
    ----------
    engine:
        Execution engine over the target cluster (profiling and the
        final job run on the same engine).
    kind:
        Dataset domain for the stratifier
        (``"tree" | "graph" | "text" | "set"``).
    num_strata / num_hashes / top_l:
        Stratifier configuration (see :class:`Stratifier`).
    sample_fractions:
        Progressive-sampling fractions; defaults to the paper's
        0.05%–2% schedule.
    energy_window_s:
        Horizon over which mean green power is estimated for ``k_i``
        (None = whole trace).
    stage_via_kv:
        Round-trip final partitions through the KV middleware before
        execution, as the paper's implementation does.
    min_partition_items:
        Lower bound per het-aware partition; ``None`` auto-derives it
        from the smallest profiled sample (don't extrapolate the time
        model below its fitted range), ``0`` is the paper's
        unconstrained LP.
    """

    engine: ExecutionEngine
    kind: str
    num_strata: int = 16
    num_hashes: int = 48
    top_l: int = 3
    sample_fractions: Sequence[float] | None = None
    energy_window_s: float | None = None
    stage_via_kv: bool = True
    min_partition_items: int | None = None
    seed: int = 0

    def stratifier(self) -> Stratifier:
        return Stratifier(
            kind=self.kind,
            num_strata=self.num_strata,
            num_hashes=self.num_hashes,
            top_l=self.top_l,
            seed=self.seed,
        )

    # -- pipeline stages ---------------------------------------------------

    def prepare(self, items: Sequence[Any], workload: Workload) -> PreparedInput:
        """Stratify, profile and build the optimizer (the one-time cost)."""
        items = list(items)
        with obs.span("pipeline.prepare", items=len(items), kind=self.kind):
            stratification = self.stratifier().stratify(items)
            sampler_kwargs = {}
            if self.sample_fractions is not None:
                sampler_kwargs["fractions"] = tuple(self.sample_fractions)
            sampler = ProgressiveSampler(
                engine=self.engine, seed=self.seed, **sampler_kwargs
            )
            profiling = sampler.profile(workload, items, stratification)
            dirty = self.engine.cluster.dirty_power_coefficients(self.energy_window_s)
            optimizer = ParetoOptimizer(models=profiling.models, dirty_coeffs=dirty)
        return PreparedInput(
            items=items,
            stratification=stratification,
            profiling=profiling,
            optimizer=optimizer,
            window_s=self.energy_window_s,
        )

    def plan(self, prepared: PreparedInput, strategy: Strategy) -> PartitionPlan:
        """Partition sizes for a strategy: LP when het-aware, else equal."""
        n = prepared.num_items
        with obs.span(
            "stage.optimize", items=n, strategy=strategy.name, alpha=strategy.alpha
        ) as sp:
            if strategy.alpha is None:
                plan = prepared.optimizer.equal_split_plan(n)
            else:
                min_items = self.min_partition_items
                if min_items is None:
                    # Auto: never plan a partition smaller than the smallest
                    # sample the time model was fitted on.
                    min_items = min(prepared.profiling.sample_sizes)
                min_items = min(min_items, n // prepared.optimizer.num_partitions)
                plan = prepared.optimizer.solve(n, strategy.alpha, min_items=min_items)
            sp.set_attr("sizes", [int(s) for s in plan.sizes])
            return plan

    def place(
        self,
        prepared: PreparedInput,
        strategy: Strategy,
        plan: PartitionPlan,
    ) -> list[np.ndarray]:
        """Index arrays per partition, per the strategy's placement."""
        rng = np.random.default_rng(self.seed + 17)
        sizes = plan.sizes
        if strategy.placement == "representative":
            return representative_partitions(prepared.stratification, sizes, rng)
        if strategy.placement == "similar":
            return similar_partitions(prepared.stratification, sizes)
        if strategy.placement == "random":
            return random_partitions(prepared.num_items, sizes, rng)
        return round_robin_partitions(prepared.num_items, plan.num_partitions)

    def _materialize(
        self, prepared: PreparedInput, indices: list[np.ndarray]
    ) -> tuple[list[list[Any]], int]:
        """Turn index partitions into record partitions, optionally via KV."""
        partitions = [[prepared.items[i] for i in idx] for idx in indices]
        round_trips = 0
        if self.stage_via_kv:
            kv = self.engine.cluster.kv
            before = kv.total_round_trips()
            staged: list[list[Any]] = []
            for pid, records in enumerate(partitions):
                node = pid % self.engine.cluster.num_nodes
                kv.put_partition(
                    node, pid, [serialize_item(self.kind, r) for r in records]
                )
                fetched = kv.get_partition(node, pid)
                staged.append([deserialize_item(self.kind, f) for f in fetched])
            round_trips = kv.total_round_trips() - before
            partitions = staged
        return partitions, round_trips

    def measure_frontier(
        self,
        items: Sequence[Any],
        workload: Workload,
        alphas: Sequence[float],
        placement: str = "representative",
        prepared: PreparedInput | None = None,
    ) -> list[tuple[float, RunReport]]:
        """Execute the α sweep and return measured ``(α, report)`` pairs.

        The paper's Figure-5 primitive as a library call: one
        preparation pass, one execution per α (two-phase for mining
        workloads), in the given order. Feed the resulting
        ``(makespan, dirty energy)`` pairs to
        :func:`repro.core.pareto.pareto_front` or
        :func:`repro.bench.plotting.ascii_scatter`.
        """
        if not alphas:
            raise ValueError("need at least one alpha")
        if prepared is None:
            prepared = self.prepare(items, workload)
        is_mining = isinstance(
            workload,
            (AprioriWorkload, EclatWorkload, FPGrowthWorkload, TreeMiningWorkload),
        )
        out: list[tuple[float, RunReport]] = []
        for alpha in alphas:
            strategy = Strategy(name=f"alpha={alpha}", alpha=alpha, placement=placement)
            if is_mining:
                report = self.execute_fpm(items, workload, strategy, prepared=prepared)
            else:
                report = self.execute(items, workload, strategy, prepared=prepared)
            out.append((alpha, report))
        return out

    def plan_for_budget(
        self, prepared: PreparedInput, max_dirty_energy_j: float
    ) -> PartitionPlan:
        """The fastest plan whose predicted dirty energy fits a budget
        (Section III-B's provider carbon budget, inverted).

        Raises :class:`~repro.core.budget.BudgetInfeasibleError` when
        even the greenest plan overdraws.
        """
        from repro.core.budget import CarbonBudgetPlanner

        min_items = self.min_partition_items
        if min_items is None:
            min_items = min(prepared.profiling.sample_sizes)
        min_items = min(min_items, prepared.num_items // prepared.optimizer.num_partitions)
        planner = CarbonBudgetPlanner(prepared.optimizer)
        return planner.plan(
            prepared.num_items, max_dirty_energy_j, min_items=min_items
        )

    # -- end-to-end execution -------------------------------------------------

    def execute(
        self,
        items: Sequence[Any],
        workload: Workload,
        strategy: Strategy,
        prepared: PreparedInput | None = None,
    ) -> RunReport:
        """Full pipeline: prepare (or reuse), plan, place, stage, run."""
        with obs.span("pipeline.execute", strategy=strategy.name):
            if prepared is None:
                prepared = self.prepare(items, workload)
            plan = self.plan(prepared, strategy)
            with obs.span(
                "stage.partition", placement=strategy.placement, via_kv=self.stage_via_kv
            ):
                indices = self.place(prepared, strategy, plan)
                partitions, round_trips = self._materialize(prepared, indices)
            with obs.span("stage.execute", partitions=len(partitions)):
                job = self.engine.run_job(workload, partitions)
        return RunReport(strategy=strategy, plan=plan, job=job, kv_round_trips=round_trips)

    def execute_fpm(
        self,
        items: Sequence[Any],
        workload: Workload,
        strategy: Strategy,
        prepared: PreparedInput | None = None,
    ) -> RunReport:
        """Two-phase Savasere execution for mining workloads.

        Phase 1 mines locally; phase 2 counts the candidate union for
        global pruning. Reported makespan/energy sum both barrier-
        separated phases, as in the paper's evaluation.
        """
        if not isinstance(
            workload,
            (AprioriWorkload, EclatWorkload, FPGrowthWorkload, TreeMiningWorkload),
        ):
            raise TypeError("execute_fpm requires a local-mining workload")
        if prepared is None:
            prepared = self.prepare(items, workload)
        with obs.span("pipeline.execute_fpm", strategy=strategy.name):
            plan = self.plan(prepared, strategy)
            with obs.span(
                "stage.partition", placement=strategy.placement, via_kv=self.stage_via_kv
            ):
                indices = self.place(prepared, strategy, plan)
                partitions, round_trips = self._materialize(prepared, indices)

            with obs.span(
                "stage.execute", partitions=len(partitions), phase="local-mine"
            ):
                local_job = self.engine.run_job(workload, partitions)
            candidates = local_job.merged_output

            if isinstance(workload, TreeMiningWorkload):
                from repro.workloads.fpm.treemining import trees_to_pivot_sets

                count_parts = [trees_to_pivot_sets(p)[0] for p in partitions]
            else:
                count_parts = partitions
            total = sum(len(p) for p in partitions)
            counter = CandidateCountWorkload(
                candidates=sorted(candidates),
                min_support=workload.min_support,
                total_transactions=total,
            )
            # Phase 2 runs after the phase-1 barrier: bill its energy against
            # the later window of each node's green trace.
            with obs.span(
                "stage.execute", partitions=len(count_parts), phase="candidate-count"
            ):
                count_job = self.engine.run_job(
                    counter, count_parts, start_offset_s=local_job.makespan_s
                )
            frequent = count_job.merged_output

        combined = JobResult(
            tasks=local_job.tasks + count_job.tasks,
            makespan_s=local_job.makespan_s + count_job.makespan_s,
            total_dirty_energy_j=local_job.total_dirty_energy_j
            + count_job.total_dirty_energy_j,
            total_energy_j=local_job.total_energy_j + count_job.total_energy_j,
            merged_output=frequent,
        )
        return RunReport(
            strategy=strategy,
            plan=plan,
            job=combined,
            kv_round_trips=round_trips,
            extra={
                "candidates": len(candidates),
                "frequent": len(frequent),
                "false_positives": len(candidates) - len(frequent),
                "local_makespan_s": local_job.makespan_s,
                "count_makespan_s": count_job.makespan_s,
            },
        )
