"""Data partitioner (paper Section III-E): place items per the plan.

Two stratification-driven placements plus two naive baselines:

- :func:`representative_partitions` — every partition is a stratified
  sample without replacement of the whole payload (Cochran), so each
  partition mirrors the global distribution. Used for skew-sensitive
  mining workloads.
- :func:`similar_partitions` — items are ordered by stratum id and cut
  into consecutive chunks of the planned sizes, giving each partition
  minimal entropy. Used for compression workloads.
- :func:`random_partitions` / :func:`round_robin_partitions` — the
  naive baselines the paper's related work compares against.

All functions return lists of index arrays forming an exact partition
of ``range(n)`` whose sizes match the plan.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stratify.stratifier import Stratification


def equal_sizes(total_items: int, num_partitions: int) -> np.ndarray:
    """Equal split with remainders spread over the first partitions."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if total_items < 0:
        raise ValueError("total_items must be non-negative")
    base, extra = divmod(total_items, num_partitions)
    return np.array(
        [base + (1 if i < extra else 0) for i in range(num_partitions)], dtype=np.int64
    )


def _check_sizes(total_items: int, sizes: Sequence[int]) -> np.ndarray:
    arr = np.asarray(sizes, dtype=np.int64)
    if (arr < 0).any():
        raise ValueError("sizes must be non-negative")
    if int(arr.sum()) != total_items:
        raise ValueError(f"sizes sum to {int(arr.sum())}, expected {total_items}")
    return arr


def representative_partitions(
    stratification: Stratification,
    sizes: Sequence[int],
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Split every stratum across partitions proportionally to ``sizes``.

    Per-stratum quotas are rounded with the largest-remainder method;
    leftover slots are filled greedily from the partitions' deficits so
    the final sizes match the plan exactly while staying as close to
    proportional-within-stratum as integer arithmetic allows.
    """
    n = stratification.num_items
    arr = _check_sizes(n, sizes)
    rng = rng or np.random.default_rng(0)
    p = arr.size
    fractions = arr / max(n, 1)

    buckets: list[list[np.ndarray]] = [[] for _ in range(p)]
    filled = np.zeros(p, dtype=np.int64)
    leftovers: list[int] = []
    for members in stratification.strata:
        members = np.array(members, copy=True)
        rng.shuffle(members)
        quotas = fractions * members.size
        counts = np.floor(quotas).astype(np.int64)
        remainder = members.size - int(counts.sum())
        order = np.argsort(-(quotas - counts))
        for idx in order[:remainder]:
            counts[idx] += 1
        offset = 0
        for part in range(p):
            take = int(counts[part])
            if take:
                buckets[part].append(members[offset : offset + take])
                filled[part] += take
                offset += take
        leftovers.extend(members[offset:].tolist())

    # Rebalance: move surplus items into deficit partitions.
    deficit = arr - filled
    surplus_pool: list[int] = list(leftovers)
    for part in range(p):
        if deficit[part] < 0:
            # Give back the most recently added items.
            give = -int(deficit[part])
            while give > 0 and buckets[part]:
                chunk = buckets[part][-1]
                if chunk.size <= give:
                    surplus_pool.extend(chunk.tolist())
                    buckets[part].pop()
                    give -= chunk.size
                else:
                    surplus_pool.extend(chunk[-give:].tolist())
                    buckets[part][-1] = chunk[:-give]
                    give = 0
            deficit[part] = 0
    for part in range(p):
        need = int(deficit[part])
        if need > 0:
            take, surplus_pool = surplus_pool[:need], surplus_pool[need:]
            if take:
                buckets[part].append(np.array(take, dtype=np.int64))
    if surplus_pool:
        raise AssertionError("partition rebalancing failed to place all items")

    out: list[np.ndarray] = []
    for part in range(p):
        idx = (
            np.concatenate(buckets[part])
            if buckets[part]
            else np.empty(0, dtype=np.int64)
        )
        if idx.size != arr[part]:
            raise AssertionError("partition size mismatch after rebalancing")
        out.append(np.sort(idx))
    return out


def similar_partitions(
    stratification: Stratification, sizes: Sequence[int]
) -> list[np.ndarray]:
    """Order items by stratum and cut consecutive chunks of the planned
    sizes (the paper's low-entropy placement for compression)."""
    n = stratification.num_items
    arr = _check_sizes(n, sizes)
    ordered = stratification.ordered_by_stratum()
    out: list[np.ndarray] = []
    offset = 0
    for size in arr:
        out.append(ordered[offset : offset + int(size)])
        offset += int(size)
    return out


def random_partitions(
    total_items: int, sizes: Sequence[int], rng: np.random.Generator | None = None
) -> list[np.ndarray]:
    """Uniform random placement (the de-facto baseline of Section I)."""
    arr = _check_sizes(total_items, sizes)
    rng = rng or np.random.default_rng(0)
    perm = rng.permutation(total_items)
    out: list[np.ndarray] = []
    offset = 0
    for size in arr:
        out.append(np.sort(perm[offset : offset + int(size)]))
        offset += int(size)
    return out


def round_robin_partitions(total_items: int, num_partitions: int) -> list[np.ndarray]:
    """Deal items round-robin (the other de-facto baseline)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return [
        np.arange(start, total_items, num_partitions, dtype=np.int64)
        for start in range(num_partitions)
    ]
