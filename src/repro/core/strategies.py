"""Named partitioning strategies (the schemes of Section V).

========================= =========================== =====================
Strategy                  Sizes                       Placement
========================= =========================== =====================
Stratified (baseline)     equal                       stratification-driven
Het-Aware                 LP with α = 1.0             stratification-driven
Het-Energy-Aware          LP with α = 0.999 (mining)  stratification-driven
                          or 0.995 (compression)
Random (extra baseline)   equal                       uniform random
Round-robin (extra)       equal                       round robin
========================= =========================== =====================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: α used by the paper's Het-Energy-Aware mining runs (their scales).
PAPER_ALPHA_FPM = 0.999
#: α used by the paper's Het-Energy-Aware compression runs.
PAPER_ALPHA_COMPRESSION = 0.995

# The meaningful α band depends on the ratio of the two objectives'
# scales (the paper flags exactly this sensitivity and proposes 0-1
# normalization as future work). At this repo's scales — seconds vs
# joules with k·m ≈ 100× m — the knee of the tradeoff curve sits near
# α ≈ 0.99, the same *position on the frontier* the paper's 0.999/0.995
# occupy at their scales.
ALPHA_FPM = 0.997
ALPHA_COMPRESSION = 0.994


@dataclass(frozen=True)
class Strategy:
    """A partitioning scheme: how sizes are chosen and items placed.

    Parameters
    ----------
    name:
        Report label.
    alpha:
        Scalarization weight for the LP; ``None`` means equal sizes
        (no heterogeneity awareness).
    placement:
        ``"representative"`` (each partition mirrors the payload),
        ``"similar"`` (strata kept together), ``"random"`` or
        ``"round-robin"``.
    """

    name: str
    alpha: float | None
    placement: str = "representative"

    _PLACEMENTS = ("representative", "similar", "random", "round-robin")

    def __post_init__(self) -> None:
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.placement not in self._PLACEMENTS:
            raise ValueError(f"placement must be one of {self._PLACEMENTS}")

    @property
    def het_aware(self) -> bool:
        return self.alpha is not None

    def with_placement(self, placement: str) -> "Strategy":
        """Same sizing policy, different placement."""
        return replace(self, placement=placement)


STRATIFIED = Strategy(name="Stratified", alpha=None)
HET_AWARE = Strategy(name="Het-Aware", alpha=1.0)
RANDOM = Strategy(name="Random", alpha=None, placement="random")
ROUND_ROBIN = Strategy(name="Round-Robin", alpha=None, placement="round-robin")


def het_energy_aware(alpha: float = ALPHA_FPM) -> Strategy:
    """The Het-Energy-Aware scheme at a chosen tradeoff weight."""
    return Strategy(name="Het-Energy-Aware", alpha=alpha)
