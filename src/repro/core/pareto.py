"""Pareto dominance, frontiers, and α-sweeps (paper Sections III-D, V-D).

A solution is Pareto-optimal when no objective can improve without
degrading another. The scalarized LP produces one frontier point per
α; sweeping α from 1 to 0 traces the time–energy tradeoff curve of
Figure 5, on which the equal-split stratified baseline sits strictly
above (not Pareto-efficient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.optimizer import ParetoOptimizer, PartitionPlan

#: The α grid used for Figure 5-style sweeps: dense near 1.0 where the
#: interesting tradeoffs live (the objectives have different scales).
DEFAULT_ALPHA_GRID: tuple[float, ...] = (
    1.0, 0.9999, 0.9995, 0.999, 0.995, 0.99, 0.97, 0.95, 0.9, 0.8, 0.6, 0.4, 0.2, 0.0,
)


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the time–energy tradeoff curve."""

    alpha: float
    makespan_s: float
    dirty_energy_j: float

    def objectives(self) -> tuple[float, float]:
        return (self.makespan_s, self.dirty_energy_j)


def pareto_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good as ``b`` in every objective
    and strictly better in at least one (minimization)."""
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError("objective vectors must have equal length")
    return bool((a_arr <= b_arr).all() and (a_arr < b_arr).any())


def pareto_front(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points, in input order."""
    pts = [np.asarray(p, dtype=np.float64) for p in points]
    front: list[int] = []
    for i, p in enumerate(pts):
        dominated = any(
            pareto_dominates(q, p) for j, q in enumerate(pts) if j != i
        )
        if not dominated:
            front.append(i)
    return front


def is_pareto_efficient(point: Sequence[float], others: Iterable[Sequence[float]]) -> bool:
    """True when no point in ``others`` dominates ``point``."""
    return not any(pareto_dominates(q, point) for q in others)


def frontier_sweep(
    optimizer: ParetoOptimizer,
    total_items: int,
    alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
) -> list[tuple[ParetoPoint, PartitionPlan]]:
    """Solve the LP for each α and return predicted frontier points.

    Points use the optimizer's *predicted* makespan/energy; the bench
    harness re-measures them by executing the plans.
    """
    out: list[tuple[ParetoPoint, PartitionPlan]] = []
    for alpha in alphas:
        plan = optimizer.solve(total_items, alpha)
        out.append(
            (
                ParetoPoint(
                    alpha=alpha,
                    makespan_s=plan.predicted_makespan_s,
                    dirty_energy_j=plan.predicted_dirty_energy_j,
                ),
                plan,
            )
        )
    return out


def hypervolume_2d(points: Sequence[Sequence[float]], reference: Sequence[float]) -> float:
    """Dominated hypervolume of a 2-D minimization front w.r.t. a
    reference point — a scalar frontier-quality metric for tests.

    Points outside the reference box contribute nothing.
    """
    ref_x, ref_y = float(reference[0]), float(reference[1])
    front_idx = pareto_front(points)
    front = sorted(
        (
            (float(points[i][0]), float(points[i][1]))
            for i in front_idx
            if points[i][0] <= ref_x and points[i][1] <= ref_y
        ),
    )
    volume = 0.0
    prev_y = ref_y
    for x, y in front:
        if y < prev_y:
            volume += (ref_x - x) * (prev_y - y)
            prev_y = y
    return volume
