"""Carbon-budget planning on top of the Pareto optimizer.

The paper anticipates providers exposing a *carbon budget* per job
(Section III-B: "in future we expect such information will be provided
by the data center service provider in terms of carbon ratio guarantee
or carbon budget"). This module turns that interface around: given a
dirty-energy budget in joules, find the **fastest** plan that respects
it.

Because predicted dirty energy is monotone non-increasing as α falls
(scalarization property, tested in ``tests/core/test_optimizer.py``),
the planner bisects α between the fastest plan (α=1) and the greenest
plan (α=0) to the budget boundary, then returns the fastest feasible
plan found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import ParetoOptimizer, PartitionPlan


class BudgetInfeasibleError(ValueError):
    """Raised when even the greenest plan exceeds the dirty budget."""


@dataclass
class CarbonBudgetPlanner:
    """Finds the fastest partition plan within a dirty-energy budget.

    Parameters
    ----------
    optimizer:
        A configured :class:`ParetoOptimizer` (models + k coefficients).
    tolerance:
        Bisection width on α at which to stop refining.
    """

    optimizer: ParetoOptimizer
    tolerance: float = 1e-4

    def plan(
        self,
        total_items: int,
        max_dirty_energy_j: float,
        min_items: int = 0,
    ) -> PartitionPlan:
        """The fastest plan with predicted dirty energy ≤ the budget.

        Raises
        ------
        BudgetInfeasibleError
            If the α=0 (pure energy) plan already exceeds the budget.
        ValueError
            For non-positive budgets or item counts.
        """
        if max_dirty_energy_j <= 0:
            raise ValueError("budget must be positive")

        fastest = self.optimizer.solve(total_items, 1.0, min_items=min_items)
        if fastest.predicted_dirty_energy_j <= max_dirty_energy_j:
            return fastest

        greenest = self.optimizer.solve(total_items, 0.0, min_items=min_items)
        if greenest.predicted_dirty_energy_j > max_dirty_energy_j:
            raise BudgetInfeasibleError(
                f"greenest plan needs {greenest.predicted_dirty_energy_j:.1f} J, "
                f"budget is {max_dirty_energy_j:.1f} J"
            )

        lo, hi = 0.0, 1.0  # lo feasible, hi infeasible
        best = greenest
        while hi - lo > self.tolerance:
            mid = 0.5 * (lo + hi)
            plan = self.optimizer.solve(total_items, mid, min_items=min_items)
            if plan.predicted_dirty_energy_j <= max_dirty_energy_j:
                lo = mid
                if plan.predicted_makespan_s < best.predicted_makespan_s:
                    best = plan
            else:
                hi = mid
        return best

    def headroom(self, plan: PartitionPlan, max_dirty_energy_j: float) -> float:
        """Unused budget fraction in [0, 1] (negative = over budget)."""
        if max_dirty_energy_j <= 0:
            raise ValueError("budget must be positive")
        return 1.0 - plan.predicted_dirty_energy_j / max_dirty_energy_j
