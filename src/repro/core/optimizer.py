"""Scalarized multi-objective LP (paper Section III-D).

The partition-sizing problem:

.. math::

    \\min\\; \\alpha v + (1-\\alpha) \\sum_i k_i (m_i x_i + c_i)
    \\quad\\text{s.t.}\\quad v \\ge m_i x_i + c_i,\\; x_i \\ge 0,\\;
    \\sum_i x_i = N

with ``v`` the makespan, ``m_i, c_i`` the learned time-model
coefficients and ``k_i`` the dirty-power coefficients. Scalarization
guarantees every solution is Pareto-optimal; ``α = 1`` is the Het-Aware
special case. Solved with ``scipy.optimize.linprog`` (HiGHS), then
rounded to integer sizes with the largest-remainder method.

``normalize=True`` implements the paper's proposed fix for the scale
mismatch between the two objectives ("in future … normalizing both the
objective functions to 0-1 scale"): both terms are divided by their
value at the equal-split baseline, making α scale-free.

:func:`waterfill_makespan` is an independent closed-form solution of
the α=1 case, used to cross-check the LP in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.heterogeneity import LinearTimeModel


@dataclass
class PartitionPlan:
    """The optimizer's output: integer partition sizes plus predictions."""

    sizes: np.ndarray
    alpha: float
    predicted_makespan_s: float
    predicted_dirty_energy_j: float
    lp_objective: float = float("nan")

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        if (self.sizes < 0).any():
            raise ValueError("partition sizes must be non-negative")

    @property
    def num_partitions(self) -> int:
        return int(self.sizes.size)

    @property
    def total_items(self) -> int:
        return int(self.sizes.sum())


def _largest_remainder_round(x: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative reals to integers preserving their sum."""
    floors = np.floor(x).astype(np.int64)
    remainder = total - int(floors.sum())
    if remainder < 0:
        raise ValueError("rounding underflow")
    order = np.argsort(-(x - floors))
    out = floors.copy()
    for idx in order[:remainder]:
        out[idx] += 1
    return out


def predict_makespan(models: Sequence[LinearTimeModel], sizes: np.ndarray) -> float:
    """Max predicted runtime across partitions (empty partitions are free)."""
    times = [
        models[i].predict(float(s)) if s > 0 else 0.0 for i, s in enumerate(sizes)
    ]
    return max(times)


def predict_dirty_energy(
    models: Sequence[LinearTimeModel], dirty_coeffs: np.ndarray, sizes: np.ndarray
) -> float:
    """Σ k_i · f_i(x_i) over non-empty partitions."""
    total = 0.0
    for i, s in enumerate(sizes):
        if s > 0:
            total += dirty_coeffs[i] * models[i].predict(float(s))
    return float(total)


def waterfill_makespan(
    models: Sequence[LinearTimeModel], total_items: int
) -> np.ndarray:
    """Closed-form α=1 solution: equalize ``m_i x_i + c_i`` by water-filling.

    Finds ``v`` with ``Σ max(0, (v − c_i)/m_i) = N`` by bisection and
    returns the (real-valued) sizes. Nodes whose intercept already
    exceeds ``v`` get zero items.
    """
    m = np.array([mod.slope for mod in models], dtype=np.float64)
    c = np.array([mod.intercept for mod in models], dtype=np.float64)
    if (m <= 0).all():
        # All nodes are size-insensitive; split evenly.
        return np.full(len(models), total_items / len(models))
    usable = m > 0

    def assigned(v: float) -> float:
        x = np.zeros_like(m)
        x[usable] = np.maximum(0.0, (v - c[usable]) / m[usable])
        return float(x.sum())

    lo = float(c.min())
    hi = float(c.max() + m[usable].min() ** -1 * 0 + (total_items * m[usable].max() + c.max()))
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if assigned(mid) < total_items:
            lo = mid
        else:
            hi = mid
    v = 0.5 * (lo + hi)
    x = np.zeros_like(m)
    x[usable] = np.maximum(0.0, (v - c[usable]) / m[usable])
    # Nodes with m == 0 take nothing here; renormalise tiny drift.
    if x.sum() > 0:
        x *= total_items / x.sum()
    return x


@dataclass
class ParetoOptimizer:
    """The scalarized LP solver.

    Parameters
    ----------
    models:
        Per-node time models (from progressive sampling), node order.
    dirty_coeffs:
        Per-node dirty-power coefficients ``k_i`` (W), same order.
    normalize:
        Normalize both objectives by their equal-split value so α is
        scale-free (paper's future-work extension).
    """

    models: Sequence[LinearTimeModel]
    dirty_coeffs: Sequence[float]
    normalize: bool = False
    _k: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.models) == 0:
            raise ValueError("need at least one node model")
        if len(self.models) != len(self.dirty_coeffs):
            raise ValueError("models and dirty_coeffs must align per node")
        self._k = np.asarray(self.dirty_coeffs, dtype=np.float64)
        if (self._k < 0).any():
            raise ValueError("dirty coefficients must be non-negative")

    @property
    def num_partitions(self) -> int:
        return len(self.models)

    def equal_split_plan(self, total_items: int) -> PartitionPlan:
        """The stratified baseline: equal sizes, no heterogeneity awareness."""
        p = self.num_partitions
        sizes = _largest_remainder_round(
            np.full(p, total_items / p, dtype=np.float64), total_items
        )
        return PartitionPlan(
            sizes=sizes,
            alpha=float("nan"),
            predicted_makespan_s=predict_makespan(self.models, sizes),
            predicted_dirty_energy_j=predict_dirty_energy(self.models, self._k, sizes),
        )

    def _solve_lp(
        self, total_items: int, alpha: float, idle: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """One LP solve with the given idle-node mask; returns (x, obj)."""
        p = self.num_partitions
        m = np.array([mod.slope for mod in self.models], dtype=np.float64)
        c = np.array([mod.intercept for mod in self.models], dtype=np.float64)
        k = self._k

        time_scale = 1.0
        energy_scale = 1.0
        if self.normalize:
            baseline = self.equal_split_plan(total_items)
            time_scale = max(baseline.predicted_makespan_s, 1e-12)
            energy_scale = max(baseline.predicted_dirty_energy_j, 1e-12)

        # Variables z = [x_1..x_p, v].
        cost = np.concatenate(
            [(1.0 - alpha) * k * m / energy_scale, [alpha / time_scale]]
        )
        # m_i x_i − v ≤ −c_i  (idle nodes pay no time at all).
        active = ~idle
        rows = np.flatnonzero(active)
        a_ub = np.zeros((rows.size, p + 1))
        a_ub[np.arange(rows.size), rows] = m[rows]
        a_ub[:, -1] = -1.0
        b_ub = -c[rows]
        a_eq = np.zeros((1, p + 1))
        a_eq[0, :p] = 1.0
        b_eq = np.array([float(total_items)])
        bounds = [
            (0.0, 0.0) if idle[i] else (0.0, None) for i in range(p)
        ] + [(0.0, None)]

        res = linprog(
            cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
        )
        if not res.success:
            raise RuntimeError(f"LP failed: {res.message}")
        obj = float(res.fun) + (1.0 - alpha) * float(
            np.sum(k[active] * c[active])
        ) / energy_scale
        return np.maximum(res.x[:p], 0.0), obj

    def solve(self, total_items: int, alpha: float, min_items: int = 0) -> PartitionPlan:
        """Optimize partition sizes for the given tradeoff weight ``α``.

        Parameters
        ----------
        min_items:
            Semi-continuous lower bound: each partition is either empty
            (its node idles) or holds at least ``min_items`` items. The
            time model was fitted on samples no smaller than this, so
            slivers below it would run on an extrapolated — and for
            relative-support mining, badly wrong — cost model. ``0``
            reproduces the paper's plain LP. Enforced by iteratively
            re-solving with sliver nodes forced idle (the standard
            LP-relaxation heuristic for semi-continuous variables).

        Raises
        ------
        ValueError
            For α outside [0, 1] or non-positive item counts.
        RuntimeError
            If the LP solver fails (should not happen: the feasible
            region is a non-empty bounded polytope).
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if total_items <= 0:
            raise ValueError("total_items must be positive")
        if min_items < 0:
            raise ValueError("min_items must be non-negative")
        p = self.num_partitions
        idle = np.zeros(p, dtype=bool)
        x = np.zeros(p)
        obj = float("nan")
        c = np.array([mod.intercept for mod in self.models])
        m = np.array([mod.slope for mod in self.models])
        for _ in range(p):
            x, obj = self._solve_lp(total_items, alpha, idle)
            if min_items == 0:
                break
            # Below-floor nodes (zeros included) should idle: a node left
            # at zero still floors the makespan with its intercept
            # (v ≥ c_i), and a sliver runs on an extrapolated cost model.
            # Retire the least capable offender first — largest intercept,
            # then largest slope — and re-solve; each drop only relaxes
            # the makespan constraint set.
            slivers = (x < min_items - 1e-9) & ~idle
            if not slivers.any() or int(idle.sum()) >= p - 1:
                break
            order = np.lexsort((-m, -c))
            drop = next(i for i in order if slivers[i])
            idle[int(drop)] = True
        sizes = _largest_remainder_round(x, total_items)
        k = self._k
        return PartitionPlan(
            sizes=sizes,
            alpha=alpha,
            predicted_makespan_s=predict_makespan(self.models, sizes),
            predicted_dirty_energy_j=predict_dirty_energy(self.models, k, sizes),
            lp_objective=obj,
        )
