"""Task-specific heterogeneity estimator (paper Section III-A).

Learns a per-node utility function for execution time by *progressive
sampling*: representative samples of increasing size (0.05%–2% of the
data, drawn stratified so they mirror the final partition payload) are
run through the actual algorithm on every node, and a regression model
``f_i(x) = m_i·x + c_i`` is fitted to the (size, time) pairs.

Because the samples run on the same execution substrate as the final
job, the learned model absorbs everything the paper lists — CPU/IO
ratio, co-location interference (emulated here as speed factors), and
payload distribution — rather than trusting nominal CPU speeds.

A polynomial alternative is provided for the Section III-D ablation:
with the few samples progressive sampling affords, higher-degree fits
overfit, which the ablation bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

import numpy as np

import repro.obs as obs
from repro.cluster.engines import ExecutionEngine
from repro.stratify.stratifier import Stratification
from repro.workloads.base import Workload

#: The paper's progressive-sampling fractions: 0.05% up to 2%.
PAPER_FRACTIONS: tuple[float, ...] = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02)

#: Fractions for laptop-scale datasets, spanning 5%–20% so even the
#: smallest probe is big enough that per-item cost has stabilised
#: (for relative-support mining, a sample below ~1/min_support items
#: degenerates to min-count 1 and the fitted model inverts).
SMALL_DATA_FRACTIONS: tuple[float, ...] = (0.05, 0.08, 0.12, 0.16, 0.2)


def auto_fractions(num_items: int, min_sample: int = 8) -> tuple[float, ...]:
    """Pick a sampling schedule for the dataset scale.

    The paper's 0.05%–2% schedule assumes millions of records; when 2%
    of the data is smaller than a few times ``min_sample`` the probes
    collapse onto near-identical sizes and the regression degenerates,
    so small datasets get a proportionally wider schedule.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if PAPER_FRACTIONS[0] * num_items >= min_sample:
        return PAPER_FRACTIONS
    return SMALL_DATA_FRACTIONS


class TimeModel(Protocol):
    """Anything that predicts runtime from a partition size."""

    def predict(self, x: float) -> float: ...


@dataclass(frozen=True)
class LinearTimeModel:
    """``f(x) = slope·x + intercept`` — the paper's production model.

    The slope is clamped non-negative at fit time (a bigger partition
    can never be predicted faster), and prediction clamps at zero.
    """

    slope: float
    intercept: float

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ValueError("slope must be non-negative")

    def predict(self, x: float) -> float:
        if x < 0:
            raise ValueError("size must be non-negative")
        return max(self.slope * x + self.intercept, 0.0)

    @classmethod
    def fit(cls, sizes: Sequence[float], times: Sequence[float]) -> "LinearTimeModel":
        """Least-squares fit with slope clamped ≥ 0 and intercept ≥ 0."""
        x = np.asarray(sizes, dtype=np.float64)
        y = np.asarray(times, dtype=np.float64)
        if x.size != y.size or x.size < 2:
            raise ValueError("need at least two (size, time) pairs")
        slope, intercept = np.polyfit(x, y, 1)
        slope = max(float(slope), 0.0)
        if slope == 0.0:
            intercept = float(y.mean())
        intercept = max(float(intercept), 0.0)
        return cls(slope=slope, intercept=intercept)


@dataclass(frozen=True)
class PolynomialTimeModel:
    """Degree-``d`` polynomial fit — the ablation alternative.

    Coefficients in :func:`numpy.polyval` order (highest degree first).
    """

    coefficients: tuple[float, ...]

    def predict(self, x: float) -> float:
        if x < 0:
            raise ValueError("size must be non-negative")
        return max(float(np.polyval(self.coefficients, x)), 0.0)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @classmethod
    def fit(
        cls, sizes: Sequence[float], times: Sequence[float], degree: int = 2
    ) -> "PolynomialTimeModel":
        x = np.asarray(sizes, dtype=np.float64)
        y = np.asarray(times, dtype=np.float64)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if x.size <= degree:
            raise ValueError("need more samples than the polynomial degree")
        coeffs = np.polyfit(x, y, degree)
        return cls(coefficients=tuple(float(c) for c in coeffs))


@dataclass
class ProfilingReport:
    """Everything the progressive-sampling pass produced.

    Attributes
    ----------
    models:
        One fitted :class:`LinearTimeModel` per node, node-id order.
    sample_sizes:
        Sample sizes (item counts) probed, ascending.
    times:
        ``times[node][j]`` = measured runtime of sample ``j`` on node.
    r_squared:
        Per-node coefficient of determination of the linear fit.
    """

    models: list[LinearTimeModel]
    sample_sizes: list[int]
    times: list[list[float]]
    r_squared: list[float] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.models)


def _r_squared(x: np.ndarray, y: np.ndarray, model: LinearTimeModel) -> float:
    pred = np.array([model.predict(v) for v in x])
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass
class ProgressiveSampler:
    """Progressive-sampling profiler.

    Parameters
    ----------
    engine:
        Execution engine whose nodes are being profiled (the final job
        must run on the same engine for the models to transfer).
    fractions:
        Sample-size fractions of the dataset, ascending; the paper uses
        0.05%–2%.
    min_sample:
        Floor on sample item count, so tiny datasets still give the
        regression distinct x-values.
    """

    engine: ExecutionEngine
    fractions: Sequence[float] | None = None
    min_sample: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fractions is None:
            return  # resolved per dataset in profile()
        fr = tuple(self.fractions)
        if not fr or any(not 0.0 < f <= 1.0 for f in fr):
            raise ValueError("fractions must be in (0, 1]")
        if list(fr) != sorted(fr):
            raise ValueError("fractions must be ascending")
        if len(fr) < 2:
            raise ValueError("need at least two sample fractions")
        self.fractions = fr

    def profile(
        self,
        workload: Workload,
        items: Sequence[Any],
        stratification: Stratification,
    ) -> ProfilingReport:
        """Fit one time model per cluster node.

        Samples are *stratified* samples of ``items`` (Section III-E:
        the stratifier feeds the estimator payload-representative
        samples), re-drawn per fraction with a deterministic RNG.
        """
        rng = np.random.default_rng(self.seed)
        n_items = len(items)
        if n_items == 0:
            raise ValueError("cannot profile an empty dataset")
        with obs.span("stage.profile", items=n_items) as profile_span:
            report = self._profile(workload, items, stratification, rng, n_items)
            profile_span.set_attr("sample_sizes", list(report.sample_sizes))
            profile_span.set_attr("nodes", report.num_nodes)
            return report

    def _profile(
        self,
        workload: Workload,
        items: Sequence[Any],
        stratification: Stratification,
        rng: np.random.Generator,
        n_items: int,
    ) -> ProfilingReport:
        num_nodes = self.engine.cluster.num_nodes
        fractions = (
            auto_fractions(n_items, self.min_sample)
            if self.fractions is None
            else tuple(self.fractions)
        )

        sizes: list[int] = []
        samples: list[list[Any]] = []
        for fraction in fractions:
            target = max(self.min_sample, int(round(fraction * n_items)))
            target = min(target, n_items)
            idx = stratification.stratified_sample(min(1.0, target / n_items), rng)
            if idx.size < 2:
                idx = rng.choice(n_items, size=min(target, n_items), replace=False)
            # Skip duplicate sizes — they add no regression information.
            if sizes and idx.size <= sizes[-1]:
                continue
            sizes.append(int(idx.size))
            samples.append([items[i] for i in idx])
        if len(sizes) < 2:
            # Dataset too small for distinct fractions: probe half and full.
            half = max(1, n_items // 2)
            idx = rng.choice(n_items, size=half, replace=False)
            sizes = [half, n_items]
            samples = [[items[i] for i in idx], list(items)]

        # One probe per (sample, node); engines that can derive all nodes
        # from a single run do so inside profile_all_nodes. Samples run
        # smallest-first, so for measured engines (persistent process
        # pool) any cold-pool start-up noise lands on the cheapest probe.
        per_sample = [self.engine.profile_all_nodes(workload, s) for s in samples]
        models: list[LinearTimeModel] = []
        r2: list[float] = []
        times: list[list[float]] = []
        x = np.array(sizes, dtype=np.float64)
        for node_id in range(num_nodes):
            node_times = [per_sample[j][node_id] for j in range(len(samples))]
            y = np.array(node_times, dtype=np.float64)
            model = LinearTimeModel.fit(x, y)
            times.append(node_times)
            models.append(model)
            r2.append(_r_squared(x, y, model))
        return ProfilingReport(models=models, sample_sizes=sizes, times=times, r_squared=r2)
