"""Thin stdlib HTTP front end for the job service.

Zero new runtime dependencies: ``http.server.ThreadingHTTPServer``
handles each request on its own thread, and every handler is a few
milliseconds of queue/table work against the :class:`JobManager` — the
actual jobs run on the manager's worker threads, never on request
threads.

Routes (all bodies JSON):

====== ========================= ===========================================
POST   /v1/jobs                  submit a job spec → 202 (queued) or
                                 429 + ``Retry-After`` (rejected) or 400
GET    /v1/jobs/<id>             job status snapshot (404 unknown/expired)
GET    /v1/jobs/<id>/result      result payload (409 until terminal)
POST   /v1/jobs/<id>/cancel      cancel a queued job
POST   /v1/drain                 stop admission, drain in the background
GET    /healthz                  liveness + queue posture
GET    /v1/stats                 full manager stats
GET    /metrics                  Prometheus text exposition
GET    /live                     live-plane snapshot + event long-poll
                                 (503 until the live plane is enabled;
                                 ``?since=<seq>&timeout=<s>`` long-polls)
====== ========================= ===========================================
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import repro.obs as obs
from repro.obs.live import active_plane
from repro.obs.log import get_logger, log_event
from repro.service.jobs import JobSpec, JobState
from repro.service.manager import JobManager

__all__ = ["ServiceHTTPServer"]

_log = get_logger(__name__)

_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in ServiceHTTPServer.
    manager: JobManager

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        log_event(
            _log, logging.DEBUG, "service.http",
            client=self.client_address[0], line=fmt % args,
        )

    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body too large"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except ValueError:
            self._send_json(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return payload

    # -- routes -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "jobs"]:
            return self._submit()
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "cancel":
            return self._cancel(parts[2])
        if parts == ["v1", "drain"]:
            return self._drain()
        self._send_json(404, {"error": f"no such route POST {self.path}"})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            return self._healthz()
        if parts == ["metrics"]:
            return self._metrics()
        if parts == ["live"]:
            return self._live()
        if parts == ["v1", "stats"]:
            return self._send_json(200, self.manager.stats())
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return self._status(parts[2])
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            return self._result(parts[2])
        self._send_json(404, {"error": f"no such route GET {self.path}"})

    def _submit(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        try:
            spec = JobSpec.from_dict(payload)
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        record = self.manager.submit(spec)
        if record.state is JobState.REJECTED:
            retry = record.retry_after_s or 0.0
            self._send_json(
                429,
                record.snapshot(),
                headers={"Retry-After": f"{max(retry, 0.0):.3f}"},
            )
            return
        self._send_json(202, record.snapshot())

    def _status(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown (or expired) job {job_id!r}"})
            return
        self._send_json(200, record.snapshot())

    def _result(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown (or expired) job {job_id!r}"})
            return
        if not record.done:
            self._send_json(
                409,
                {"error": "job is not finished", "state": record.state.value},
            )
            return
        self._send_json(
            200,
            {
                "job_id": record.job_id,
                "state": record.state.value,
                "result": record.result,
                "error": record.error,
                "queue_wait_s": record.queue_wait_s,
                "run_s": record.run_s,
            },
        )

    def _cancel(self, job_id: str) -> None:
        record = self.manager.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown (or expired) job {job_id!r}"})
            return
        cancelled = self.manager.cancel(job_id)
        self._send_json(
            200, {"job_id": job_id, "cancelled": cancelled, "state": record.state.value}
        )

    def _drain(self) -> None:
        threading.Thread(
            target=self.manager.drain, name="repro-service-drain", daemon=True
        ).start()
        self._send_json(202, {"draining": True})

    def _healthz(self) -> None:
        stats = self.manager.stats()
        self._send_json(
            200,
            {
                "status": "ok" if stats["accepting"] else "draining",
                "queue_depth": stats["queue_depth"],
                "running": stats["running"],
                "accepting": stats["accepting"],
            },
        )

    def _live(self) -> None:
        plane = active_plane()
        if plane is None:
            self._send_json(
                503,
                {
                    "error": "live telemetry plane is not enabled "
                    "(start the service with --live / enable_live())"
                },
            )
            return
        query = urllib.parse.parse_qs(urllib.parse.urlparse(self.path).query)

        def _number(key: str, default: float) -> float:
            try:
                return float(query[key][0])
            except (KeyError, IndexError, ValueError):
                return default

        since = int(_number("since", 0))
        # Long-poll bounded well under typical client timeouts; 0 means
        # answer immediately with whatever is buffered.
        timeout_s = min(max(_number("timeout", 0.0), 0.0), 30.0)
        events = plane.bus.wait_for(since, timeout_s=timeout_s, limit=500)
        stats = self.manager.stats()
        self._send_json(
            200,
            {
                "seq": plane.bus.last_seq,
                "events": events,
                "snapshot": plane.snapshot(),
                "queue": {
                    "queue_depth": stats["queue_depth"],
                    "running": stats["running"],
                    "accepting": stats["accepting"],
                },
            },
        )

    def _metrics(self) -> None:
        body = obs.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServiceHTTPServer:
    """Owns a :class:`ThreadingHTTPServer` bound to a manager.

    ``port=0`` binds an ephemeral port (tests, the load harness);
    :attr:`url` reports the resolved address either way.
    """

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 8642):
        handler = type("BoundHandler", (_Handler,), {"manager": manager})
        self.manager = manager
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
            log_event(_log, logging.INFO, "service.http.started", url=self.url)
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the ``repro serve`` foreground path)."""
        log_event(_log, logging.INFO, "service.http.serving", url=self.url)
        self._httpd.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        """Stop accepting connections (does not drain the manager)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
