"""Tiny urllib client for the service HTTP API.

Used by ``repro submit`` and the open-loop load harness; kept
dependency-free (``urllib.request``) like the rest of the repo. A 429
backpressure response is **not** an exception — it comes back as a
normal :class:`ServiceResponse` with ``status == 429`` and the
``retry_after_s`` hint, because rejected-with-hint is an expected
answer under load, not a client error.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ServiceResponse", "ServiceClient", "ServiceUnavailableError"]


class ServiceUnavailableError(ConnectionError):
    """The service endpoint could not be reached at all."""


@dataclass
class ServiceResponse:
    """One HTTP exchange: status code + parsed JSON body + headers."""

    status: int
    body: dict[str, Any]
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def rejected(self) -> bool:
        return self.status == 429

    @property
    def retry_after_s(self) -> float | None:
        value = self.body.get("retry_after_s")
        if value is not None:
            return float(value)
        header = self.headers.get("Retry-After")
        return None if header is None else float(header)


class ServiceClient:
    """Blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> ServiceResponse:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return ServiceResponse(
                    status=resp.status,
                    body=json.loads(resp.read().decode("utf-8") or "{}"),
                    headers=dict(resp.headers.items()),
                )
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry a JSON body (rejections, 404s, ...).
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw or "{}")
            except ValueError:
                body = {"error": raw}
            return ServiceResponse(
                status=exc.code, body=body, headers=dict(exc.headers.items())
            )
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} unreachable: {exc.reason}"
            ) from exc

    # -- API ----------------------------------------------------------------

    def submit(self, spec: dict[str, Any]) -> ServiceResponse:
        return self._request("POST", "/v1/jobs", spec)

    def status(self, job_id: str) -> ServiceResponse:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> ServiceResponse:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> ServiceResponse:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def drain(self) -> ServiceResponse:
        return self._request("POST", "/v1/drain")

    def healthz(self) -> ServiceResponse:
        return self._request("GET", "/healthz")

    def stats(self) -> ServiceResponse:
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        req = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
            return resp.read().decode("utf-8")

    def wait(
        self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> ServiceResponse:
        """Poll until the job reaches a terminal state; returns the
        final ``/result`` response (409 never escapes unless timed out)."""
        deadline = time.monotonic() + timeout_s
        while True:
            resp = self.result(job_id)
            if resp.status != 409:
                return resp
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {resp.body.get('state')} after {timeout_s}s"
                )
            time.sleep(poll_s)
