"""Job records for the always-on partition service.

A *job* is one request to run the framework pipeline — a workload on a
registry dataset with a per-request operating point (``alpha``) — on
the service's long-lived cluster. :class:`JobSpec` is the validated
request payload (what crosses the HTTP boundary), :class:`JobRecord`
is the server-side lifecycle record the :class:`~repro.service.manager.JobManager`
moves through

::

    QUEUED → RUNNING → SUCCEEDED | FAILED
       ↘ CANCELLED                     (cancel while queued)

plus the admission-control terminal state ``REJECTED`` (never queued:
queue full, tenant over its in-flight cap, or the service draining).
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.data.datasets import DATASET_NAMES

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "MINING_WORKLOADS",
    "SERVICE_WORKLOADS",
    "build_workload",
    "default_placement",
]

MINING_WORKLOADS = ("apriori", "eclat", "fpgrowth", "treemining")
SERVICE_WORKLOADS = MINING_WORKLOADS + ("webgraph", "lz77")

#: Dataset kinds each workload can mine (treemining needs trees; the
#: other miners need set-shaped items, i.e. text; compression runs on
#: anything the pivot extractor handles).
_WORKLOAD_KINDS = {
    "apriori": ("text",),
    "eclat": ("text",),
    "fpgrowth": ("text",),
    "treemining": ("tree",),
    "webgraph": ("graph", "text", "tree"),
    "lz77": ("graph", "text", "tree"),
}

_DATASET_KINDS = {
    "swissprot": "tree",
    "treebank": "tree",
    "uk": "graph",
    "arabic": "graph",
    "rcv1": "text",
}


class JobState(str, Enum):
    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    REJECTED = "REJECTED"


TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.REJECTED}
)

_ids = itertools.count(1)


def _new_job_id() -> str:
    # pid prefix keeps ids unique if two services share a results dir.
    return f"job-{os.getpid():x}-{next(_ids):06d}"


def default_placement(workload: str) -> str:
    """Similar-together for compression, representative for mining —
    the same defaults the CLI ``compare`` command uses."""
    return "similar" if workload in ("webgraph", "lz77") else "representative"


def build_workload(name: str, support: float):
    """Instantiate a workload by service name."""
    if name == "apriori":
        from repro.workloads.fpm.apriori import AprioriWorkload

        return AprioriWorkload(min_support=support, max_len=3)
    if name == "eclat":
        from repro.workloads.fpm.eclat import EclatWorkload

        return EclatWorkload(min_support=support, max_len=3)
    if name == "fpgrowth":
        from repro.workloads.fpm.fpgrowth import FPGrowthWorkload

        return FPGrowthWorkload(min_support=support, max_len=3)
    if name == "treemining":
        from repro.workloads.fpm.treemining import TreeMiningWorkload

        return TreeMiningWorkload(min_support=support, max_len=2)
    from repro.workloads.compression.distributed import CompressionWorkload

    if name == "lz77":
        return CompressionWorkload("lz77", max_chain=8)
    if name == "webgraph":
        return CompressionWorkload("webgraph")
    raise ValueError(f"unknown workload {name!r}")


@dataclass(frozen=True)
class JobSpec:
    """One validated job request.

    ``alpha`` is the per-request operating point of the scalarized
    objective (``None`` = the stratified equal-split baseline); the
    service turns it into a :class:`~repro.core.strategies.Strategy`
    per job, so tenants pick time-vs-dirty-energy per request instead
    of per deployment.
    """

    workload: str = "apriori"
    dataset: str = "rcv1"
    support: float = 0.1
    alpha: float | None = 1.0
    placement: str | None = None
    size_scale: float = 0.1
    seed: int = 0
    tenant: str = "default"

    def validate(self) -> None:
        if self.workload not in SERVICE_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from {SERVICE_WORKLOADS}"
            )
        if self.dataset not in DATASET_NAMES:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; choose from {DATASET_NAMES}"
            )
        kind = _DATASET_KINDS[self.dataset]
        if kind not in _WORKLOAD_KINDS[self.workload]:
            raise ValueError(
                f"workload {self.workload!r} cannot run on {kind!r} dataset "
                f"{self.dataset!r}"
            )
        if not 0.0 < self.support <= 1.0:
            raise ValueError("support must be in (0, 1]")
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1] (or null for the baseline)")
        if self.placement not in (None, "representative", "similar", "random"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")

    @property
    def effective_placement(self) -> str:
        return self.placement or default_placement(self.workload)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "dataset": self.dataset,
            "support": self.support,
            "alpha": self.alpha,
            "placement": self.placement,
            "size_scale": self.size_scale,
            "seed": self.seed,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        unknown = set(payload) - {
            "workload", "dataset", "support", "alpha", "placement",
            "size_scale", "seed", "tenant",
        }
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        spec = cls(**payload)
        spec.validate()
        return spec


@dataclass
class JobRecord:
    """Server-side lifecycle record for one submitted job.

    Monotonic timestamps drive queue-wait/run math; the wall clock
    (``submitted_wall_s``) anchors the job's obs spans on the same axis
    as the rest of the trace.
    """

    spec: JobSpec
    state: JobState = JobState.QUEUED
    job_id: str = field(default_factory=_new_job_id)
    submitted_at: float = field(default_factory=time.monotonic)
    submitted_wall_s: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    reject_reason: str | None = None
    retry_after_s: float | None = None
    cancel_requested: bool = False
    expires_at: float | None = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_wait_s(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready status view (result ships separately)."""
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "spec": self.spec.to_dict(),
            "queue_wait_s": self.queue_wait_s,
            "run_s": self.run_s,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }
        if self.state is JobState.REJECTED:
            out["reject_reason"] = self.reject_reason
            out["retry_after_s"] = self.retry_after_s
        return out
