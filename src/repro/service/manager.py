"""The job manager: bounded queue, admission control, worker loop.

One :class:`JobManager` owns the submission queue and the job table and
drains the queue into a :class:`~repro.service.executor.ScenarioExecutor`
with ``concurrency`` worker threads. Its contract:

- **Bounded queue.** At most ``max_queue_depth`` jobs wait; a submit
  beyond that is *rejected immediately* with a ``retry_after_s`` hint
  derived from current depth and the EWMA job runtime — explicit
  backpressure instead of unbounded memory growth and silent latency.
- **Per-tenant in-flight caps.** One tenant cannot monopolize the
  cluster: queued+running jobs per tenant are capped.
- **Lifecycle.** ``QUEUED → RUNNING → SUCCEEDED|FAILED``; a queued job
  can be cancelled (``CANCELLED``), a running one only flagged (the
  pipeline is not preemptible mid-partition). Rejections are recorded
  as terminal ``REJECTED`` job records so status queries always answer.
- **Result TTL.** Terminal records are evicted ``result_ttl_s`` after
  finishing, so an always-on service holds a bounded job table.
- **Graceful drain.** :meth:`drain` stops admission, lets the workers
  finish every queued job, then stops the worker threads;
  :meth:`shutdown` additionally closes the executor (which drains the
  engine pool before unlinking shared memory).

Every path is instrumented: ``service.submit`` / ``service.run`` /
``service.drain`` spans, a pre-timed ``service.queue_wait`` span per
dequeued job, queue-depth gauges + samples, and counters for
submissions, rejections (by reason) and terminal states.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

import repro.obs as obs
from repro.obs.live import active_plane, tenant_context
from repro.obs.log import get_logger, log_event
from repro.service.jobs import (
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobState,
)

__all__ = ["ServiceConfig", "JobManager"]

_log = get_logger(__name__)

#: Queue-depth histogram buckets (jobs waiting, sampled at every
#: admission and dequeue — the "queue depth over time" distribution).
QUEUE_DEPTH_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-control and lifecycle knobs."""

    max_queue_depth: int = 64
    concurrency: int = 2
    per_tenant_inflight: int = 8
    result_ttl_s: float = 300.0
    #: Fallback retry hint before any job has finished.
    default_retry_after_s: float = 0.5

    def validate(self) -> None:
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.per_tenant_inflight <= 0:
            raise ValueError("per_tenant_inflight must be positive")
        if self.result_ttl_s <= 0:
            raise ValueError("result_ttl_s must be positive")


class JobManager:
    """Admission control + worker loop over one shared executor."""

    def __init__(self, executor: Any, config: ServiceConfig | None = None):
        self.executor = executor
        self.config = config or ServiceConfig()
        self.config.validate()
        self._cond = threading.Condition()
        self._queue: deque[JobRecord] = deque()
        self._jobs: dict[str, JobRecord] = {}
        self._tenant_inflight: dict[str, int] = {}
        self._running = 0
        self._accepting = True
        self._stopped = False
        self._run_ewma_s: float | None = None
        self._peak_queue_depth = 0
        self.started_at_wall = time.time()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(self.config.concurrency)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission & admission control -------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit (or reject) one job. Always returns a record: state
        ``QUEUED`` when admitted, terminal ``REJECTED`` with a reason
        and ``retry_after_s`` hint when the service is saturated."""
        with obs.span(
            "service.submit", tenant=spec.tenant, workload=spec.workload
        ) as sp:
            spec.validate()
            with self._cond:
                self._evict_expired_locked()
                reason = self._admission_reason_locked(spec)
                if reason is not None:
                    record = self._reject_locked(spec, reason)
                    sp.set_attr("state", record.state.value)
                    sp.set_attr("reason", reason)
                    return record
                record = JobRecord(spec=spec)
                self._queue.append(record)
                self._jobs[record.job_id] = record
                self._tenant_inflight[spec.tenant] = (
                    self._tenant_inflight.get(spec.tenant, 0) + 1
                )
                depth = len(self._queue)
                self._peak_queue_depth = max(self._peak_queue_depth, depth)
                peak, running = self._peak_queue_depth, self._running
                self._cond.notify()
            sp.set_attr("state", record.state.value)
            sp.set_attr("job_id", record.job_id)
            if obs.enabled():
                metrics = obs.get_metrics()
                metrics.counter("repro_service_submitted_total").inc()
                metrics.counter(
                    "repro_service_accepted_total", tenant=spec.tenant
                ).inc()
                self._record_queue_depth(depth, peak, running)
            return record

    def _admission_reason_locked(self, spec: JobSpec) -> str | None:
        if not self._accepting:
            return "draining"
        if len(self._queue) >= self.config.max_queue_depth:
            return "queue_full"
        if (
            self._tenant_inflight.get(spec.tenant, 0)
            >= self.config.per_tenant_inflight
        ):
            return "tenant_cap"
        return None

    def _reject_locked(self, spec: JobSpec, reason: str) -> JobRecord:
        now = time.monotonic()
        record = JobRecord(spec=spec, state=JobState.REJECTED)
        record.reject_reason = reason
        record.retry_after_s = self._retry_after_locked()
        record.finished_at = now
        record.expires_at = now + self.config.result_ttl_s
        self._jobs[record.job_id] = record
        if obs.enabled():
            metrics = obs.get_metrics()
            metrics.counter("repro_service_submitted_total").inc()
            metrics.counter("repro_service_rejected_total", reason=reason).inc()
        log_event(
            _log, logging.DEBUG, "service.submit.rejected",
            job_id=record.job_id, tenant=spec.tenant, reason=reason,
            retry_after_s=round(record.retry_after_s, 3),
        )
        return record

    def _retry_after_locked(self) -> float:
        """Backpressure hint: roughly one queue-drain interval — queued
        work divided by worker concurrency, priced at the EWMA runtime."""
        if self._run_ewma_s is None:
            return self.config.default_retry_after_s
        pending = len(self._queue) + self._running
        per_slot = max(1.0, pending / self.config.concurrency)
        return max(self.config.default_retry_after_s, per_slot * self._run_ewma_s)

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._cond:
            self._evict_expired_locked()
            return self._jobs.get(job_id)

    def result(self, job_id: str) -> dict[str, Any] | None:
        record = self.get(job_id)
        return None if record is None else record.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job (True). A running or finished job cannot
        be interrupted: the cancel flag is recorded and False returned."""
        with self._cond:
            record = self._jobs.get(job_id)
            if record is None:
                return False
            record.cancel_requested = True
            if record.state is not JobState.QUEUED:
                return False
            record.state = JobState.CANCELLED
            now = time.monotonic()
            record.finished_at = now
            record.expires_at = now + self.config.result_ttl_s
            self._release_tenant_locked(record.spec.tenant)
            # Lazily removed from the deque by the worker loop.
            if obs.enabled():
                obs.get_metrics().counter(
                    "repro_service_jobs_total", state=JobState.CANCELLED.value
                ).inc()
            return True

    def stats(self) -> dict[str, Any]:
        """Queue/lifecycle posture for ``/healthz`` and the harness."""
        with self._cond:
            states: dict[str, int] = {}
            for record in self._jobs.values():
                states[record.state.value] = states.get(record.state.value, 0) + 1
            return {
                "accepting": self._accepting,
                "queue_depth": sum(
                    1 for r in self._queue if r.state is JobState.QUEUED
                ),
                "peak_queue_depth": self._peak_queue_depth,
                "running": self._running,
                "jobs_tracked": len(self._jobs),
                "states": states,
                "tenants_inflight": dict(self._tenant_inflight),
                "run_ewma_s": self._run_ewma_s,
                "config": {
                    "max_queue_depth": self.config.max_queue_depth,
                    "concurrency": self.config.concurrency,
                    "per_tenant_inflight": self.config.per_tenant_inflight,
                    "result_ttl_s": self.config.result_ttl_s,
                },
            }

    # -- worker loop --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                record = self._next_queued_locked()
                while record is None and not self._stopped:
                    self._cond.wait(timeout=0.1)
                    record = self._next_queued_locked()
                if record is None:
                    return  # stopped and the queue is fully drained
                record.state = JobState.RUNNING
                record.started_at = time.monotonic()
                self._running += 1
                depth = len(self._queue)
                peak, running = self._peak_queue_depth, self._running
            if obs.enabled():
                self._record_queue_depth(depth, peak, running)
                wait_s = record.queue_wait_s or 0.0
                obs.emit(
                    "service.queue_wait",
                    start_s=record.submitted_wall_s,
                    duration_s=wait_s,
                    job_id=record.job_id,
                    tenant=record.spec.tenant,
                )
                obs.get_metrics().histogram(
                    "repro_service_queue_wait_seconds"
                ).observe(wait_s)
                plane = active_plane()
                if plane is not None:
                    plane.slo.record("queue_wait", wait_s)
            self.run_record(record)

    def _next_queued_locked(self) -> JobRecord | None:
        while self._queue:
            record = self._queue.popleft()
            if record.state is JobState.QUEUED:
                return record
            # Cancelled while queued: already terminal, just drop it.
        return None

    def run_record(self, record: JobRecord) -> None:
        """Execute one dequeued job and finalize its record."""
        spec = record.spec
        with obs.span(
            "service.run",
            job_id=record.job_id,
            tenant=spec.tenant,
            workload=spec.workload,
            dataset=spec.dataset,
        ) as sp:
            try:
                # Task spans are emitted synchronously on this worker
                # thread, so the tenant context makes the live ledger's
                # per-tenant attribution exact.
                with tenant_context(spec.tenant):
                    result = self.executor.run(spec)
            except Exception as exc:
                log_event(
                    _log, logging.WARNING, "service.run.failed",
                    job_id=record.job_id, workload=spec.workload,
                    error=type(exc).__name__, detail=str(exc),
                )
                self._finish(record, JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
                sp.set_attr("state", record.state.value)
                return
            self._finish(record, JobState.SUCCEEDED, result=result)
            sp.set_attr("state", record.state.value)
            sp.set_attr("makespan_s", result.get("makespan_s"))

    def _finish(
        self,
        record: JobRecord,
        state: JobState,
        result: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        now = time.monotonic()
        with self._cond:
            record.state = state
            record.result = result
            record.error = error
            record.finished_at = now
            record.expires_at = now + self.config.result_ttl_s
            self._running -= 1
            self._release_tenant_locked(record.spec.tenant)
            run_s = record.run_s or 0.0
            self._run_ewma_s = (
                run_s
                if self._run_ewma_s is None
                else 0.8 * self._run_ewma_s + 0.2 * run_s
            )
            self._cond.notify_all()
        if obs.enabled():
            metrics = obs.get_metrics()
            metrics.counter("repro_service_jobs_total", state=state.value).inc()
            metrics.histogram("repro_service_run_seconds").observe(run_s)
            plane = active_plane()
            if plane is not None:
                latency_s = (record.queue_wait_s or 0.0) + run_s
                plane.slo.record("job_latency", latency_s)
                if result is not None and "total_dirty_energy_j" in result:
                    plane.slo.record(
                        "dirty_j_per_job", float(result["total_dirty_energy_j"])
                    )
                plane.publish_event(
                    "job.finished",
                    job_id=record.job_id,
                    tenant=record.spec.tenant,
                    state=state.value,
                    latency_s=latency_s,
                    run_s=run_s,
                )

    def _release_tenant_locked(self, tenant: str) -> None:
        left = self._tenant_inflight.get(tenant, 0) - 1
        if left > 0:
            self._tenant_inflight[tenant] = left
        else:
            self._tenant_inflight.pop(tenant, None)

    # -- eviction -----------------------------------------------------------

    def _evict_expired_locked(self) -> None:
        now = time.monotonic()
        expired = [
            job_id
            for job_id, record in self._jobs.items()
            if record.state in TERMINAL_STATES
            and record.expires_at is not None
            and record.expires_at <= now
        ]
        for job_id in expired:
            del self._jobs[job_id]
        if expired and obs.enabled():
            obs.get_metrics().counter("repro_service_results_evicted_total").inc(
                len(expired)
            )

    def _record_queue_depth(self, depth: int, peak: int, running: int) -> None:
        # Callers capture depth/peak/running under self._cond and pass
        # them in, so this method touches no shared state while
        # publishing (metrics and the live plane lock internally).
        metrics = obs.get_metrics()
        metrics.gauge("repro_service_queue_depth").set(depth)
        metrics.gauge("repro_service_queue_depth_peak").set(peak)
        metrics.histogram(
            "repro_service_queue_depth_jobs", bounds=QUEUE_DEPTH_BUCKETS
        ).observe(depth)
        plane = active_plane()
        if plane is not None:
            plane.publish_event("service.queue", depth=depth, running=running)

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop admission, run the queue dry, stop the workers.

        Returns True when everything queued and running finished within
        ``timeout_s`` (None = wait forever). Idempotent; submissions
        after (or during) a drain are rejected with reason
        ``"draining"``."""
        with obs.span("service.drain") as sp:
            deadline = None if timeout_s is None else time.monotonic() + timeout_s
            with self._cond:
                self._accepting = False
                self._cond.notify_all()
                while self._queue or self._running:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        sp.set_attr("drained", False)
                        return False
                    self._cond.wait(timeout=0.1 if remaining is None else min(0.1, remaining))
                self._stopped = True
                self._cond.notify_all()
            for worker in self._workers:
                worker.join(timeout=5.0)
            drained = all(not w.is_alive() for w in self._workers)
            sp.set_attr("drained", drained)
            log_event(_log, logging.DEBUG, "service.drained", complete=drained)
            return drained

    def shutdown(self, timeout_s: float | None = None) -> bool:
        """Drain, then close the executor (engine pool + dataplane)."""
        drained = self.drain(timeout_s)
        self.executor.close()
        return drained
