"""``repro.service`` — the always-on partition job service.

Wraps the batch framework (:class:`~repro.core.framework.ParetoPartitioner`
over a persistent engine) behind an asynchronous submission API so one
long-lived process serves sustained multi-tenant traffic:

- :mod:`repro.service.jobs` — job specs, lifecycle states, records;
- :mod:`repro.service.executor` — shared engine + per-scenario prepared
  cache (repeat jobs ride the shared-memory dataplane for free);
- :mod:`repro.service.manager` — bounded queue, admission control,
  per-tenant caps, backpressure with retry-after hints, TTL-evicted
  results, graceful drain;
- :mod:`repro.service.http` — stdlib HTTP front end
  (submit/status/result/cancel/healthz/metrics);
- :mod:`repro.service.client` — urllib client for the API.

Quick start (in-process)::

    from repro.service import build_service

    service = build_service(engine="simulated", port=0)
    server = service.server.start()
    record = service.manager.submit(JobSpec(workload="apriori"))
    ...
    service.manager.shutdown()
    server.stop()

Or from the CLI: ``repro serve`` / ``repro submit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.client import ServiceClient, ServiceResponse, ServiceUnavailableError
from repro.service.executor import ScenarioExecutor, build_executor
from repro.service.http import ServiceHTTPServer
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobState,
    MINING_WORKLOADS,
    SERVICE_WORKLOADS,
    TERMINAL_STATES,
)
from repro.service.manager import JobManager, ServiceConfig

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobState",
    "TERMINAL_STATES",
    "MINING_WORKLOADS",
    "SERVICE_WORKLOADS",
    "ScenarioExecutor",
    "build_executor",
    "JobManager",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceClient",
    "ServiceResponse",
    "ServiceUnavailableError",
    "PartitionService",
    "build_service",
]


@dataclass
class PartitionService:
    """One assembled service: executor + manager + HTTP server."""

    executor: ScenarioExecutor
    manager: JobManager
    server: ServiceHTTPServer

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        """Graceful stop: drain jobs, release the engine, stop HTTP."""
        self.manager.shutdown()
        self.server.stop()

    def __enter__(self) -> "PartitionService":
        self.server.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_service(
    *,
    engine: str = "process",
    num_nodes: int = 4,
    max_workers: int | None = None,
    seed: int = 0,
    host: str = "127.0.0.1",
    port: int = 8642,
    config: ServiceConfig | None = None,
) -> PartitionService:
    """Assemble executor, manager and HTTP server (server not started)."""
    executor = build_executor(
        engine, num_nodes=num_nodes, max_workers=max_workers, seed=seed
    )
    manager = JobManager(executor, config)
    server = ServiceHTTPServer(manager, host=host, port=port)
    return PartitionService(executor=executor, manager=manager, server=server)
