"""Executes job specs against one shared engine + prepared-state cache.

The service's whole performance story lives here: every job runs on the
**same** long-lived engine, so

- the :class:`~repro.cluster.engines.ProcessPoolEngine` worker pool is
  forked once for the service lifetime, not once per request;
- the shared-memory dataplane's identity/digest caches make repeat jobs
  over the same partitions near-free (no re-pickling);
- the one-time prepare cost (stratify + profile + optimizer) is cached
  per scenario — ``(dataset, size_scale, seed, workload, support)`` —
  and amortized across every job that hits the same scenario, exactly
  the paper's amortization argument applied to sustained traffic.

Thread-safe: the manager runs several worker threads over one executor.
Scenario builds serialize on a lock; engine job execution relies on the
engine's own concurrency guarantees (pool maps are thread-safe, the
dataplane store locks internally, shutdown drains in-flight jobs).
"""

from __future__ import annotations

import threading
from typing import Any

import repro.obs as obs
from repro.cluster.cluster import Cluster, paper_cluster
from repro.cluster.engines import ExecutionEngine, ProcessPoolEngine, SimulatedEngine
from repro.core.framework import ParetoPartitioner, PreparedInput, RunReport
from repro.core.strategies import Strategy
from repro.data.datasets import Dataset, load_dataset
from repro.service.jobs import JobSpec, MINING_WORKLOADS, build_workload

__all__ = ["ScenarioExecutor", "build_executor"]


class ScenarioExecutor:
    """Runs one :class:`JobSpec` at a time per calling thread, sharing
    engine, dataplane and prepared state across all of them."""

    def __init__(
        self,
        engine: ExecutionEngine,
        *,
        stage_via_kv: bool = False,
        num_strata: int = 8,
    ):
        self.engine = engine
        self.stage_via_kv = stage_via_kv
        self.num_strata = num_strata
        self._lock = threading.Lock()
        self._prepared: dict[tuple, tuple[ParetoPartitioner, PreparedInput]] = {}
        self._datasets: dict[tuple, Dataset] = {}

    # -- scenario cache -----------------------------------------------------

    def _dataset_for_locked(self, spec: JobSpec) -> Dataset:
        # Called with self._lock held: the dict probe-then-fill below
        # would otherwise race run() against prepared_for() and load
        # the same dataset twice (or tear the dict).
        key = (spec.dataset, spec.size_scale, spec.seed)
        found = self._datasets.get(key)
        if found is None:
            found = load_dataset(
                spec.dataset, size_scale=spec.size_scale, seed=spec.seed
            )
            self._datasets[key] = found
        return found

    def scenario_key(self, spec: JobSpec) -> tuple:
        return (spec.dataset, spec.size_scale, spec.seed, spec.workload, spec.support)

    def prepared_for(self, spec: JobSpec) -> tuple[ParetoPartitioner, PreparedInput]:
        """Build (and cache) the framework + prepared state for a spec's
        scenario. Serialized on the executor lock: the first job of a
        scenario pays the prepare cost once; concurrent first-jobs of
        the *same* scenario wait rather than duplicate the work."""
        key = self.scenario_key(spec)
        with self._lock:
            found = self._prepared.get(key)
            if found is None:
                with obs.span(
                    "service.prepare",
                    dataset=spec.dataset,
                    workload=spec.workload,
                    scale=spec.size_scale,
                ):
                    dataset = self._dataset_for_locked(spec)
                    pp = ParetoPartitioner(
                        self.engine,
                        kind=dataset.kind,
                        num_strata=self.num_strata,
                        seed=spec.seed,
                        stage_via_kv=self.stage_via_kv,
                    )
                    prep = pp.prepare(
                        dataset.items, build_workload(spec.workload, spec.support)
                    )
                found = (pp, prep)
                self._prepared[key] = found
            return found

    @property
    def scenarios_prepared(self) -> int:
        with self._lock:
            return len(self._prepared)

    # -- execution ----------------------------------------------------------

    def run(self, spec: JobSpec) -> dict[str, Any]:
        """Execute one job; returns the JSON-ready result payload."""
        pp, prep = self.prepared_for(spec)
        workload = build_workload(spec.workload, spec.support)
        if spec.alpha is None:
            strategy = Strategy(
                name="stratified", alpha=None, placement=spec.effective_placement
            )
        else:
            strategy = Strategy(
                name=f"alpha={spec.alpha}",
                alpha=spec.alpha,
                placement=spec.effective_placement,
            )
        with self._lock:
            dataset = self._dataset_for_locked(spec)
        if spec.workload in MINING_WORKLOADS:
            report = pp.execute_fpm(dataset.items, workload, strategy, prepared=prep)
        else:
            report = pp.execute(dataset.items, workload, strategy, prepared=prep)
        return self._result_payload(spec, report)

    @staticmethod
    def _result_payload(spec: JobSpec, report: RunReport) -> dict[str, Any]:
        merged = report.merged_output
        quality: dict[str, Any] = {
            k: report.extra[k]
            for k in ("candidates", "frequent", "false_positives")
            if k in report.extra
        }
        if hasattr(merged, "ratio"):
            quality["compression_ratio"] = round(merged.ratio, 4)
        return {
            "workload": spec.workload,
            "dataset": spec.dataset,
            "strategy": report.strategy.name,
            "alpha": spec.alpha,
            "makespan_s": report.makespan_s,
            "total_energy_j": report.total_energy_j,
            "total_dirty_energy_j": report.total_dirty_energy_j,
            "green_energy_j": report.total_energy_j - report.total_dirty_energy_j,
            "plan_sizes": [int(s) for s in report.plan.sizes],
            "kv_round_trips": report.kv_round_trips,
            "quality": quality,
        }

    # -- lifecycle ----------------------------------------------------------

    def dataplane_audit(self) -> dict[str, Any]:
        """Shared-memory posture for shutdown assertions: live segment
        count and cache counters (zeros for engines without a plane)."""
        engine = self.engine
        stats = getattr(engine, "dataplane_stats", None)
        store = getattr(engine, "_store", None)
        return {
            "live_segments": 0 if store is None else store.live_segments,
            "store_closed": store is None or store.closed,
            "segments_created": 0 if stats is None else stats.segments_created,
            "identity_hits": 0 if stats is None else stats.identity_hits,
            "digest_hits": 0 if stats is None else stats.digest_hits,
            "serializations": 0 if stats is None else stats.serializations,
        }

    def close(self) -> None:
        """Release the engine (drains in-flight pool jobs first)."""
        shutdown = getattr(self.engine, "shutdown", None)
        if shutdown is not None:
            shutdown(wait=True)


def build_executor(
    engine_kind: str = "process",
    *,
    num_nodes: int = 4,
    max_workers: int | None = None,
    cluster: Cluster | None = None,
    seed: int = 0,
    unit_rate: float = 5e4,
    stage_via_kv: bool = False,
) -> ScenarioExecutor:
    """Standard service executor: a paper cluster plus the chosen engine.

    ``engine_kind="process"`` (default) runs real parallel jobs on the
    persistent pool + shared-memory dataplane; ``"simulated"`` gives
    deterministic closed-form runtimes (useful for tests and capacity
    math).
    """
    if cluster is None:
        cluster = paper_cluster(num_nodes, seed=seed)
    if engine_kind == "process":
        engine: ExecutionEngine = ProcessPoolEngine(cluster, max_workers=max_workers)
    elif engine_kind == "simulated":
        engine = SimulatedEngine(cluster, unit_rate=unit_rate)
    else:
        raise ValueError(f"unknown engine kind {engine_kind!r}")
    return ScenarioExecutor(engine, stage_via_kv=stage_via_kv)
