"""Generic strategy-comparison runner.

One :class:`StrategyRunner` binds a dataset to a workload factory and
executes any strategy on any partition count, reusing the prepared
(stratify + profile) state per partition count — the paper's amortized
one-time cost.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import repro.obs as obs
from repro.obs.log import get_logger, log_event
from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.core.framework import ParetoPartitioner, PreparedInput, RunReport
from repro.core.strategies import Strategy
from repro.data.datasets import Dataset, load_dataset
from repro.workloads.base import Workload
from repro.workloads.fpm.apriori import AprioriWorkload
from repro.workloads.fpm.eclat import EclatWorkload
from repro.workloads.fpm.fpgrowth import FPGrowthWorkload
from repro.workloads.fpm.treemining import TreeMiningWorkload

_log = get_logger(__name__)


@dataclass
class ExperimentRow:
    """One (dataset, workload, partitions, strategy) measurement."""

    dataset: str
    workload: str
    partitions: int
    strategy: str
    alpha: float | None
    makespan_s: float
    dirty_energy_kj: float
    energy_kj: float
    quality: dict[str, Any] = field(default_factory=dict)
    sizes: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "dataset": self.dataset,
            "workload": self.workload,
            "partitions": self.partitions,
            "strategy": self.strategy,
            "alpha": self.alpha,
            "makespan_s": round(self.makespan_s, 3),
            "dirty_energy_kj": round(self.dirty_energy_kj, 3),
            "energy_kj": round(self.energy_kj, 3),
        }
        out.update(self.quality)
        return out


def _is_mining(workload: Workload) -> bool:
    return isinstance(
        workload,
        (AprioriWorkload, EclatWorkload, FPGrowthWorkload, TreeMiningWorkload),
    )


@dataclass
class StrategyRunner:
    """Runs strategies over one dataset/workload pair.

    Parameters
    ----------
    dataset:
        A loaded :class:`Dataset` (or use :meth:`from_name`).
    workload_factory:
        Zero-argument callable building a fresh workload instance.
    num_strata / unit_rate / seed:
        Stratifier and engine configuration.
    """

    dataset: Dataset
    workload_factory: Callable[[], Workload]
    num_strata: int = 12
    unit_rate: float = 5e4
    seed: int = 0
    stage_via_kv: bool = False
    _prepared: dict[int, tuple[ParetoPartitioner, PreparedInput]] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def from_name(
        cls,
        dataset_name: str,
        workload_factory: Callable[[], Workload],
        *,
        size_scale: float = 1.0,
        **kwargs,
    ) -> "StrategyRunner":
        return cls(
            dataset=load_dataset(dataset_name, size_scale=size_scale),
            workload_factory=workload_factory,
            **kwargs,
        )

    def prepared_for(self, partitions: int) -> tuple[ParetoPartitioner, PreparedInput]:
        """Build (and cache) the framework + prepared state for a
        cluster of ``partitions`` nodes."""
        if partitions not in self._prepared:
            cluster = paper_cluster(partitions, seed=self.seed)
            engine = SimulatedEngine(cluster, unit_rate=self.unit_rate)
            pp = ParetoPartitioner(
                engine,
                kind=self.dataset.kind,
                num_strata=self.num_strata,
                seed=self.seed,
                stage_via_kv=self.stage_via_kv,
            )
            prep = pp.prepare(self.dataset.items, self.workload_factory())
            self._prepared[partitions] = (pp, prep)
        return self._prepared[partitions]

    def run(self, strategy: Strategy, partitions: int) -> RunReport:
        """Execute one strategy on a ``partitions``-node cluster."""
        with obs.span(
            "harness.run",
            dataset=self.dataset.name,
            strategy=strategy.name,
            partitions=partitions,
        ):
            pp, prep = self.prepared_for(partitions)
            workload = self.workload_factory()
            if _is_mining(workload):
                report = pp.execute_fpm(
                    self.dataset.items, workload, strategy, prepared=prep
                )
            else:
                report = pp.execute(self.dataset.items, workload, strategy, prepared=prep)
        log_event(
            _log, logging.DEBUG, "harness.run.done",
            dataset=self.dataset.name, strategy=strategy.name, partitions=partitions,
            makespan_s=round(report.makespan_s, 4),
            dirty_energy_j=round(report.total_dirty_energy_j, 2),
        )
        return report

    def row(self, strategy: Strategy, partitions: int) -> ExperimentRow:
        """Execute and condense into an :class:`ExperimentRow`."""
        report = self.run(strategy, partitions)
        workload = self.workload_factory()
        quality: dict[str, Any] = {}
        if report.extra:
            quality.update(
                {
                    k: report.extra[k]
                    for k in ("candidates", "frequent", "false_positives")
                    if k in report.extra
                }
            )
        merged = report.merged_output
        if hasattr(merged, "ratio"):
            quality["compression_ratio"] = round(merged.ratio, 3)
        return ExperimentRow(
            dataset=self.dataset.name,
            workload=getattr(workload, "name", type(workload).__name__),
            partitions=partitions,
            strategy=strategy.name,
            alpha=strategy.alpha,
            makespan_s=report.makespan_s,
            dirty_energy_kj=report.total_dirty_energy_j / 1e3,
            energy_kj=report.total_energy_j / 1e3,
            quality=quality,
            sizes=report.plan.sizes.tolist(),
        )

    def compare(
        self, strategies: Sequence[Strategy], partition_counts: Sequence[int]
    ) -> list[ExperimentRow]:
        """The cross product: every strategy at every partition count."""
        return [
            self.row(strategy, p)
            for p in partition_counts
            for strategy in strategies
        ]
