"""Plain-text rendering of experiment rows and frontier series."""

from __future__ import annotations

from typing import Any, Sequence

from repro.bench.harness import ExperimentRow


def format_table(rows: Sequence[ExperimentRow], title: str | None = None) -> str:
    """Render rows as an aligned text table (one line per row)."""
    if not rows:
        return "(no rows)"
    dicts = [r.as_dict() for r in rows]
    columns: list[str] = []
    for d in dicts:
        for key in d:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(c), *(len(_fmt(d.get(c))) for d in dicts)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for d in dicts:
        lines.append("  ".join(_fmt(d.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_frontier(
    points: Sequence[tuple[float, float, float]],
    baseline: tuple[float, float] | None = None,
    title: str | None = None,
) -> str:
    """Render an α-sweep frontier: (α, makespan_s, dirty_kJ) triples,
    with the baseline point appended for the Figure 5 comparison."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'alpha':>8}  {'makespan_s':>12}  {'dirty_kJ':>10}")
    for alpha, makespan, dirty in points:
        lines.append(f"{alpha:8.4f}  {makespan:12.3f}  {dirty:10.3f}")
    if baseline is not None:
        lines.append(f"{'base':>8}  {baseline[0]:12.3f}  {baseline[1]:10.3f}")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[ExperimentRow], path) -> None:
    """Write experiment rows as CSV (union of all columns)."""
    import csv
    import pathlib

    dicts = [r.as_dict() for r in rows]
    columns: list[str] = []
    for d in dicts:
        for key in d:
            if key not in columns:
                columns.append(key)
    with pathlib.Path(path).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for d in dicts:
            writer.writerow(d)


def improvement(baseline: float, value: float) -> float:
    """Percent reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - value / baseline)
