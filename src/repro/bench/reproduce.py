"""One-shot reproduction driver: every paper artefact into a directory.

``python -m repro reproduce --out results/`` regenerates Table I,
Figures 2–6 and Tables II–III, writing one text artefact per figure
plus machine-readable CSVs for the row-based experiments. The bench
suite (`pytest benchmarks/ --benchmark-only`) does the same with
timing and shape assertions; this driver is the packaging-friendly
entry point.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Sequence

from repro.bench import experiments
from repro.bench.reporting import format_frontier, format_table, rows_to_csv


def _write(out_dir: pathlib.Path, name: str, text: str) -> None:
    (out_dir / f"{name}.txt").write_text(text + "\n")


def reproduce_all(
    out_dir,
    *,
    size_scale: float = 1.0,
    partition_counts: Sequence[int] = (4, 8, 16),
    frontier_partitions: int = 8,
    frontier_alphas: Sequence[float] | None = None,
    seed: int = 0,
    progress: Callable[[str], None] = print,
) -> list[str]:
    """Regenerate every artefact; returns the list of files written."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[str] = []

    def done(name: str) -> None:
        written.append(name)
        progress(f"[reproduce] {name} done")

    rows = experiments.table1_datasets(size_scale=size_scale, seed=seed)
    _write(out, "table1_datasets", "\n".join(str(r) for r in rows))
    done("table1_datasets")

    for name, fn in (
        ("fig2_tree_mining", experiments.fig2_tree_mining),
        ("fig3_text_mining", experiments.fig3_text_mining),
        ("fig4_graph_compression", experiments.fig4_graph_compression),
    ):
        rows = fn(size_scale=size_scale, partition_counts=partition_counts, seed=seed)
        _write(out, name, format_table(rows, name))
        rows_to_csv(rows, out / f"{name}.csv")
        done(name)

    rows = experiments.table2_3_lz77(size_scale=size_scale, seed=seed)
    _write(out, "table2_3_lz77", format_table(rows, "table2_3_lz77"))
    rows_to_csv(rows, out / "table2_3_lz77.csv")
    done("table2_3_lz77")

    sweep_kwargs = {}
    if frontier_alphas is not None:
        sweep_kwargs["alphas"] = tuple(frontier_alphas)
    series = experiments.fig5_pareto_frontiers(
        size_scale=size_scale, partitions=frontier_partitions, seed=seed, **sweep_kwargs
    )
    _write(
        out,
        "fig5_pareto_frontiers",
        "\n\n".join(
            format_frontier(fs.points, baseline=fs.baseline, title=fs.label)
            for fs in series
        ),
    )
    done("fig5_pareto_frontiers")

    series = experiments.fig6_support_sweep(
        size_scale=size_scale, partitions=frontier_partitions, seed=seed, **sweep_kwargs
    )
    _write(
        out,
        "fig6_support_sweep",
        "\n\n".join(
            format_frontier(fs.points, baseline=fs.baseline, title=fs.label)
            for fs in series
        ),
    )
    done("fig6_support_sweep")

    return written
