"""One entry point per paper artefact (Figures 2–6, Tables I–III).

Each function returns structured data (rows or series) and is invoked
both by the pytest-benchmark targets in ``benchmarks/`` and by the
example scripts. Defaults are laptop-scale; crank ``size_scale`` for
higher fidelity.

Support thresholds are chosen so the smallest het-aware partition still
has a meaningful absolute support count — at the paper's data sizes
relative support is insensitive to partition size, but at laptop scale
a too-low threshold degenerates (min-count 1 makes everything locally
frequent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.harness import ExperimentRow, StrategyRunner
from repro.core.strategies import (
    ALPHA_COMPRESSION,
    ALPHA_FPM,
    HET_AWARE,
    STRATIFIED,
    Strategy,
    het_energy_aware,
)
from repro.data.datasets import DATASET_NAMES, dataset_summary, load_dataset
from repro.workloads.compression.distributed import CompressionWorkload
from repro.workloads.fpm.apriori import AprioriWorkload
from repro.workloads.fpm.treemining import TreeMiningWorkload

#: Partition counts the paper's figures report.
PAPER_PARTITION_COUNTS: tuple[int, ...] = (4, 8, 16)

#: α grid for the Figure 5/6 frontier sweeps, dense near 1.0.
FRONTIER_ALPHAS: tuple[float, ...] = (
    1.0, 0.9995, 0.999, 0.998, 0.997, 0.996, 0.995, 0.99, 0.98, 0.95, 0.9, 0.5, 0.0,
)

#: Default mining supports per domain (see module docstring).
TREE_SUPPORT = 0.12
TEXT_SUPPORT = 0.1


@dataclass
class FrontierSeries:
    """One measured Pareto sweep plus its baseline point (Fig. 5/6)."""

    label: str
    points: list[tuple[float, float, float]]  # (alpha, makespan_s, dirty_kJ)
    baseline: tuple[float, float]  # (makespan_s, dirty_kJ)
    meta: dict = field(default_factory=dict)

    def frontier_dominates_baseline(self) -> bool:
        """True when some sweep point beats the baseline in both objectives."""
        bm, be = self.baseline
        return any(m <= bm and e <= be and (m < bm or e < be) for _, m, e in self.points)


def _mining_strategies() -> list[Strategy]:
    return [STRATIFIED, HET_AWARE, het_energy_aware(ALPHA_FPM)]


def _compression_strategies() -> list[Strategy]:
    return [
        STRATIFIED.with_placement("similar"),
        HET_AWARE.with_placement("similar"),
        het_energy_aware(ALPHA_COMPRESSION).with_placement("similar"),
    ]


# -- Table I ---------------------------------------------------------------


def table1_datasets(size_scale: float = 1.0, seed: int = 0) -> list[dict]:
    """Dataset inventory (paper Table I)."""
    return [
        dataset_summary(load_dataset(name, size_scale=size_scale, seed=seed))
        for name in DATASET_NAMES
    ]


# -- Figures 2 and 3: frequent pattern mining -------------------------------


def fig2_tree_mining(
    *,
    size_scale: float = 1.0,
    partition_counts: Sequence[int] = PAPER_PARTITION_COUNTS,
    support: float = TREE_SUPPORT,
    seed: int = 0,
) -> list[ExperimentRow]:
    """Fig. 2: frequent tree mining time + dirty energy on the two tree
    datasets, three strategies, per partition count."""
    rows: list[ExperimentRow] = []
    for name in ("swissprot", "treebank"):
        runner = StrategyRunner.from_name(
            name,
            lambda: TreeMiningWorkload(min_support=support, max_len=2),
            size_scale=size_scale,
            seed=seed,
        )
        rows.extend(runner.compare(_mining_strategies(), partition_counts))
    return rows


def fig3_text_mining(
    *,
    size_scale: float = 1.0,
    partition_counts: Sequence[int] = PAPER_PARTITION_COUNTS,
    support: float = TEXT_SUPPORT,
    seed: int = 0,
) -> list[ExperimentRow]:
    """Fig. 3: Apriori on the RCV1 analog, three strategies."""
    runner = StrategyRunner.from_name(
        "rcv1",
        lambda: AprioriWorkload(min_support=support, max_len=3),
        size_scale=size_scale,
        seed=seed,
    )
    return runner.compare(_mining_strategies(), partition_counts)


# -- Figure 4 and Tables II/III: compression ---------------------------------


def fig4_graph_compression(
    *,
    size_scale: float = 1.0,
    partition_counts: Sequence[int] = PAPER_PARTITION_COUNTS,
    seed: int = 0,
) -> list[ExperimentRow]:
    """Fig. 4: WebGraph compression time, dirty energy and compression
    ratio on the two webgraphs, three strategies."""
    rows: list[ExperimentRow] = []
    for name in ("uk", "arabic"):
        runner = StrategyRunner.from_name(
            name,
            lambda: CompressionWorkload("webgraph"),
            size_scale=size_scale,
            seed=seed,
            unit_rate=5e3,
        )
        rows.extend(runner.compare(_compression_strategies(), partition_counts))
    return rows


def table2_3_lz77(
    *,
    size_scale: float = 1.0,
    partitions: int = 8,
    seed: int = 0,
) -> list[ExperimentRow]:
    """Tables II/III: LZ77 on UK and Arabic, 8 partitions — execution
    time and compression ratio per strategy."""
    rows: list[ExperimentRow] = []
    for name in ("uk", "arabic"):
        runner = StrategyRunner.from_name(
            name,
            lambda: CompressionWorkload("lz77", max_chain=8),
            size_scale=size_scale,
            seed=seed,
            unit_rate=2e4,
        )
        rows.extend(runner.compare(_compression_strategies(), [partitions]))
    return rows


# -- Figures 5 and 6: Pareto frontiers ---------------------------------------


def _sweep(
    runner: StrategyRunner,
    label: str,
    *,
    partitions: int = 8,
    alphas: Sequence[float] = FRONTIER_ALPHAS,
    placement: str = "representative",
) -> FrontierSeries:
    """Measure the α sweep and the stratified baseline for one setup."""
    points: list[tuple[float, float, float]] = []
    for alpha in alphas:
        report = runner.run(
            Strategy(name=f"alpha={alpha}", alpha=alpha, placement=placement),
            partitions,
        )
        points.append(
            (alpha, report.makespan_s, report.total_dirty_energy_j / 1e3)
        )
    base = runner.run(STRATIFIED.with_placement(placement), partitions)
    return FrontierSeries(
        label=label,
        points=points,
        baseline=(base.makespan_s, base.total_dirty_energy_j / 1e3),
        meta={"partitions": partitions},
    )


def fig5_pareto_frontiers(
    *,
    size_scale: float = 1.0,
    partitions: int = 8,
    alphas: Sequence[float] = FRONTIER_ALPHAS,
    seed: int = 0,
) -> list[FrontierSeries]:
    """Fig. 5: measured time–energy frontiers for the tree, text and
    graph workloads at 8 partitions, baseline plotted alongside."""
    series = []
    series.append(
        _sweep(
            StrategyRunner.from_name(
                "swissprot",
                lambda: TreeMiningWorkload(min_support=TREE_SUPPORT, max_len=2),
                size_scale=size_scale,
                seed=seed,
            ),
            "tree (swissprot)",
            partitions=partitions,
            alphas=alphas,
        )
    )
    series.append(
        _sweep(
            StrategyRunner.from_name(
                "rcv1",
                lambda: AprioriWorkload(min_support=TEXT_SUPPORT, max_len=3),
                size_scale=size_scale,
                seed=seed,
            ),
            "text (rcv1)",
            partitions=partitions,
            alphas=alphas,
        )
    )
    series.append(
        _sweep(
            StrategyRunner.from_name(
                "uk",
                lambda: CompressionWorkload("webgraph"),
                size_scale=size_scale,
                seed=seed,
                unit_rate=5e3,
            ),
            "graph (uk)",
            partitions=partitions,
            alphas=alphas,
            placement="similar",
        )
    )
    return series


def fig6_support_sweep(
    *,
    size_scale: float = 1.0,
    partitions: int = 8,
    tree_supports: Sequence[float] = (0.1, 0.12, 0.15),
    text_supports: Sequence[float] = (0.08, 0.1, 0.15),
    alphas: Sequence[float] = FRONTIER_ALPHAS,
    seed: int = 0,
) -> list[FrontierSeries]:
    """Fig. 6: frontiers across support thresholds (tree and text)."""
    series: list[FrontierSeries] = []
    for support in tree_supports:
        runner = StrategyRunner.from_name(
            "swissprot",
            lambda s=support: TreeMiningWorkload(min_support=s, max_len=2),
            size_scale=size_scale,
            seed=seed,
        )
        fs = _sweep(runner, f"tree sup={support}", partitions=partitions, alphas=alphas)
        fs.meta["support"] = support
        series.append(fs)
    for support in text_supports:
        runner = StrategyRunner.from_name(
            "rcv1",
            lambda s=support: AprioriWorkload(min_support=s, max_len=3),
            size_scale=size_scale,
            seed=seed,
        )
        fs = _sweep(runner, f"text sup={support}", partitions=partitions, alphas=alphas)
        fs.meta["support"] = support
        series.append(fs)
    return series
