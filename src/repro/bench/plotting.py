"""Dependency-free ASCII scatter plots for frontier visualisation.

The bench harness and CLI render time–energy frontiers as terminal
scatter plots: sweep points as ``*`` (the Pareto-efficient subset as
``o``), the baseline as ``B`` — a textual Figure 5.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pareto import pareto_front


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    *,
    baseline: tuple[float, float] | None = None,
    width: int = 60,
    height: int = 20,
    xlabel: str = "makespan (s)",
    ylabel: str = "dirty energy (kJ)",
    title: str | None = None,
) -> str:
    """Render 2-D points on a character grid.

    Frontier (non-dominated) points print as ``o``, dominated sweep
    points as ``*``, the baseline as ``B``. Axes are linear with the
    data range padded 5%.
    """
    if not points:
        raise ValueError("need at least one point")
    if width < 10 or height < 5:
        raise ValueError("plot too small")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if baseline is not None:
        xs.append(baseline[0])
        ys.append(baseline[1])
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = 0.05 * (x_hi - x_lo) or 1.0
    y_pad = 0.05 * (y_hi - y_lo) or 1.0
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - row, col)

    grid = [[" "] * width for _ in range(height)]
    efficient = set(pareto_front([list(p) for p in points]))
    for i, (x, y) in enumerate(points):
        r, c = cell(x, y)
        grid[r][c] = "o" if i in efficient else "*"
    if baseline is not None:
        r, c = cell(*baseline)
        grid[r][c] = "B"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.2f} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_lo:10.2f} └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.2f}{xlabel:^{max(width - 20, 10)}}{x_hi:>10.2f}"
    )
    lines.append(" " * 12 + f"y: {ylabel}   o=Pareto-efficient  *=dominated  B=baseline")
    return "\n".join(lines)
