"""Experiment harness regenerating every table and figure of the paper.

- :mod:`repro.bench.harness` — generic strategy-comparison runner
  (dataset × workload × partition count × strategy);
- :mod:`repro.bench.experiments` — one entry point per paper artefact
  (Fig. 2–6, Tables I–III) returning structured rows/series;
- :mod:`repro.bench.reporting` — plain-text table and series rendering.
"""

from repro.bench.harness import ExperimentRow, StrategyRunner
from repro.bench.reporting import format_table, format_frontier, rows_to_csv
from repro.bench.plotting import ascii_scatter
from repro.bench.reproduce import reproduce_all
from repro.bench import experiments

__all__ = [
    "ExperimentRow",
    "StrategyRunner",
    "format_table",
    "format_frontier",
    "rows_to_csv",
    "ascii_scatter",
    "reproduce_all",
    "experiments",
]
