"""Per-tenant energy ledger: who burned which joules, green vs dirty.

Charges arrive from the live plane's tracer sink — every span that
:func:`repro.obs.energy.energy_split` would count (the ``energy_j``
attribute predicate) is billed to the tenant whose job emitted it, so
by construction the ledger's grand totals reconcile with
``energy_split`` over the same spans to float-sum precision (the
acceptance bound is 1e-6). Wasted fault-retry energy is billed too —
a tenant whose jobs trigger re-execution pays for the lost watts —
and tracked separately so budgets can distinguish useful from wasted
joules.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["Ledger"]


class Ledger:
    """Thread-safe per-tenant green/dirty energy accounts."""

    #: Tenant billed when a charge arrives outside any tenant context
    #: (direct engine runs, profiling probes).
    UNATTRIBUTED = "unattributed"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._accounts: dict[str, dict[str, float]] = {}

    def charge(
        self,
        tenant: str,
        green_j: float,
        dirty_j: float,
        *,
        wasted: bool = False,
    ) -> None:
        """Bill one task's energy to ``tenant``."""
        with self._lock:
            account = self._accounts.get(tenant)
            if account is None:
                account = self._accounts[tenant] = {
                    "energy_j": 0.0,
                    "green_j": 0.0,
                    "dirty_j": 0.0,
                    "wasted_j": 0.0,
                    "tasks": 0,
                }
            account["green_j"] += green_j
            account["dirty_j"] += dirty_j
            account["energy_j"] += green_j + dirty_j
            if wasted:
                account["wasted_j"] += green_j + dirty_j
            account["tasks"] += 1

    # -- read side ----------------------------------------------------------

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-tenant account snapshot, tenant-name order."""
        with self._lock:
            return {
                tenant: dict(account)
                for tenant, account in sorted(self._accounts.items())
            }

    def grand_total(self) -> dict[str, float]:
        """Sum over every tenant — the reconciliation side."""
        out = {"energy_j": 0.0, "green_j": 0.0, "dirty_j": 0.0, "wasted_j": 0.0, "tasks": 0}
        with self._lock:
            for account in self._accounts.values():
                for key in out:
                    out[key] += account[key]
        return out

    def reconcile(self, split: Mapping[str, Any], tol: float = 1e-6) -> dict[str, Any]:
        """Diff the ledger against an ``energy_split`` summary.

        Both sides sum the same span floats, so any drift beyond float
        addition order means a charge was missed or double-billed.
        """
        total = self.grand_total()
        energy_diff = abs(total["energy_j"] - float(split["energy_j"]))
        dirty_diff = abs(total["dirty_j"] - float(split["dirty_energy_j"]))
        green_diff = abs(total["green_j"] - float(split["green_energy_j"]))
        return {
            "energy_diff_j": energy_diff,
            "dirty_diff_j": dirty_diff,
            "green_diff_j": green_diff,
            "ok": max(energy_diff, dirty_diff, green_diff) <= tol,
        }

    def reset(self) -> None:
        with self._lock:
            self._accounts.clear()
