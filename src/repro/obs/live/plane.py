"""The live plane: tracer sink → bus + estimator + ledger + SLOs.

One :class:`LivePlane` composes the four live-telemetry pieces and
attaches to the global tracer as its span sink, so every finished span
is processed **synchronously on the emitting thread**:

- every span is published onto the :class:`TelemetryBus` (name +
  duration, bounded ring — subscribers can't stall emitters);
- spans carrying ``energy_j`` (the exact predicate
  :func:`repro.obs.energy.energy_split` counts) are billed to the
  current thread's tenant on the :class:`Ledger` — the manager wraps
  job execution in :func:`tenant_context`, and task spans are emitted
  on that same worker thread, which is what makes per-tenant
  attribution exact;
- ``task.execute`` spans additionally feed the :class:`NodeEstimator`.

None of the plane's own methods emit spans: a span inside the sink
path would recurse straight back into the sink.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.obs.live.bus import TelemetryBus
from repro.obs.live.estimator import NodeEstimator
from repro.obs.live.ledger import Ledger
from repro.obs.live.slo import SLOMonitor, default_objectives

__all__ = ["LivePlane", "tenant_context", "current_tenant"]

_TENANT = threading.local()


def current_tenant() -> str:
    """The tenant charges on this thread bill to (see :func:`tenant_context`)."""
    return getattr(_TENANT, "name", Ledger.UNATTRIBUTED)


@contextmanager
def tenant_context(tenant: str) -> Iterator[None]:
    """Attribute every energy span emitted on this thread to ``tenant``."""
    previous = getattr(_TENANT, "name", None)
    _TENANT.name = tenant
    try:
        yield
    finally:
        if previous is None:
            del _TENANT.name
        else:
            _TENANT.name = previous


class LivePlane:
    """Composition root for the live telemetry plane."""

    def __init__(
        self,
        *,
        capacity: int = 2048,
        bus: TelemetryBus | None = None,
        estimator: NodeEstimator | None = None,
        ledger: Ledger | None = None,
        slo: SLOMonitor | None = None,
    ):
        self.bus = bus if bus is not None else TelemetryBus(capacity)
        self.estimator = estimator if estimator is not None else NodeEstimator()
        self.ledger = ledger if ledger is not None else Ledger()
        self.slo = slo if slo is not None else SLOMonitor(default_objectives())
        self.attached = False

    # -- tracer hookup ------------------------------------------------------

    def attach(self) -> "LivePlane":
        """Install this plane as the global tracer's span sink."""
        import repro.obs as obs

        obs.get_tracer().set_sink(self.publish_span)
        self.attached = True
        return self

    def detach(self) -> None:
        import repro.obs as obs

        obs.get_tracer().set_sink(None)
        self.attached = False

    # -- publication entry points (SPAN-COVERAGE enforced) ------------------

    def publish_span(self, record: Mapping[str, Any]) -> None:
        """Sink for one finished span: ledger, estimator, then the bus."""
        attrs = record.get("attrs") or {}
        if "energy_j" in attrs:
            energy = float(attrs["energy_j"])
            dirty = float(attrs.get("dirty_energy_j", 0.0))
            self.ledger.charge(
                current_tenant(),
                green_j=energy - dirty,
                dirty_j=dirty,
                wasted=bool(attrs.get("wasted")),
            )
            if record.get("name") == "task.execute":
                self.estimator.observe_task(attrs)
        self.bus.publish(
            "span",
            name=record.get("name"),
            duration_s=record.get("duration_s"),
            tenant=current_tenant(),
        )

    def publish_event(self, kind: str, **data: Any) -> int:
        """Publish a non-span event (queue depth, faults, steals)."""
        return self.bus.publish(kind, **data)

    # -- read side ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready view of the whole plane (the ``/live`` body)."""
        return {
            "time_s": time.time(),
            "bus": self.bus.stats(),
            "nodes": self.estimator.snapshot(),
            "tenants": self.ledger.totals(),
            "slo": self.slo.status(),
        }
