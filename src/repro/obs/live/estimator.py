"""Online per-node estimators: the live feedback signal for re-planning.

Every ``task.execute`` span carries ``(node_id, work_units, runtime_s,
energy_j, dirty_energy_j)``; :class:`NodeEstimator` folds those into

- an EWMA-weighted **linear regression** of runtime vs work per
  ``(node, workload)`` — recovering the same ``f_i(x) = m_i·x + c_i``
  shape progressive sampling fits offline, but continuously and from
  production traffic instead of probes; and
- EWMA **power** estimates (total / dirty / green watts) per node.

:meth:`NodeEstimator.estimates` returns the models and dirty-watt
coefficients in exactly the shape
:class:`repro.core.optimizer.ParetoOptimizer` consumes
(``ParetoOptimizer(est.models, est.dirty_coeffs)``), so an online
re-planner (ROADMAP item 2) can re-solve the Pareto LP mid-stream from
live data with no adapter layer.

The regression decays old evidence geometrically (sample weight
``decay^age``), so a node that slows down — co-location interference,
thermal throttling — re-converges instead of being anchored to history.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.heterogeneity import LinearTimeModel

__all__ = ["NodeEstimate", "ClusterEstimate", "NodeEstimator"]

#: Pseudo-workload key for samples that carry no workload attribute.
_ANY_WORKLOAD = "_"


class _RegAcc:
    """EWMA-decayed least-squares accumulators for one (node, workload)."""

    __slots__ = ("s1", "sx", "sy", "sxx", "sxy", "n")

    def __init__(self) -> None:
        self.s1 = self.sx = self.sy = self.sxx = self.sxy = 0.0
        self.n = 0

    def add(self, x: float, y: float, decay: float) -> None:
        self.s1 = self.s1 * decay + 1.0
        self.sx = self.sx * decay + x
        self.sy = self.sy * decay + y
        self.sxx = self.sxx * decay + x * x
        self.sxy = self.sxy * decay + x * y
        self.n += 1

    def merge(self, other: "_RegAcc") -> None:
        self.s1 += other.s1
        self.sx += other.sx
        self.sy += other.sy
        self.sxx += other.sxx
        self.sxy += other.sxy
        self.n += other.n

    def fit(self) -> tuple[float, float]:
        """Weighted-least-squares ``(slope, intercept)``, both clamped ≥ 0."""
        if self.n == 0 or self.s1 <= 0.0:
            return 0.0, 0.0
        denom = self.s1 * self.sxx - self.sx * self.sx
        mean_y = self.sy / self.s1
        # Degenerate x spread (all samples the same size): slope is
        # unidentifiable, fall back to a flat model at the mean runtime.
        if denom <= 1e-12 * max(self.sxx, 1.0):
            return 0.0, max(mean_y, 0.0)
        slope = (self.s1 * self.sxy - self.sx * self.sy) / denom
        if slope < 0.0:
            return 0.0, max(mean_y, 0.0)
        intercept = (self.sy - slope * self.sx) / self.s1
        return slope, max(intercept, 0.0)


class _PowerAcc:
    """EWMA power split for one node (constant-alpha, per-task samples)."""

    __slots__ = ("power_w", "dirty_w", "samples", "energy_j", "dirty_j", "busy_s")

    def __init__(self) -> None:
        self.power_w: float | None = None
        self.dirty_w: float | None = None
        self.samples = 0
        self.energy_j = 0.0
        self.dirty_j = 0.0
        self.busy_s = 0.0

    def add(self, runtime_s: float, energy_j: float, dirty_j: float, alpha: float) -> None:
        watts = energy_j / runtime_s
        dirty_watts = dirty_j / runtime_s
        if self.power_w is None:
            self.power_w = watts
            self.dirty_w = dirty_watts
        else:
            self.power_w += alpha * (watts - self.power_w)
            self.dirty_w += alpha * (dirty_watts - self.dirty_w)
        self.samples += 1
        self.energy_j += energy_j
        self.dirty_j += dirty_j
        self.busy_s += runtime_s


@dataclass(frozen=True)
class NodeEstimate:
    """One node's live picture: time model + power split."""

    node_id: int
    model: "LinearTimeModel"
    throughput_items_per_s: float
    power_w: float
    dirty_power_w: float
    green_power_w: float
    samples: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "node_id": self.node_id,
            "slope_s_per_item": self.model.slope,
            "intercept_s": self.model.intercept,
            "throughput_items_per_s": self.throughput_items_per_s,
            "power_w": self.power_w,
            "dirty_power_w": self.dirty_power_w,
            "green_power_w": self.green_power_w,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class ClusterEstimate:
    """Per-node estimates, node-id order — the optimizer's input shape."""

    nodes: tuple[NodeEstimate, ...]

    @property
    def models(self) -> list["LinearTimeModel"]:
        return [n.model for n in self.nodes]

    @property
    def dirty_coeffs(self) -> list[float]:
        return [n.dirty_power_w for n in self.nodes]

    def optimizer(self, normalize: bool = False):
        """A :class:`~repro.core.optimizer.ParetoOptimizer` over the
        live models — the re-planning hook."""
        from repro.core.optimizer import ParetoOptimizer

        return ParetoOptimizer(
            models=self.models, dirty_coeffs=self.dirty_coeffs, normalize=normalize
        )


class NodeEstimator:
    """Folds ``task.execute`` span attrs into per-node live estimates.

    ``decay`` is the per-sample geometric weight on old regression
    evidence (0.99 ≈ a ~100-task memory); ``power_alpha`` is the EWMA
    step for the power split. Thread-safe: spans arrive from any
    manager worker thread.
    """

    def __init__(self, decay: float = 0.99, power_alpha: float = 0.2):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if not 0.0 < power_alpha <= 1.0:
            raise ValueError("power_alpha must be in (0, 1]")
        self.decay = decay
        self.power_alpha = power_alpha
        self._lock = threading.Lock()
        self._reg: dict[tuple[int, str], _RegAcc] = {}
        self._power: dict[int, _PowerAcc] = {}

    def observe_task(self, attrs: Mapping[str, Any]) -> None:
        """Ingest one ``task.execute`` span's attributes."""
        runtime = float(attrs["runtime_s"])
        if runtime <= 0.0:
            return
        node = int(attrs["node_id"])
        work = float(attrs.get("work_units", 0.0))
        energy = float(attrs.get("energy_j", 0.0))
        dirty = float(attrs.get("dirty_energy_j", 0.0))
        workload = str(attrs.get("workload", _ANY_WORKLOAD))
        wasted = bool(attrs.get("wasted"))
        with self._lock:
            power = self._power.get(node)
            if power is None:
                power = self._power[node] = _PowerAcc()
            power.add(runtime, energy, dirty, self.power_alpha)
            # Wasted (fault-killed) attempts burn watts but their
            # work_units are zeroed — they inform power, not the model.
            if not wasted and work > 0.0:
                key = (node, workload)
                reg = self._reg.get(key)
                if reg is None:
                    reg = self._reg[key] = _RegAcc()
                reg.add(work, runtime, self.decay)

    # -- read side ----------------------------------------------------------

    @property
    def nodes_seen(self) -> list[int]:
        with self._lock:
            return sorted(self._power)

    def estimates(
        self, workload: str | None = None, num_nodes: int | None = None
    ) -> ClusterEstimate:
        """Current per-node estimates, node-id order.

        ``workload=None`` pools every workload's regression evidence
        per node (fine when per-item costs are similar; pass an explicit
        workload for an unbiased model of that workload). ``num_nodes``
        forces the output length; nodes with no samples yet get a zero
        model and zero watts, flagged by ``samples == 0``.
        """
        from repro.core.heterogeneity import LinearTimeModel

        with self._lock:
            node_ids = sorted(self._power)
            if num_nodes is not None:
                node_ids = list(range(num_nodes))
            out: list[NodeEstimate] = []
            for node in node_ids:
                acc = _RegAcc()
                for (n, wl), reg in self._reg.items():
                    if n != node:
                        continue
                    if workload is not None and wl != workload:
                        continue
                    acc.merge(reg)
                slope, intercept = acc.fit()
                power = self._power.get(node)
                watts = power.power_w if power and power.power_w is not None else 0.0
                dirty_w = power.dirty_w if power and power.dirty_w is not None else 0.0
                out.append(
                    NodeEstimate(
                        node_id=node,
                        model=LinearTimeModel(slope=slope, intercept=intercept),
                        throughput_items_per_s=1.0 / slope if slope > 0 else 0.0,
                        power_w=watts,
                        dirty_power_w=dirty_w,
                        green_power_w=max(watts - dirty_w, 0.0),
                        samples=power.samples if power else 0,
                    )
                )
        return ClusterEstimate(nodes=tuple(out))

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready per-node view (pooled across workloads)."""
        return [n.as_dict() for n in self.estimates().nodes]
