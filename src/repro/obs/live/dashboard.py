"""``repro obs top`` — a refreshing ASCII dashboard over ``GET /live``.

Pure presentation: :func:`fetch_live` pulls one long-poll snapshot from
a running service, :func:`render_dashboard` turns it into fixed-width
text (per-node rates and watts, tenant ledger, SLO burn states, queue
posture), and :func:`run_top` loops the two with an ANSI clear between
frames. Everything renders from the JSON payload alone, so the same
renderer works on a captured snapshot file (the CI artifact).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any

__all__ = ["fetch_live", "render_dashboard", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_live(
    url: str, since: int = 0, timeout_s: float = 0.0
) -> dict[str, Any]:
    """GET ``/live`` from a service at ``url``; returns the payload."""
    query = urllib.parse.urlencode({"since": since, "timeout": timeout_s})
    target = f"{url.rstrip('/')}/live?{query}"
    with urllib.request.urlopen(target, timeout=timeout_s + 10.0) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _fmt(value: Any, width: int, precision: int = 1) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{value!s:>{width}}"


def _nodes_section(nodes: list[dict]) -> list[str]:
    lines = [
        f"{'NODE':<6}{'items/s':>12}{'watts':>10}{'green W':>10}"
        f"{'dirty W':>10}{'samples':>9}"
    ]
    if not nodes:
        return lines + ["  (no task samples yet)"]
    for node in nodes:
        lines.append(
            f"{node['node_id']:<6}"
            f"{_fmt(node['throughput_items_per_s'], 12)}"
            f"{_fmt(node['power_w'], 10)}"
            f"{_fmt(node['green_power_w'], 10)}"
            f"{_fmt(node['dirty_power_w'], 10)}"
            f"{_fmt(node['samples'], 9)}"
        )
    return lines


def _tenants_section(tenants: dict[str, dict]) -> list[str]:
    lines = [
        f"{'TENANT':<16}{'energy J':>12}{'green J':>12}{'dirty J':>12}"
        f"{'wasted J':>12}{'tasks':>7}"
    ]
    if not tenants:
        return lines + ["  (no charges yet)"]
    for name, account in tenants.items():
        lines.append(
            f"{name[:15]:<16}"
            f"{_fmt(account['energy_j'], 12)}"
            f"{_fmt(account['green_j'], 12)}"
            f"{_fmt(account['dirty_j'], 12)}"
            f"{_fmt(account['wasted_j'], 12)}"
            f"{_fmt(account['tasks'], 7)}"
        )
    return lines


def _slo_section(slo: dict[str, dict]) -> list[str]:
    lines = [
        f"{'SLO':<18}{'state':>9}{'fast':>8}{'slow':>8}{'threshold':>12}"
    ]
    if not slo:
        return lines + ["  (no objectives configured)"]
    marker = {"ok": " ", "warn": "!", "burning": "*"}
    for name, status in slo.items():
        lines.append(
            f"{name[:17]:<18}"
            f"{marker.get(status['state'], '?') + status['state']:>9}"
            f"{_fmt(status['fast_burn'], 8, 2)}"
            f"{_fmt(status['slow_burn'], 8, 2)}"
            f"{_fmt(status['threshold'], 10)} {status.get('unit', '')}"
        )
    return lines


def _queue_section(queue: dict[str, Any]) -> list[str]:
    if not queue:
        return []
    return [
        "QUEUE  depth {depth}  running {running}  accepting {accepting}".format(
            depth=queue.get("queue_depth", "?"),
            running=queue.get("running", "?"),
            accepting=queue.get("accepting", "?"),
        )
    ]


def render_dashboard(payload: dict[str, Any], source: str = "") -> str:
    """One dashboard frame from a ``/live`` payload."""
    snapshot = payload.get("snapshot", {})
    bus = snapshot.get("bus", {})
    header = (
        f"repro live{' · ' + source if source else ''}"
        f" · seq {payload.get('seq', 0)}"
        f" · bus {bus.get('buffered', 0)}/{bus.get('capacity', 0)}"
        f" (dropped {bus.get('dropped', 0)})"
    )
    sections = [
        [header, "=" * len(header)],
        _nodes_section(snapshot.get("nodes", [])),
        _tenants_section(snapshot.get("tenants", {})),
        _slo_section(snapshot.get("slo", {})),
        _queue_section(payload.get("queue", {})),
    ]
    return "\n".join("\n".join(s) for s in sections if s) + "\n"


def run_top(
    url: str,
    once: bool = False,
    interval: float = 1.0,
    duration: float | None = None,
) -> int:
    """The ``repro obs top`` loop; returns a process exit code."""
    since = 0
    deadline = None if duration is None else time.monotonic() + duration
    while True:
        try:
            payload = fetch_live(url, since=since, timeout_s=0.0 if once else interval)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro obs top: cannot reach {url}/live: {exc}", file=sys.stderr)
            return 1
        since = int(payload.get("seq", since))
        frame = render_dashboard(payload, source=url)
        if once:
            print(frame, end="")
            return 0
        print(_CLEAR + frame, end="", flush=True)
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(interval)
