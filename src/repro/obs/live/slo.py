"""SLO objectives with multi-window burn-rate alerting.

Each :class:`Objective` classifies samples good/bad against a threshold
and owns an error *budget* — the fraction of samples allowed to be bad
(budget 0.01 with a latency threshold is exactly "p99 latency ≤ T").
The monitor evaluates the **burn rate** — observed bad fraction divided
by budget — over a fast and a slow window simultaneously (the
multi-window pattern from Google's SRE workbook): the slow window
filters blips, the fast window confirms the problem is still happening,
and the alert state is

- ``burning`` — both windows at burn ≥ 1 (budget being consumed faster
  than allowed, and currently);
- ``warn``    — only the fast window is hot (too new to confirm);
- ``ok``      — otherwise.

The clock is injectable so tests drive window expiry deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from threading import Lock
from typing import Any, Callable, Sequence

__all__ = ["Objective", "SLOMonitor", "default_objectives"]


@dataclass(frozen=True)
class Objective:
    """One service-level objective: samples ≤ threshold are good."""

    name: str
    threshold: float
    #: Allowed bad-sample fraction (0.01 ⇒ a p99 objective).
    budget: float = 0.05
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    unit: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.budget < 1.0:
            raise ValueError("budget must be in (0, 1)")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")


def default_objectives(
    job_latency_s: float = 30.0,
    dirty_j_per_job: float = 5e4,
    queue_wait_s: float = 2.0,
) -> tuple[Objective, ...]:
    """The service's stock objectives; thresholds are deploy knobs."""
    return (
        Objective("job_latency", job_latency_s, budget=0.01, unit="s"),
        Objective("dirty_j_per_job", dirty_j_per_job, budget=0.05, unit="J"),
        Objective("queue_wait", queue_wait_s, budget=0.10, unit="s"),
    )


class SLOMonitor:
    """Sliding-window good/bad counts + burn rates per objective."""

    def __init__(
        self,
        objectives: Sequence[Objective] = (),
        clock: Callable[[], float] = time.monotonic,
    ):
        names = [o.name for o in objectives]
        if len(names) != len(set(names)):
            raise ValueError("objective names must be unique")
        self._objectives = {o.name: o for o in objectives}
        self._clock = clock
        self._lock = Lock()
        #: name → deque of (timestamp, is_bad); pruned past the slow window.
        self._samples: dict[str, deque[tuple[float, bool]]] = {
            name: deque() for name in self._objectives
        }

    @property
    def objectives(self) -> tuple[Objective, ...]:
        return tuple(self._objectives.values())

    def record(self, name: str, value: float) -> None:
        """Classify one sample against its objective's threshold."""
        objective = self._objectives.get(name)
        if objective is None:
            return  # unknown objective: not this deployment's concern
        now = self._clock()
        with self._lock:
            samples = self._samples[name]
            samples.append((now, value > objective.threshold))
            self._prune(samples, now - objective.slow_window_s)

    @staticmethod
    def _prune(samples: deque, horizon: float) -> None:
        while samples and samples[0][0] < horizon:
            samples.popleft()

    # -- read side ----------------------------------------------------------

    def _burn(self, samples: deque, horizon: float, budget: float) -> tuple[float, int]:
        total = bad = 0
        for ts, is_bad in samples:
            if ts >= horizon:
                total += 1
                bad += is_bad
        if total == 0:
            return 0.0, 0
        return (bad / total) / budget, total

    def status(self) -> dict[str, dict[str, Any]]:
        """Burn rates + alert state per objective."""
        now = self._clock()
        out: dict[str, dict[str, Any]] = {}
        with self._lock:
            for name, objective in self._objectives.items():
                samples = self._samples[name]
                self._prune(samples, now - objective.slow_window_s)
                fast, fast_n = self._burn(
                    samples, now - objective.fast_window_s, objective.budget
                )
                slow, slow_n = self._burn(
                    samples, now - objective.slow_window_s, objective.budget
                )
                if fast >= 1.0 and slow >= 1.0:
                    state = "burning"
                elif fast >= 1.0:
                    state = "warn"
                else:
                    state = "ok"
                out[name] = {
                    "state": state,
                    "threshold": objective.threshold,
                    "unit": objective.unit,
                    "budget": objective.budget,
                    "fast_burn": round(fast, 3),
                    "slow_burn": round(slow, 3),
                    "fast_samples": fast_n,
                    "slow_samples": slow_n,
                }
        return out

    def burning(self) -> list[str]:
        """Names of objectives currently in the ``burning`` state."""
        return [name for name, s in self.status().items() if s["state"] == "burning"]
