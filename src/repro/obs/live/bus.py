"""Bounded ring-buffer telemetry bus: the live plane's transport.

One :class:`TelemetryBus` sits between every publisher (tracer sink,
service manager, fault/steal paths) and every subscriber (the ``/live``
endpoint, ``repro obs top``, future re-planners). Contract:

- **Bounded.** At most ``capacity`` events are buffered; publishing
  into a full buffer drops the *oldest* event and increments a drop
  counter — a slow subscriber can never grow memory or stall a
  publisher.
- **Lock-light.** ``publish`` is one short critical section (append +
  sequence bump); waiters are only notified when someone is actually
  long-polling, so the no-subscriber cost is an uncontended lock.
- **Snapshot subscription.** Subscribers are stateless on the bus side:
  they remember the last sequence number they saw and ask for
  ``events_since(seq)`` (or block in :meth:`wait_for`). Missing events
  because the ring wrapped is visible as a gap in ``seq``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

__all__ = ["TelemetryBus"]


class TelemetryBus:
    """Drop-oldest ring buffer of ``{"seq", "kind", "time_s", "data"}``."""

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict] = deque()
        self._cond = threading.Condition()
        self._seq = 0
        self._dropped = 0
        self._waiters = 0

    # -- publish ------------------------------------------------------------

    def publish(self, kind: str, **data: Any) -> int:
        """Append one event; returns its sequence number."""
        with self._cond:
            self._seq += 1
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self._dropped += 1
            self._events.append(
                {"seq": self._seq, "kind": kind, "time_s": time.time(), "data": data}
            )
            if self._waiters:
                self._cond.notify_all()
            return self._seq

    # -- subscribe ----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted unread because the ring was full."""
        with self._cond:
            return self._dropped

    def events_since(self, since: int = 0, limit: int | None = None) -> list[dict]:
        """Buffered events with ``seq > since``, oldest first."""
        with self._cond:
            out = [e for e in self._events if e["seq"] > since]
        if limit is not None and len(out) > limit:
            out = out[-limit:]  # newest survive, like the ring itself
        return out

    def wait_for(
        self, since: int = 0, timeout_s: float = 0.0, limit: int | None = None
    ) -> list[dict]:
        """Long-poll: block up to ``timeout_s`` for events past ``since``."""
        deadline = time.monotonic() + max(timeout_s, 0.0)
        with self._cond:
            while self._seq <= since:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._waiters += 1
                try:
                    self._cond.wait(timeout=remaining)
                finally:
                    self._waiters -= 1
        return self.events_since(since, limit=limit)

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "capacity": self.capacity,
                "published": self._seq,
                "buffered": len(self._events),
                "dropped": self._dropped,
            }
