"""``repro.obs.live`` — the always-on live telemetry plane.

Where :mod:`repro.obs` collects spans for *post-hoc* analysis (JSONL
traces, ``repro obs report``), this subpackage consumes them *while the
run is in flight*:

- :class:`TelemetryBus` — bounded drop-oldest ring every publisher
  writes into; subscribers snapshot by sequence number or long-poll.
- :class:`NodeEstimator` — online per-node time models + power split,
  shaped for :class:`repro.core.optimizer.ParetoOptimizer` (the
  feedback interface for online re-planning, ROADMAP item 2).
- :class:`Ledger` — per-tenant green/dirty energy accounts that
  reconcile with :func:`repro.obs.energy.energy_split` to 1e-6.
- :class:`SLOMonitor` — multi-window burn-rate alerting over p99 job
  latency, dirty-J-per-job and queue-wait objectives.
- Surfaces: the service's ``GET /live`` endpoint and ``repro obs top``.

Process-global lifecycle mirrors :mod:`repro.obs`::

    from repro.obs import live

    live.enable_live()          # also enables obs; installs tracer sink
    ... run jobs ...
    live.get_plane().snapshot() # estimates, ledger, SLO states
    live.disable_live()

Deliberately *not* imported by ``repro.obs`` itself: the base plane
stays import-light and the live plane is strictly opt-in.
"""

from __future__ import annotations

from repro.obs.live.bus import TelemetryBus
from repro.obs.live.estimator import ClusterEstimate, NodeEstimate, NodeEstimator
from repro.obs.live.ledger import Ledger
from repro.obs.live.plane import LivePlane, current_tenant, tenant_context
from repro.obs.live.slo import Objective, SLOMonitor, default_objectives

__all__ = [
    "TelemetryBus",
    "NodeEstimator",
    "NodeEstimate",
    "ClusterEstimate",
    "Ledger",
    "SLOMonitor",
    "Objective",
    "default_objectives",
    "LivePlane",
    "tenant_context",
    "current_tenant",
    "enable_live",
    "disable_live",
    "live_enabled",
    "get_plane",
    "active_plane",
    "reset_live",
]

_plane: LivePlane | None = None


def enable_live(**kwargs) -> LivePlane:
    """Create (or reuse) the process-global plane and attach it.

    Also enables :mod:`repro.obs` — the plane is fed by the tracer
    sink, so there is nothing to consume while tracing is off.
    """
    import repro.obs as obs

    global _plane
    if _plane is None:
        _plane = LivePlane(**kwargs)
    obs.enable()
    return _plane.attach()


def disable_live() -> None:
    """Detach the plane from the tracer (state stays readable)."""
    if _plane is not None:
        _plane.detach()


def live_enabled() -> bool:
    return _plane is not None and _plane.attached


def get_plane() -> LivePlane | None:
    """The global plane, attached or not (None if never enabled)."""
    return _plane


def active_plane() -> LivePlane | None:
    """The global plane only while attached — the publisher-side check."""
    if _plane is not None and _plane.attached:
        return _plane
    return None


def reset_live() -> None:
    """Detach and drop the global plane (tests)."""
    global _plane
    disable_live()
    _plane = None
