"""In-process metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds every instrument, keyed by
``(name, sorted label pairs)`` so labelled families (per-node
latencies, per-engine pool counts) are one get-or-create call at the
recording site::

    REG.counter("repro_tasks_total", node="3").inc()
    REG.histogram("repro_task_runtime_seconds", node="3").observe(0.12)

Snapshots are plain dicts (JSON-ready) and :meth:`render_prometheus`
emits the text exposition format, so a scrape endpoint or a file dump
are both one-liners. Everything is thread-safe; instruments are
lock-free on the hot path except histograms (one ``threading.Lock``
per instrument, held for two additions).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
]

#: Seconds buckets spanning sub-millisecond no-op checks to multi-minute
#: jobs; the trailing +inf bucket is implicit in the exposition.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Bytes buckets for payload-size distributions (128 B – 64 MiB).
DEFAULT_BYTES_BUCKETS: tuple[float, ...] = tuple(
    float(128 * 4**i) for i in range(10)
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition: backslash, double-quote and newline
    # must be escaped inside label values (\\, \", \n) or the line
    # becomes unparseable.
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labels: _LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket exposition.

    ``bounds`` are the upper edges of each bucket, ascending; an
    implicit +inf bucket catches the tail. ``observe`` is O(#buckets)
    — fine for the few-dozen-bucket defaults.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "count", "_lock")

    def __init__(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: _LabelKey = (),
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for +inf
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create registry for every instrument in the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], Any] = {}

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        # Deliberate lock-free fast path: instruments are never removed
        # outside reset(), so a hit here is safe under CPython's atomic
        # dict reads, and the hot inc()/observe() callers skip the lock.
        # repro: noqa[GUARD-CONSISTENCY]
        found = self._metrics.get(key)
        if found is not None:
            if not isinstance(found, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(found).__name__}"
                )
            return found
        with self._lock:
            found = self._metrics.get(key)
            if found is None:
                found = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = found
            return found

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def reset(self) -> None:
        """Drop every instrument (tests, or a fresh measurement run)."""
        with self._lock:
            self._metrics.clear()

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every instrument's current state."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict[str, Any] = {}
        for (name, labels), metric in items:
            entry_name = name + _label_suffix(labels)
            if isinstance(metric, Histogram):
                out[entry_name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.total,
                    "mean": metric.mean,
                    "buckets": {
                        **{str(b): c for b, c in zip(metric.bounds, metric.counts)},
                        "+inf": metric.counts[-1],
                    },
                }
            else:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                out[entry_name] = {"type": kind, "value": metric.value}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        by_family: dict[str, list[tuple[_LabelKey, Any]]] = {}
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, labels), metric in items:
            by_family.setdefault(name, []).append((labels, metric))
        lines: list[str] = []
        for name, members in by_family.items():
            sample = members[0][1]
            kind = (
                "counter"
                if isinstance(sample, Counter)
                else "histogram" if isinstance(sample, Histogram) else "gauge"
            )
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in members:
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.bounds, metric.counts):
                        cumulative += count
                        le = _label_suffix(labels + (("le", repr(bound)),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += metric.counts[-1]
                    le = _label_suffix(labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{_label_suffix(labels)} {metric.total}")
                    lines.append(f"{name}_count{_label_suffix(labels)} {metric.count}")
                else:
                    lines.append(f"{name}{_label_suffix(labels)} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")
