"""Structured logging under a single ``repro.*`` namespace.

Thin layer over stdlib :mod:`logging`: every module gets its logger via
:func:`get_logger`, events are emitted through :func:`log_event` as
``event key=value ...`` lines, and the root ``repro`` logger carries a
``NullHandler`` so the library stays silent unless the application (or
:func:`configure`) installs a handler. This replaces the bare
``except: pass`` paths that used to swallow shutdown/teardown failures
— those now leave a debug-level record behind.
"""

from __future__ import annotations

import logging
from typing import Any

#: Every logger in the library hangs off this namespace, so one line —
#: ``logging.getLogger("repro").setLevel(logging.DEBUG)`` — turns on
#: the whole library's diagnostics.
ROOT_NAMESPACE = "repro"

_root = logging.getLogger(ROOT_NAMESPACE)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Logger rooted under ``repro.`` (module ``__name__``s already are)."""
    if name != ROOT_NAMESPACE and not name.startswith(ROOT_NAMESPACE + "."):
        name = f"{ROOT_NAMESPACE}.{name}"
    return logging.getLogger(name)


def format_fields(fields: dict[str, Any]) -> str:
    """Render ``key=value`` pairs, quoting values with spaces."""
    parts = []
    for key, value in fields.items():
        text = repr(value) if isinstance(value, str) and " " in value else str(value)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: Any
) -> None:
    """Emit a structured ``event key=value ...`` record.

    Formatting is deferred behind ``isEnabledFor`` so disabled levels
    cost one integer comparison — safe on teardown paths.
    """
    if logger.isEnabledFor(level):
        message = event if not fields else f"{event} {format_fields(fields)}"
        logger.log(level, message)


def configure(level: int = logging.INFO, stream: Any = None) -> logging.Logger:
    """Attach a stderr (or ``stream``) handler to the ``repro`` root.

    Convenience for scripts and the CLI; idempotent — an existing
    stream handler is reused rather than duplicated.
    """
    root = logging.getLogger(ROOT_NAMESPACE)
    root.setLevel(level)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            return root
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    root.addHandler(handler)
    return root
