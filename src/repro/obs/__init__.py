"""``repro.obs`` — tracing, metrics and energy telemetry.

One module-level switch gates the whole subsystem. Disabled (the
default) every instrumentation point reduces to a single flag check —
``obs.enabled()`` — or a no-op span, so the pipeline's measured
timings and the kernels' bit-identity are untouched (the pipeline
benchmark asserts the disabled overhead on the sketch stage is < 2%).

Enabled, the process-global :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` collect spans and
instrument updates from every instrumented layer::

    from repro import obs

    obs.enable()
    report = pp.execute(items, workload, strategy)
    obs.export_jsonl("run.trace.jsonl")      # repro obs report <file>
    obs.export_chrome("run.trace.json")      # chrome://tracing / Perfetto
    print(obs.render_prometheus())
    obs.disable()

Worker processes ship their spans back through the pool-task return
path (see :mod:`repro.cluster.engines`); the enabled flag travels in
the task tuple, so a lazily created persistent pool needs no restart
when tracing is toggled.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.obs.energy import (
    energy_split,
    node_energy_breakdown,
    record_job_metrics,
    task_energy_attrs,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    SCHEMA_VERSION,
    NoopSpan,
    Span,
    Tracer,
    read_spans,
    validate_jsonl,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "span",
    "traced",
    "emit",
    "get_tracer",
    "get_metrics",
    "export_jsonl",
    "export_chrome",
    "metrics_snapshot",
    "render_prometheus",
    "get_logger",
    "log_event",
    "configure_logging",
    "node_energy_breakdown",
    "task_energy_attrs",
    "energy_split",
    "record_job_metrics",
    "read_spans",
    "validate_jsonl",
    "Tracer",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "SCHEMA_VERSION",
]

_enabled: bool = os.environ.get("REPRO_OBS", "") not in ("", "0", "false", "off")
_tracer = Tracer()
_metrics = MetricsRegistry()


def enabled() -> bool:
    """The one flag every instrumentation point checks first."""
    return _enabled


def enable() -> None:
    """Turn span/metric collection on, process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off; already-collected spans/metrics survive
    until :func:`reset` so they can still be exported."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear all collected spans and metric instruments."""
    _tracer.reset()
    _metrics.reset()


def get_tracer() -> Tracer:
    return _tracer


def get_metrics() -> MetricsRegistry:
    return _metrics


def span(name: str, **attrs: Any):
    """Context-manager span on the global tracer; no-op when disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def emit(
    name: str,
    start_s: float,
    duration_s: float,
    parent_id: str | None = None,
    **attrs: Any,
) -> dict | None:
    """Pre-timed span on the global tracer; no-op when disabled."""
    if not _enabled:
        return None
    return _tracer.emit(name, start_s, duration_s, parent_id=parent_id, **attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator: wrap a function in a span when obs is enabled.

    The flag is consulted per call, so decorating costs nothing when
    the subsystem stays off.
    """

    def decorate(fn: Callable) -> Callable:
        import functools

        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _enabled:
                return fn(*args, **kwargs)
            with _tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def export_jsonl(path: str | os.PathLike) -> int:
    return _tracer.export_jsonl(path)


def export_chrome(path: str | os.PathLike) -> int:
    return _tracer.export_chrome(path)


def metrics_snapshot() -> dict[str, Any]:
    return _metrics.snapshot()


def render_prometheus() -> str:
    return _metrics.render_prometheus()
