"""Energy telemetry: per-node time/energy breakdowns from job results.

Bridges :mod:`repro.energy.accounting` into the observability plane
without importing any cluster types — everything here duck-types on
the ``TaskResult`` fields (``node_id``, ``runtime_s``, ``energy_j``,
``dirty_energy_j``), so it works on :class:`~repro.cluster.engines.JobResult`
from any engine (simulated, process-pool, fault-injecting,
work-stealing).

The invariant the acceptance tests pin: summing the per-node (or
per-span) attributes reproduces the job totals exactly — the breakdown
is an exact regrouping of the same floats, never a re-measurement.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "node_energy_breakdown",
    "task_energy_attrs",
    "energy_split",
    "record_job_metrics",
]


def task_energy_attrs(task: Any) -> dict[str, Any]:
    """Span attributes for one executed task, energy fields included."""
    energy = float(task.energy_j)
    dirty = float(task.dirty_energy_j)
    attrs = {
        "partition_id": int(task.partition_id),
        "node_id": int(task.node_id),
        "work_units": float(task.work_units),
        "runtime_s": float(task.runtime_s),
        "energy_j": energy,
        "dirty_energy_j": dirty,
        "green_energy_j": energy - dirty,
        "green_fraction": (energy - dirty) / energy if energy > 0 else 1.0,
    }
    stats = getattr(task, "stats", None) or {}
    if stats.get("wasted"):
        # Fault-injected attempts: energy was burned but the output was
        # discarded; the live ledger bills this separately per tenant.
        attrs["wasted"] = True
    return attrs


def node_energy_breakdown(job: Any) -> dict[int, dict[str, float]]:
    """Per-node ``{busy_s, energy_j, dirty_energy_j, green_energy_j,
    green_fraction, tasks}`` aggregated over ``job.tasks``.

    Sums are exact regroupings of the task fields, so
    ``sum(row["energy_j"]) == job.total_energy_j`` (and likewise for
    dirty energy) up to float addition order.
    """
    rows: dict[int, dict[str, float]] = {}
    for task in job.tasks:
        row = rows.setdefault(
            int(task.node_id),
            {
                "busy_s": 0.0,
                "energy_j": 0.0,
                "dirty_energy_j": 0.0,
                "green_energy_j": 0.0,
                "tasks": 0,
            },
        )
        row["busy_s"] += float(task.runtime_s)
        row["energy_j"] += float(task.energy_j)
        row["dirty_energy_j"] += float(task.dirty_energy_j)
        row["green_energy_j"] += float(task.energy_j) - float(task.dirty_energy_j)
        row["tasks"] += 1
    for row in rows.values():
        row["green_fraction"] = (
            row["green_energy_j"] / row["energy_j"] if row["energy_j"] > 0 else 1.0
        )
    return dict(sorted(rows.items()))


def energy_split(spans: Iterable[dict]) -> dict[str, float]:
    """Total/dirty/green energy summed over task spans (from a trace).

    Only spans carrying an ``energy_j`` attribute contribute, so stage
    and worker spans pass through untouched.
    """
    total = dirty = 0.0
    tasks = 0
    for span in spans:
        attrs = span.get("attrs", {})
        if "energy_j" not in attrs:
            continue
        total += float(attrs["energy_j"])
        dirty += float(attrs.get("dirty_energy_j", 0.0))
        tasks += 1
    return {
        "task_spans": tasks,
        "energy_j": total,
        "dirty_energy_j": dirty,
        "green_energy_j": total - dirty,
        "green_fraction": (total - dirty) / total if total > 0 else 1.0,
    }


def record_job_metrics(metrics: Any, job: Any, engine: str) -> None:
    """Feed one job's per-node energy/latency numbers into a registry."""
    metrics.counter("repro_jobs_total", engine=engine).inc()
    for task in job.tasks:
        node = str(int(task.node_id))
        metrics.counter("repro_tasks_total", node=node).inc()
        metrics.histogram("repro_task_runtime_seconds", node=node).observe(
            float(task.runtime_s)
        )
        metrics.histogram("repro_task_queue_wait_seconds", node=node).observe(
            float(task.start_s)
        )
        metrics.counter("repro_energy_joules_total", node=node).inc(
            float(task.energy_j)
        )
        metrics.counter("repro_dirty_energy_joules_total", node=node).inc(
            float(task.dirty_energy_j)
        )
