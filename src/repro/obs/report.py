"""Trace-file summaries backing the ``repro obs report`` command.

Consumes the JSONL format written by :meth:`Tracer.export_jsonl` and
renders the three views an engineer reads first:

- per-stage latency (``stage.*`` spans, the five-stage pipeline),
- per-node latency + energy split (``task.execute`` spans carry the
  energy attributes the engines attach),
- top-N slowest spans of any kind,
- kernel tier dispatch counts, when a ``<trace>.metrics.json`` sidecar
  (written by ``repro compare --trace``) sits next to the trace — the
  ``repro_kernel_dispatch_total{kernel,tier}`` counters say which
  autotuner tier actually ran,
- the job-service section, when the sidecar carries ``repro_service_*``
  series — submissions/rejections, terminal states, queue-depth posture,
  p50/p99 queue-wait and run latency.
"""

from __future__ import annotations

import heapq
import json
import os
import re
from collections import defaultdict
from typing import Any, Iterable, Sequence

from repro.obs.trace import SCHEMA_VERSION, iter_records

__all__ = [
    "TraceAggregate",
    "stage_table",
    "node_table",
    "slowest_spans",
    "kernel_dispatch_table",
    "service_section",
    "histogram_quantile",
    "render_report",
    "report_from_file",
]

_DISPATCH_KEY = re.compile(
    r'^repro_kernel_dispatch_total\{kernel="([^"]+)",tier="([^"]+)"\}$'
)

_LABELLED_KEY = re.compile(r'^(?P<name>[^{]+)\{(?P<labels>.*)\}$')
_LABEL_PAIR = re.compile(r'(\w+)="([^"]*)"')


def _parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot key ``name{k="v",...}`` into name + labels."""
    m = _LABELLED_KEY.match(key)
    if not m:
        return key, {}
    return m.group("name"), dict(_LABEL_PAIR.findall(m.group("labels")))


def _fmt_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class TraceAggregate:
    """Everything the report needs, folded span-by-span in one pass.

    The streaming counterpart of handing ``render_report`` a span list:
    holds per-stage and per-node sums, energy-split accumulators and a
    bounded top-N heap of slowest spans — memory is O(stages + nodes +
    top_n) regardless of trace size, which is what lets
    ``repro obs report`` digest multi-hundred-MB service traces.
    """

    def __init__(self, top_n: int = 10):
        self.top_n = top_n
        self.spans = 0
        self.task_spans = 0
        self.pids: set[int] = set()
        self._stages: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])
        self._nodes: dict[int, dict[str, float]] = {}
        self._energy_j = 0.0
        self._dirty_j = 0.0
        self._energy_spans = 0
        self._heap: list[tuple[float, int, dict]] = []
        self._tiebreak = 0

    def add(self, span: dict) -> None:
        self.spans += 1
        self.pids.add(span["pid"])
        duration = float(span["duration_s"])
        name = span["name"]
        attrs = span.get("attrs", {})
        if name.startswith("stage."):
            bucket = self._stages[name]
            bucket[0] += 1
            bucket[1] += duration
        if name == "task.execute" and "node_id" in attrs:
            self.task_spans += 1
            row = self._nodes.setdefault(
                int(attrs["node_id"]),
                {"tasks": 0, "busy_s": 0.0, "energy_j": 0.0, "dirty_energy_j": 0.0},
            )
            row["tasks"] += 1
            row["busy_s"] += float(attrs.get("runtime_s", duration))
            row["energy_j"] += float(attrs.get("energy_j", 0.0))
            row["dirty_energy_j"] += float(attrs.get("dirty_energy_j", 0.0))
        if "energy_j" in attrs:  # the energy_split predicate
            self._energy_j += float(attrs["energy_j"])
            self._dirty_j += float(attrs.get("dirty_energy_j", 0.0))
            self._energy_spans += 1
        self._tiebreak += 1
        entry = (duration, self._tiebreak, span)
        if len(self._heap) < self.top_n:
            heapq.heappush(self._heap, entry)
        elif self.top_n > 0 and entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    # -- read side ----------------------------------------------------------

    def stage_rows(self) -> list[dict[str, Any]]:
        return [
            {
                "stage": name,
                "count": int(count),
                "total_s": total,
                "mean_s": total / count,
            }
            for name, (count, total) in sorted(
                self._stages.items(), key=lambda kv: -kv[1][1]
            )
        ]

    def node_rows(self) -> list[dict[str, Any]]:
        out = []
        for node_id, row in sorted(self._nodes.items()):
            green = row["energy_j"] - row["dirty_energy_j"]
            out.append(
                {
                    "node": node_id,
                    **row,
                    "green_energy_j": green,
                    "green_fraction": (
                        green / row["energy_j"] if row["energy_j"] else 1.0
                    ),
                }
            )
        return out

    def top_spans(self) -> list[dict]:
        return [
            span for _, _, span in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        ]

    def split(self) -> dict[str, float]:
        """Same shape as :func:`repro.obs.energy.energy_split`."""
        green = self._energy_j - self._dirty_j
        return {
            "task_spans": self._energy_spans,
            "energy_j": self._energy_j,
            "dirty_energy_j": self._dirty_j,
            "green_energy_j": green,
            "green_fraction": green / self._energy_j if self._energy_j > 0 else 1.0,
        }


def stage_table(spans: list[dict]) -> list[dict[str, Any]]:
    """Aggregate ``stage.*`` spans: count, total and mean seconds."""
    agg: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        if span["name"].startswith("stage."):
            agg[span["name"]].append(float(span["duration_s"]))
    return [
        {
            "stage": name,
            "count": len(durs),
            "total_s": sum(durs),
            "mean_s": sum(durs) / len(durs),
        }
        for name, durs in sorted(agg.items(), key=lambda kv: -sum(kv[1]))
    ]


def node_table(spans: list[dict]) -> list[dict[str, Any]]:
    """Per-node latency and energy from ``task.execute`` spans."""
    agg: dict[int, dict[str, float]] = {}
    for span in spans:
        attrs = span.get("attrs", {})
        if span["name"] != "task.execute" or "node_id" not in attrs:
            continue
        row = agg.setdefault(
            int(attrs["node_id"]),
            {"tasks": 0, "busy_s": 0.0, "energy_j": 0.0, "dirty_energy_j": 0.0},
        )
        row["tasks"] += 1
        row["busy_s"] += float(attrs.get("runtime_s", span["duration_s"]))
        row["energy_j"] += float(attrs.get("energy_j", 0.0))
        row["dirty_energy_j"] += float(attrs.get("dirty_energy_j", 0.0))
    out = []
    for node_id, row in sorted(agg.items()):
        green = row["energy_j"] - row["dirty_energy_j"]
        out.append(
            {
                "node": node_id,
                **row,
                "green_energy_j": green,
                "green_fraction": green / row["energy_j"] if row["energy_j"] else 1.0,
            }
        )
    return out


def slowest_spans(spans: list[dict], top_n: int = 10) -> list[dict]:
    return sorted(spans, key=lambda s: -float(s["duration_s"]))[:top_n]


def kernel_dispatch_table(metrics: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-(kernel, tier) dispatch counts from a metrics snapshot.

    ``metrics`` is the JSON object of a ``<trace>.metrics.json`` sidecar
    — the :func:`repro.obs.metrics_snapshot` mapping whose keys render
    labels inline (``name{k="v"}``). Non-dispatch entries are ignored.
    """
    rows = []
    for key, entry in metrics.items():
        m = _DISPATCH_KEY.match(key)
        if not m or not isinstance(entry, dict):
            continue
        rows.append(
            {"kernel": m.group(1), "tier": m.group(2), "count": int(entry["value"])}
        )
    rows.sort(key=lambda r: (r["kernel"], r["tier"]))
    return rows


def histogram_quantile(entry: dict[str, Any], q: float) -> float | None:
    """Upper-bound quantile estimate from a snapshot histogram entry.

    Returns the upper edge of the first bucket whose cumulative count
    reaches ``q`` of the total (``inf`` when it lands in the +inf
    bucket), or None for an empty histogram.
    """
    count = int(entry.get("count") or 0)
    if count <= 0:
        return None
    buckets = entry.get("buckets", {})
    edges = sorted(
        (float(bound), int(n)) for bound, n in buckets.items() if bound != "+inf"
    )
    target = q * count
    cumulative = 0
    for bound, n in edges:
        cumulative += n
        if cumulative >= target:
            return bound
    return float("inf")


def service_section(metrics: dict[str, Any]) -> dict[str, Any] | None:
    """Job-service posture from a metrics snapshot, or None when the
    snapshot carries no ``repro_service_*`` series.

    Aggregates the counters/histograms the
    :class:`~repro.service.manager.JobManager` records: submissions,
    terminal states, rejections by reason, the queue-depth distribution
    (sampled at every admission and dequeue — depth over time), and
    p50/p99 queue-wait and run latency.
    """
    counters: dict[str, float] = {}
    states: dict[str, int] = {}
    rejections: dict[str, int] = {}
    hists: dict[str, dict[str, Any]] = {}
    gauges: dict[str, float] = {}
    for key, entry in metrics.items():
        if not key.startswith("repro_service_") or not isinstance(entry, dict):
            continue
        name, labels = _parse_metric_key(key)
        if entry.get("type") == "histogram":
            hists[name] = entry
        elif entry.get("type") == "gauge":
            gauges[name] = float(entry.get("value", 0.0))
        elif name == "repro_service_jobs_total":
            states[labels.get("state", "?")] = int(entry["value"])
        elif name == "repro_service_rejected_total":
            rejections[labels.get("reason", "?")] = int(entry["value"])
        else:
            counters[name] = counters.get(name, 0.0) + float(entry["value"])
    if not (counters or states or rejections or hists or gauges):
        return None

    def quantiles(name: str) -> dict[str, Any]:
        entry = hists.get(name)
        if entry is None:
            return {"count": 0, "mean": None, "p50": None, "p99": None}
        return {
            "count": int(entry.get("count", 0)),
            "mean": entry.get("mean"),
            "p50": histogram_quantile(entry, 0.50),
            "p99": histogram_quantile(entry, 0.99),
        }

    return {
        "submitted": int(counters.get("repro_service_submitted_total", 0)),
        "accepted": int(counters.get("repro_service_accepted_total", 0)),
        "rejections": dict(sorted(rejections.items())),
        "states": dict(sorted(states.items())),
        "results_evicted": int(
            counters.get("repro_service_results_evicted_total", 0)
        ),
        "queue_depth": {
            "current": gauges.get("repro_service_queue_depth"),
            "peak": gauges.get("repro_service_queue_depth_peak"),
            **quantiles("repro_service_queue_depth_jobs"),
        },
        "queue_wait_s": quantiles("repro_service_queue_wait_seconds"),
        "run_s": quantiles("repro_service_run_seconds"),
    }


def _fmt_quantile(value: Any) -> str:
    if value is None:
        return "-"
    value = float(value)
    if value == float("inf"):
        return ">max"
    return f"{value:.4f}"


def render_report(
    spans: Iterable[dict],
    top_n: int = 10,
    title: str = "",
    metrics: dict[str, Any] | None = None,
) -> str:
    """The full ASCII report over one trace's spans.

    ``spans`` may be any iterable — it is consumed exactly once.
    """
    agg = TraceAggregate(top_n)
    for span in spans:
        agg.add(span)
    return _render_aggregate(agg, title=title, metrics=metrics)


def _render_aggregate(
    agg: TraceAggregate, title: str = "", metrics: dict[str, Any] | None = None
) -> str:
    sections: list[str] = []
    if title:
        sections.append(title)
    sections.append(
        f"{agg.spans} spans from {len(agg.pids)} process(es); "
        f"{agg.task_spans} task spans"
    )

    stages = agg.stage_rows()
    if stages:
        sections.append("\n== pipeline stages ==")
        sections.append(
            _fmt_table(
                ("stage", "count", "total_s", "mean_s"),
                [
                    (r["stage"], r["count"], f"{r['total_s']:.4f}", f"{r['mean_s']:.4f}")
                    for r in stages
                ],
            )
        )

    nodes = agg.node_rows()
    if nodes:
        sections.append("\n== per-node tasks & energy ==")
        sections.append(
            _fmt_table(
                (
                    "node", "tasks", "busy_s", "energy_j",
                    "dirty_j", "green_j", "green_frac",
                ),
                [
                    (
                        r["node"],
                        r["tasks"],
                        f"{r['busy_s']:.3f}",
                        f"{r['energy_j']:.1f}",
                        f"{r['dirty_energy_j']:.1f}",
                        f"{r['green_energy_j']:.1f}",
                        f"{r['green_fraction']:.3f}",
                    )
                    for r in nodes
                ],
            )
        )
        split = agg.split()
        sections.append(
            f"energy split: {split['energy_j']:.1f} J total = "
            f"{split['dirty_energy_j']:.1f} J dirty + "
            f"{split['green_energy_j']:.1f} J green "
            f"(green fraction {split['green_fraction']:.3f})"
        )

    top = agg.top_spans()
    if top:
        sections.append(f"\n== top {len(top)} slowest spans ==")
        sections.append(
            _fmt_table(
                ("duration_s", "name", "pid", "span_id"),
                [
                    (f"{s['duration_s']:.4f}", s["name"], s["pid"], s["span_id"])
                    for s in top
                ],
            )
        )

    dispatch = kernel_dispatch_table(metrics) if metrics else []
    if dispatch:
        sections.append("\n== kernel tier dispatch ==")
        sections.append(
            _fmt_table(
                ("kernel", "tier", "count"),
                [(r["kernel"], r["tier"], r["count"]) for r in dispatch],
            )
        )

    service = service_section(metrics) if metrics else None
    if service:
        sections.append("\n== service ==")
        rejected = sum(service["rejections"].values())
        line = (
            f"submitted {service['submitted']}  "
            f"accepted {service['accepted']}  rejected {rejected}"
        )
        if service["rejections"]:
            reasons = ", ".join(
                f"{reason}={n}" for reason, n in service["rejections"].items()
            )
            line += f" ({reasons})"
        sections.append(line)
        if service["states"]:
            sections.append(
                "terminal states: "
                + ", ".join(f"{s}={n}" for s, n in service["states"].items())
            )
        if service["results_evicted"]:
            sections.append(f"results evicted (TTL): {service['results_evicted']}")
        depth = service["queue_depth"]
        sections.append(
            f"queue depth: current {_fmt_quantile(depth['current'])}  "
            f"peak {_fmt_quantile(depth['peak'])}  "
            f"p50 {_fmt_quantile(depth['p50'])}  p99 {_fmt_quantile(depth['p99'])} "
            f"(over {depth['count']} samples)"
        )
        sections.append(
            _fmt_table(
                ("latency", "count", "mean_s", "p50_s", "p99_s"),
                [
                    (
                        label,
                        row["count"],
                        _fmt_quantile(row["mean"]),
                        _fmt_quantile(row["p50"]),
                        _fmt_quantile(row["p99"]),
                    )
                    for label, row in (
                        ("queue_wait", service["queue_wait_s"]),
                        ("run", service["run_s"]),
                    )
                ],
            )
        )
    return "\n".join(sections)


def report_from_file(path: str | os.PathLike, top_n: int = 10) -> str:
    """Validate and summarise one JSONL trace file, in one streaming pass.

    Per-record schema checks happen inside :func:`iter_records`; the
    header checks (schema version, span-count match) happen here, so a
    corrupt trace still raises :class:`ValueError` without the whole
    span list ever being materialised.

    A ``<trace>.metrics.json`` sidecar next to the trace (written by
    ``repro compare --trace``) contributes the kernel-dispatch section.
    """
    agg = TraceAggregate(top_n)
    meta: dict = {}
    for record in iter_records(path):
        if record.get("type") == "meta":
            meta = record
            continue
        agg.add(record)
    if meta.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema_version {meta.get('schema_version')!r}")
    if meta.get("span_count") != agg.spans:
        raise ValueError(
            f"meta span_count {meta.get('span_count')} != {agg.spans} span lines"
        )
    metrics: dict[str, Any] | None = None
    sidecar = str(path) + ".metrics.json"
    if os.path.exists(sidecar):
        try:
            with open(sidecar, encoding="utf-8") as fh:
                loaded = json.load(fh)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict):
            metrics = loaded
    return _render_aggregate(agg, title=f"trace: {path}", metrics=metrics)
