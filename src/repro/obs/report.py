"""Trace-file summaries backing the ``repro obs report`` command.

Consumes the JSONL format written by :meth:`Tracer.export_jsonl` and
renders the three views an engineer reads first:

- per-stage latency (``stage.*`` spans, the five-stage pipeline),
- per-node latency + energy split (``task.execute`` spans carry the
  energy attributes the engines attach),
- top-N slowest spans of any kind,
- kernel tier dispatch counts, when a ``<trace>.metrics.json`` sidecar
  (written by ``repro compare --trace``) sits next to the trace — the
  ``repro_kernel_dispatch_total{kernel,tier}`` counters say which
  autotuner tier actually ran.
"""

from __future__ import annotations

import json
import os
import re
from collections import defaultdict
from typing import Any, Sequence

from repro.obs.energy import energy_split
from repro.obs.trace import read_spans, validate_jsonl

__all__ = [
    "stage_table",
    "node_table",
    "slowest_spans",
    "kernel_dispatch_table",
    "render_report",
    "report_from_file",
]

_DISPATCH_KEY = re.compile(
    r'^repro_kernel_dispatch_total\{kernel="([^"]+)",tier="([^"]+)"\}$'
)


def _fmt_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def stage_table(spans: list[dict]) -> list[dict[str, Any]]:
    """Aggregate ``stage.*`` spans: count, total and mean seconds."""
    agg: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        if span["name"].startswith("stage."):
            agg[span["name"]].append(float(span["duration_s"]))
    return [
        {
            "stage": name,
            "count": len(durs),
            "total_s": sum(durs),
            "mean_s": sum(durs) / len(durs),
        }
        for name, durs in sorted(agg.items(), key=lambda kv: -sum(kv[1]))
    ]


def node_table(spans: list[dict]) -> list[dict[str, Any]]:
    """Per-node latency and energy from ``task.execute`` spans."""
    agg: dict[int, dict[str, float]] = {}
    for span in spans:
        attrs = span.get("attrs", {})
        if span["name"] != "task.execute" or "node_id" not in attrs:
            continue
        row = agg.setdefault(
            int(attrs["node_id"]),
            {"tasks": 0, "busy_s": 0.0, "energy_j": 0.0, "dirty_energy_j": 0.0},
        )
        row["tasks"] += 1
        row["busy_s"] += float(attrs.get("runtime_s", span["duration_s"]))
        row["energy_j"] += float(attrs.get("energy_j", 0.0))
        row["dirty_energy_j"] += float(attrs.get("dirty_energy_j", 0.0))
    out = []
    for node_id, row in sorted(agg.items()):
        green = row["energy_j"] - row["dirty_energy_j"]
        out.append(
            {
                "node": node_id,
                **row,
                "green_energy_j": green,
                "green_fraction": green / row["energy_j"] if row["energy_j"] else 1.0,
            }
        )
    return out


def slowest_spans(spans: list[dict], top_n: int = 10) -> list[dict]:
    return sorted(spans, key=lambda s: -float(s["duration_s"]))[:top_n]


def kernel_dispatch_table(metrics: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-(kernel, tier) dispatch counts from a metrics snapshot.

    ``metrics`` is the JSON object of a ``<trace>.metrics.json`` sidecar
    — the :func:`repro.obs.metrics_snapshot` mapping whose keys render
    labels inline (``name{k="v"}``). Non-dispatch entries are ignored.
    """
    rows = []
    for key, entry in metrics.items():
        m = _DISPATCH_KEY.match(key)
        if not m or not isinstance(entry, dict):
            continue
        rows.append(
            {"kernel": m.group(1), "tier": m.group(2), "count": int(entry["value"])}
        )
    rows.sort(key=lambda r: (r["kernel"], r["tier"]))
    return rows


def render_report(
    spans: list[dict],
    top_n: int = 10,
    title: str = "",
    metrics: dict[str, Any] | None = None,
) -> str:
    """The full ASCII report over one trace's spans."""
    sections: list[str] = []
    if title:
        sections.append(title)
    pids = sorted({s["pid"] for s in spans})
    sections.append(
        f"{len(spans)} spans from {len(pids)} process(es); "
        f"{sum(1 for s in spans if s['name'] == 'task.execute')} task spans"
    )

    stages = stage_table(spans)
    if stages:
        sections.append("\n== pipeline stages ==")
        sections.append(
            _fmt_table(
                ("stage", "count", "total_s", "mean_s"),
                [
                    (r["stage"], r["count"], f"{r['total_s']:.4f}", f"{r['mean_s']:.4f}")
                    for r in stages
                ],
            )
        )

    nodes = node_table(spans)
    if nodes:
        sections.append("\n== per-node tasks & energy ==")
        sections.append(
            _fmt_table(
                (
                    "node", "tasks", "busy_s", "energy_j",
                    "dirty_j", "green_j", "green_frac",
                ),
                [
                    (
                        r["node"],
                        r["tasks"],
                        f"{r['busy_s']:.3f}",
                        f"{r['energy_j']:.1f}",
                        f"{r['dirty_energy_j']:.1f}",
                        f"{r['green_energy_j']:.1f}",
                        f"{r['green_fraction']:.3f}",
                    )
                    for r in nodes
                ],
            )
        )
        split = energy_split(spans)
        sections.append(
            f"energy split: {split['energy_j']:.1f} J total = "
            f"{split['dirty_energy_j']:.1f} J dirty + "
            f"{split['green_energy_j']:.1f} J green "
            f"(green fraction {split['green_fraction']:.3f})"
        )

    top = slowest_spans(spans, top_n)
    if top:
        sections.append(f"\n== top {len(top)} slowest spans ==")
        sections.append(
            _fmt_table(
                ("duration_s", "name", "pid", "span_id"),
                [
                    (f"{s['duration_s']:.4f}", s["name"], s["pid"], s["span_id"])
                    for s in top
                ],
            )
        )

    dispatch = kernel_dispatch_table(metrics) if metrics else []
    if dispatch:
        sections.append("\n== kernel tier dispatch ==")
        sections.append(
            _fmt_table(
                ("kernel", "tier", "count"),
                [(r["kernel"], r["tier"], r["count"]) for r in dispatch],
            )
        )
    return "\n".join(sections)


def report_from_file(path: str | os.PathLike, top_n: int = 10) -> str:
    """Validate and summarise one JSONL trace file.

    A ``<trace>.metrics.json`` sidecar next to the trace (written by
    ``repro compare --trace``) contributes the kernel-dispatch section.
    """
    validate_jsonl(path)
    _meta, spans = read_spans(path)
    metrics: dict[str, Any] | None = None
    sidecar = str(path) + ".metrics.json"
    if os.path.exists(sidecar):
        try:
            with open(sidecar, encoding="utf-8") as fh:
                loaded = json.load(fh)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict):
            metrics = loaded
    return render_report(spans, top_n=top_n, title=f"trace: {path}", metrics=metrics)
