"""Span-based tracer with JSONL and Chrome ``trace_event`` export.

Spans are plain dicts once finished (cheap to ship across the process
boundary through the worker-pool return path, cheap to serialize), and
the live API is a context manager / decorator::

    tracer = Tracer()
    with tracer.span("stage.sketch", items=5000) as sp:
        sp.set_attr("hashes", 48)

Parent/child nesting is tracked per thread; worker processes run their
own :class:`Tracer` and return ``finished_spans()`` with the task
result, which the parent re-parents under the span that launched the
task (:meth:`Tracer.adopt`). Wall-clock timestamps (``time.time``)
anchor spans on a cross-process-comparable axis while durations come
from ``perf_counter``.

Export targets:

- **JSONL** — one record per line, ``{"type": "span", ...}`` plus a
  leading ``{"type": "meta", ...}`` header; the schema the
  ``repro obs report`` command and the smoke test validate.
- **Chrome trace_event** — complete-event (``"ph": "X"``) JSON that
  loads directly in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "SCHEMA_VERSION",
    "validate_jsonl",
    "read_spans",
    "iter_records",
]

#: Bumped when the JSONL record layout changes.
SCHEMA_VERSION = 1

#: Keys every ``"type": "span"`` JSONL record must carry.
SPAN_REQUIRED_KEYS = frozenset(
    {"type", "name", "span_id", "parent_id", "pid", "tid", "start_s", "duration_s", "attrs"}
)

_ids = itertools.count(1)


def _new_span_id() -> str:
    # pid prefix keeps ids unique across forked workers without any
    # cross-process coordination.
    return f"{os.getpid():x}-{next(_ids):x}"


class NoopSpan:
    """The disabled-path span: every operation is a no-op.

    A single module-level instance is handed out, so the disabled cost
    of ``with obs.span(...)`` is one flag check plus two trivial calls.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None

    @property
    def span_id(self) -> None:
        return None


NOOP_SPAN = NoopSpan()


class Span:
    """A live span; becomes a plain dict on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "start_s", "_t0")

    def __init__(self, tracer: "Tracer", name: str, parent_id: str | None, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start_s = time.time()
        self._t0 = time.perf_counter()

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        self.tracer._pop(self)
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "start_s": self.start_s,
            "duration_s": duration,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.tracer._record(record)


class Tracer:
    """Collects finished spans; one per process (plus one per worker)."""

    def __init__(self) -> None:
        self._spans: list[dict] = []
        self._lock = threading.Lock()
        self._stack = threading.local()
        # Optional live consumer: every finished span record is handed
        # to the sink (outside the collection lock) — the hook the
        # repro.obs.live telemetry bus installs. None costs one check.
        self._sink: Callable[[dict], None] | None = None

    def set_sink(self, sink: Callable[[dict], None] | None) -> None:
        """Install (or clear) a per-record callback.

        The sink is invoked synchronously on the recording thread for
        every finished span, including adopted worker spans. A failing
        sink is logged and detached rather than poisoning tracing.
        """
        self._sink = sink

    def _feed_sink(self, record: dict) -> None:
        sink = self._sink
        if sink is None:
            return
        try:
            sink(record)
        except Exception:
            # A broken live consumer must never take the tracer down;
            # detach it so one bad record doesn't log-spam every span.
            self._sink = None
            from repro.obs.log import get_logger, log_event
            import logging

            log_event(
                get_logger(__name__), logging.WARNING,
                "trace.sink.detached", span=record.get("name"),
            )

    # -- span lifecycle -----------------------------------------------------

    def _stack_list(self) -> list[Span]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack_list().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack_list()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit; recover rather than corrupt
            stack.remove(span)

    def _record(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)
        self._feed_sink(record)

    def current_span_id(self) -> str | None:
        stack = self._stack_list()
        return stack[-1].span_id if stack else None

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; use as a context manager."""
        return Span(self, name, self.current_span_id(), attrs)

    def traced(self, name: str | None = None, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span`."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any):
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def emit(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        parent_id: str | None = None,
        **attrs: Any,
    ) -> dict:
        """Record a pre-timed span (simulated timelines, point events)."""
        record = {
            "type": "span",
            "name": name,
            "span_id": _new_span_id(),
            "parent_id": parent_id if parent_id is not None else self.current_span_id(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "start_s": start_s,
            "duration_s": duration_s,
            "attrs": attrs,
        }
        self._record(record)
        return record

    def adopt(self, records: Iterable[dict], parent_id: str | None = None) -> None:
        """Ingest spans finished elsewhere (a worker process); root
        spans among them are re-parented under ``parent_id``."""
        adopted: list[dict] = []
        with self._lock:
            for record in records:
                if parent_id is not None and record.get("parent_id") is None:
                    record = {**record, "parent_id": parent_id}
                self._spans.append(record)
                adopted.append(record)
        for record in adopted:
            self._feed_sink(record)

    # -- access & export ----------------------------------------------------

    def finished_spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def span_count(self) -> int:
        # Deliberately not __len__: a len() makes an empty tracer falsy,
        # which silently breaks ``if tracer`` guards.
        with self._lock:
            return len(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write the meta header + one span per line; returns span count."""
        spans = self.finished_spans()
        meta = {
            "type": "meta",
            "schema_version": SCHEMA_VERSION,
            "pid": os.getpid(),
            "span_count": len(spans),
            "written_at_s": time.time(),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(meta) + "\n")
            for record in spans:
                fh.write(json.dumps(record) + "\n")
        return len(spans)

    def export_chrome(self, path: str | os.PathLike) -> int:
        """Write Chrome ``trace_event`` JSON (complete events)."""
        spans = self.finished_spans()
        t0 = min((s["start_s"] for s in spans), default=0.0)
        events = [
            {
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (s["start_s"] - t0) * 1e6,
                "dur": s["duration_s"] * 1e6,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": {**s["attrs"], "span_id": s["span_id"]},
            }
            for s in spans
        ]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return len(events)


def iter_records(path: str | os.PathLike) -> Iterable[dict]:
    """Stream a JSONL trace file record-by-record, validating as it goes.

    Yields every record (the ``meta`` header first, then each span) with
    per-record schema checks, holding only one line in memory at a time —
    the reader `repro obs report` and `validate_jsonl` are built on, so
    multi-hundred-MB service traces never get materialised.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                pass
            elif kind == "span":
                missing = SPAN_REQUIRED_KEYS - record.keys()
                if missing:
                    raise ValueError(
                        f"{path}:{lineno}: span record missing keys {sorted(missing)}"
                    )
                if not isinstance(record["attrs"], dict):
                    raise ValueError(f"{path}:{lineno}: span attrs must be an object")
                if record["duration_s"] < 0:
                    raise ValueError(
                        f"{path}:{lineno}: span duration must be non-negative"
                    )
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
            yield record


def read_spans(path: str | os.PathLike) -> tuple[dict, list[dict]]:
    """Load a JSONL trace file → ``(meta, spans)``, validating as it goes.

    Materialises the whole span list; prefer :func:`iter_records` for
    large service traces.
    """
    meta: dict = {}
    spans: list[dict] = []
    for record in iter_records(path):
        if record.get("type") == "meta":
            meta = record
        else:
            spans.append(record)
    return meta, spans


def validate_jsonl(path: str | os.PathLike) -> dict:
    """Validate a trace file's schema; returns summary stats.

    Streams line-by-line (constant memory in the span count). Raises
    :class:`ValueError` on malformed records, wrong schema version, or a
    span-count mismatch against the meta header.
    """
    meta: dict = {}
    count = 0
    names: set[str] = set()
    pids: set[int] = set()
    for record in iter_records(path):
        if record.get("type") == "meta":
            meta = record
            continue
        count += 1
        names.add(record["name"])
        pids.add(record["pid"])
    if meta.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {meta.get('schema_version')!r}"
        )
    if meta.get("span_count") != count:
        raise ValueError(
            f"meta span_count {meta.get('span_count')} != {count} span lines"
        )
    return {
        "spans": count,
        "names": sorted(names),
        "pids": sorted(pids),
    }
