"""Unit tests for energy traces and trace generation."""

import numpy as np
import pytest

from repro.energy.traces import (
    GOOGLE_DC_LOCATIONS,
    EnergyTrace,
    Location,
    generate_trace,
)


class TestLocation:
    def test_presets_are_four_distinct_sites(self):
        assert len(GOOGLE_DC_LOCATIONS) == 4
        assert len({loc.name for loc in GOOGLE_DC_LOCATIONS}) == 4

    def test_presets_have_varied_cloudiness(self):
        clouds = [loc.mean_cloud for loc in GOOGLE_DC_LOCATIONS]
        assert max(clouds) - min(clouds) > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            Location("x", 95.0, 0.0, mean_cloud=0.5)
        with pytest.raises(ValueError):
            Location("x", 40.0, 0.0, mean_cloud=1.5)
        with pytest.raises(ValueError):
            Location("x", 40.0, 0.0, mean_cloud=0.5, cloud_persistence=1.0)


class TestEnergyTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyTrace(watts=np.array([]))
        with pytest.raises(ValueError):
            EnergyTrace(watts=np.array([-1.0]))
        with pytest.raises(ValueError):
            EnergyTrace(watts=np.array([1.0]), resolution_s=0.0)

    def test_power_at_samples(self):
        trace = EnergyTrace(watts=np.array([10.0, 20.0, 30.0]), resolution_s=1.0)
        assert trace.power_at(0.5) == 10.0
        assert trace.power_at(1.0) == 20.0
        assert trace.power_at(100.0) == 30.0  # clamps to final sample

    def test_power_at_negative_rejected(self):
        trace = EnergyTrace(watts=np.array([1.0]))
        with pytest.raises(ValueError):
            trace.power_at(-1.0)

    def test_mean_power_window(self):
        trace = EnergyTrace(watts=np.array([10.0, 20.0, 30.0, 40.0]), resolution_s=1.0)
        assert trace.mean_power(0.0, 2.0) == pytest.approx(15.0)
        assert trace.mean_power() == pytest.approx(25.0)

    def test_energy_integral_constant_trace(self):
        trace = EnergyTrace(watts=np.full(10, 50.0), resolution_s=1.0)
        assert trace.energy_joules(0.0, 5.0) == pytest.approx(250.0)

    def test_energy_integral_partial_cells(self):
        trace = EnergyTrace(watts=np.array([10.0, 20.0]), resolution_s=1.0)
        # 0.5s at 10W + 1s at 20W + 0.5s at 20W (extrapolated final sample)
        assert trace.energy_joules(0.5, 2.0) == pytest.approx(5.0 + 20.0 + 10.0)

    def test_energy_zero_duration(self):
        trace = EnergyTrace(watts=np.array([5.0]))
        assert trace.energy_joules(0.0, 0.0) == 0.0

    def test_duration(self):
        trace = EnergyTrace(watts=np.zeros(60), resolution_s=60.0)
        assert trace.duration_s == 3600.0


class TestGenerateTrace:
    def test_deterministic_in_seed(self):
        loc = GOOGLE_DC_LOCATIONS[0]
        t1 = generate_trace(loc, 3600.0, resolution_s=60.0, seed=5)
        t2 = generate_trace(loc, 3600.0, resolution_s=60.0, seed=5)
        assert np.array_equal(t1.watts, t2.watts)

    def test_different_seeds_differ(self):
        loc = GOOGLE_DC_LOCATIONS[0]
        t1 = generate_trace(loc, 3600.0, resolution_s=60.0, seed=1)
        t2 = generate_trace(loc, 3600.0, resolution_s=60.0, seed=2)
        assert not np.array_equal(t1.watts, t2.watts)

    def test_nonnegative_power(self):
        loc = GOOGLE_DC_LOCATIONS[1]
        trace = generate_trace(loc, 24 * 3600.0, resolution_s=600.0, seed=0)
        assert (trace.watts >= 0).all()

    def test_night_produces_zero(self):
        loc = GOOGLE_DC_LOCATIONS[0]
        trace = generate_trace(
            loc, 3600.0, start_hour=1.0, resolution_s=60.0, seed=0
        )
        assert trace.watts.max() == 0.0

    def test_daylight_produces_power(self):
        loc = GOOGLE_DC_LOCATIONS[3]  # sunniest site
        trace = generate_trace(loc, 3600.0, start_hour=12.0, resolution_s=60.0, seed=0)
        assert trace.watts.max() > 50.0

    def test_sunnier_site_higher_mean(self):
        # Averaged over seeds, the sunniest preset beats the cloudiest.
        cloudy, sunny = GOOGLE_DC_LOCATIONS[0], GOOGLE_DC_LOCATIONS[3]
        means_cloudy = np.mean(
            [
                generate_trace(cloudy, 6 * 3600.0, resolution_s=300.0, seed=s).watts.mean()
                for s in range(5)
            ]
        )
        means_sunny = np.mean(
            [
                generate_trace(sunny, 6 * 3600.0, resolution_s=300.0, seed=s).watts.mean()
                for s in range(5)
            ]
        )
        assert means_sunny > means_cloudy

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            generate_trace(GOOGLE_DC_LOCATIONS[0], 0.0)

    def test_trace_length_matches_duration(self):
        trace = generate_trace(
            GOOGLE_DC_LOCATIONS[0], 1000.0, resolution_s=60.0, seed=0
        )
        assert trace.watts.size == int(np.ceil(1000.0 / 60.0))
