"""Unit tests for dirty-energy accounting."""

import numpy as np
import pytest

from repro.energy.accounting import DirtyEnergyAccountant
from repro.energy.power import NodePowerModel
from repro.energy.traces import EnergyTrace


def accountant(watts_trace, cores=2, allow_negative=False, resolution=1.0):
    return DirtyEnergyAccountant(
        power=NodePowerModel(cores=cores),  # 60 + cores*95 W
        trace=EnergyTrace(watts=np.asarray(watts_trace, dtype=float), resolution_s=resolution),
        allow_negative=allow_negative,
    )


class TestDirtyPowerCoefficient:
    def test_deficit(self):
        acc = accountant([50.0, 50.0])  # draw 250 W, green 50 W
        assert acc.dirty_power_coefficient() == pytest.approx(200.0)

    def test_surplus_clamped_to_zero(self):
        acc = accountant([1000.0])
        assert acc.dirty_power_coefficient() == 0.0

    def test_surplus_allowed_when_negative_permitted(self):
        acc = accountant([1000.0], allow_negative=True)
        assert acc.dirty_power_coefficient() == pytest.approx(250.0 - 1000.0)

    def test_window_restricts_mean(self):
        acc = accountant([0.0, 0.0, 500.0, 500.0])
        k_early = acc.dirty_power_coefficient(window_s=2.0)
        k_all = acc.dirty_power_coefficient()
        assert k_early == pytest.approx(250.0)
        assert k_all == pytest.approx(0.0)  # mean green 250 == draw


class TestPredictedDirtyEnergy:
    def test_linear_in_runtime(self):
        acc = accountant([50.0])
        assert acc.predicted_dirty_energy(10.0) == pytest.approx(2000.0)

    def test_zero_runtime(self):
        assert accountant([50.0]).predicted_dirty_energy(0.0) == 0.0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            accountant([50.0]).predicted_dirty_energy(-1.0)


class TestMeasuredDirtyEnergy:
    def test_constant_trace_matches_prediction(self):
        acc = accountant([50.0, 50.0, 50.0, 50.0])
        assert acc.measured_dirty_energy(3.0) == pytest.approx(
            acc.predicted_dirty_energy(3.0, window_s=3.0)
        )

    def test_varying_trace_integrates_per_sample(self):
        acc = accountant([250.0, 0.0])  # draw 250 W
        # First second fully green (deficit 0), second fully dirty.
        assert acc.measured_dirty_energy(2.0) == pytest.approx(250.0)

    def test_surplus_does_not_offset_when_clamped(self):
        acc = accountant([500.0, 0.0])
        # Surplus in second 1 cannot cancel the deficit in second 2.
        assert acc.measured_dirty_energy(2.0) == pytest.approx(250.0)

    def test_surplus_offsets_when_allowed(self):
        acc = accountant([500.0, 0.0], allow_negative=True)
        assert acc.measured_dirty_energy(2.0) == pytest.approx(0.0)

    def test_start_offset(self):
        acc = accountant([0.0, 250.0])
        assert acc.measured_dirty_energy(1.0, start_s=1.0) == pytest.approx(0.0)
        assert acc.measured_dirty_energy(1.0, start_s=0.0) == pytest.approx(250.0)

    def test_zero_runtime(self):
        assert accountant([10.0]).measured_dirty_energy(0.0) == 0.0

    def test_runtime_past_trace_extends_final_sample(self):
        acc = accountant([100.0])
        # Deficit 150 W held for 10 s.
        assert acc.measured_dirty_energy(10.0) == pytest.approx(1500.0)


class TestGreenFraction:
    def test_fully_dirty(self):
        assert accountant([0.0]).green_fraction(5.0) == pytest.approx(0.0)

    def test_fully_green(self):
        assert accountant([1000.0]).green_fraction(5.0) == pytest.approx(1.0)

    def test_half_green(self):
        acc = accountant([125.0])  # draw 250 W
        assert acc.green_fraction(4.0) == pytest.approx(0.5)

    def test_invalid_runtime(self):
        with pytest.raises(ValueError):
            accountant([1.0]).green_fraction(0.0)
