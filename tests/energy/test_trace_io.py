"""Tests for energy-trace CSV round-tripping."""

import numpy as np
import pytest

from repro.energy.traces import GOOGLE_DC_LOCATIONS, EnergyTrace, generate_trace


class TestTraceCSV:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(
            GOOGLE_DC_LOCATIONS[0], 1800.0, resolution_s=60.0, seed=3
        )
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = EnergyTrace.from_csv(path, location=GOOGLE_DC_LOCATIONS[0])
        assert loaded.resolution_s == pytest.approx(60.0)
        assert np.allclose(loaded.watts, trace.watts, atol=1e-3)
        assert loaded.location is GOOGLE_DC_LOCATIONS[0]

    def test_header_written(self, tmp_path):
        trace = EnergyTrace(watts=np.array([1.0, 2.0]))
        path = tmp_path / "t.csv"
        trace.to_csv(path)
        assert path.read_text().splitlines()[0] == "time_s,watts"

    def test_single_row_defaults_resolution(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time_s,watts\n0.0,5.0\n")
        loaded = EnergyTrace.from_csv(path)
        assert loaded.resolution_s == 1.0
        assert loaded.watts.tolist() == [5.0]

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time_s,watts\n")
        with pytest.raises(ValueError):
            EnergyTrace.from_csv(path)

    def test_non_increasing_timestamps_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time_s,watts\n10.0,1.0\n5.0,1.0\n")
        with pytest.raises(ValueError):
            EnergyTrace.from_csv(path)

    def test_real_export_usable_in_accounting(self, tmp_path):
        """A trace loaded from CSV plugs straight into the accountant."""
        from repro.energy.accounting import DirtyEnergyAccountant
        from repro.energy.power import NodePowerModel

        path = tmp_path / "t.csv"
        path.write_text("time_s,watts\n0.0,100.0\n60.0,200.0\n")
        trace = EnergyTrace.from_csv(path)
        acc = DirtyEnergyAccountant(power=NodePowerModel(cores=2), trace=trace)
        assert acc.dirty_power_coefficient() == pytest.approx(250.0 - 150.0)
