"""Unit tests for the node power model (paper Section V-A arithmetic)."""

import pytest

from repro.energy.power import (
    PAPER_BASE_WATTS,
    PAPER_CORE_WATTS,
    NodePowerModel,
    paper_power_model,
)


class TestPaperArithmetic:
    def test_base_watts_derivation(self):
        # 1200 W chassis − 12 × 95 W Xeons = 60 W base.
        assert 1200 - 12 * PAPER_CORE_WATTS == PAPER_BASE_WATTS

    @pytest.mark.parametrize(
        "node_type,expected_watts",
        [(1, 440.0), (2, 345.0), (3, 250.0), (4, 155.0)],
    )
    def test_four_machine_types(self, node_type, expected_watts):
        assert paper_power_model(node_type).watts == expected_watts

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            paper_power_model(0)
        with pytest.raises(ValueError):
            paper_power_model(5)


class TestNodePowerModel:
    def test_affine_formula(self):
        model = NodePowerModel(cores=3, base_watts=50.0, per_core_watts=100.0)
        assert model.watts == 350.0

    def test_energy(self):
        model = NodePowerModel(cores=1, base_watts=0.0, per_core_watts=100.0)
        assert model.energy_joules(10.0) == 1000.0

    def test_energy_zero_duration(self):
        assert NodePowerModel(cores=1).energy_joules(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            NodePowerModel(cores=1).energy_joules(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodePowerModel(cores=0)
        with pytest.raises(ValueError):
            NodePowerModel(cores=1, base_watts=-1.0)
