"""Unit tests for the clear-sky solar model."""

import numpy as np
import pytest

from repro.energy.solar import (
    SolarModel,
    SolarPanel,
    clear_sky_irradiance,
    cloud_attenuation,
    solar_declination,
    solar_elevation,
)


class TestGeometry:
    def test_declination_bounds(self):
        days = np.arange(1, 366)
        decl = np.rad2deg(solar_declination(days))
        assert decl.max() <= 23.45 + 1e-9
        assert decl.min() >= -23.45 - 1e-9

    def test_declination_solstices(self):
        # Summer solstice (~day 172) near +23.45, winter (~day 355) near -23.45.
        assert np.rad2deg(solar_declination(172)) > 23.3
        assert np.rad2deg(solar_declination(355)) < -23.3

    def test_elevation_peaks_at_noon(self):
        hours = np.arange(0, 24, 0.5)
        el = solar_elevation(40.0, 172, hours)
        assert hours[np.argmax(el)] == 12.0

    def test_elevation_negative_at_midnight(self):
        assert solar_elevation(40.0, 172, 0.0) < 0


class TestIrradiance:
    def test_zero_at_night(self):
        assert clear_sky_irradiance(40.0, 172, 0.0) == 0.0
        assert clear_sky_irradiance(40.0, 172, 23.0) == 0.0

    def test_positive_at_noon(self):
        noon = clear_sky_irradiance(40.0, 172, 12.0)
        assert 600.0 < float(noon) < 1100.0

    def test_below_solar_constant(self):
        hours = np.arange(0, 24, 0.25)
        irr = clear_sky_irradiance(0.0, 80, hours)
        assert (irr < 1353.0).all()

    def test_summer_exceeds_winter_at_noon(self):
        summer = clear_sky_irradiance(45.0, 172, 12.0)
        winter = clear_sky_irradiance(45.0, 355, 12.0)
        assert float(summer) > float(winter)

    def test_vectorised_shape(self):
        hours = np.linspace(0, 24, 97)
        assert clear_sky_irradiance(40.0, 172, hours).shape == hours.shape


class TestCloudAttenuation:
    def test_clear_sky_unattenuated(self):
        assert cloud_attenuation(0.0) == pytest.approx(1.0)

    def test_overcast_floor(self):
        assert cloud_attenuation(1.0) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        w = np.linspace(0, 1, 50)
        att = cloud_attenuation(w)
        assert (np.diff(att) <= 0).all()

    def test_clips_out_of_range(self):
        assert cloud_attenuation(-0.5) == pytest.approx(1.0)
        assert cloud_attenuation(2.0) == pytest.approx(0.25)


class TestPanel:
    def test_rated_output_at_stc(self):
        panel = SolarPanel(rated_dc_watts=400.0, derate=1.0)
        assert panel.output_watts(1000.0) == pytest.approx(400.0)

    def test_derate_applies(self):
        panel = SolarPanel(rated_dc_watts=400.0, derate=0.77)
        assert panel.output_watts(1000.0) == pytest.approx(308.0)

    def test_linear_in_irradiance(self):
        panel = SolarPanel(rated_dc_watts=100.0, derate=1.0)
        assert panel.output_watts(500.0) == pytest.approx(50.0)

    def test_negative_irradiance_clipped(self):
        assert SolarPanel().output_watts(-100.0) == 0.0

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            SolarPanel(rated_dc_watts=0.0)
        with pytest.raises(ValueError):
            SolarPanel(derate=0.0)
        with pytest.raises(ValueError):
            SolarPanel(derate=1.5)


class TestGeophysicalSanity:
    def test_equator_equinox_day_length_near_12h(self):
        # At the equator on the equinox (~day 80), the sun is up ~12 h.
        hours = np.arange(0, 24, 0.05)
        irr = clear_sky_irradiance(0.0, 80, hours)
        daylight_h = (irr > 0).mean() * 24.0
        assert abs(daylight_h - 12.0) < 0.8

    def test_high_latitude_summer_days_longer(self):
        hours = np.arange(0, 24, 0.05)
        north_summer = (clear_sky_irradiance(60.0, 172, hours) > 0).mean()
        north_winter = (clear_sky_irradiance(60.0, 355, hours) > 0).mean()
        assert north_summer > north_winter + 0.2


class TestSolarModel:
    def test_cloud_reduces_power(self):
        model = SolarModel(latitude_deg=40.0)
        clear = model.power(172, 12.0, 0.0)
        cloudy = model.power(172, 12.0, 0.9)
        assert float(cloudy) < float(clear)

    def test_ideal_matches_zero_cloud(self):
        model = SolarModel(latitude_deg=40.0)
        assert float(model.ideal_power(172, 12.0)) == pytest.approx(
            float(model.power(172, 12.0, 0.0))
        )
