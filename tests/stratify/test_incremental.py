"""Tests for incremental stratum assignment (amortized one-time cost)."""

import numpy as np
import pytest

from repro.data.text import CorpusConfig, generate_corpus
from repro.stratify.stratifier import Stratification, Stratifier


@pytest.fixture(scope="module")
def setup():
    corpus = generate_corpus(CorpusConfig(num_docs=400, num_topics=4, seed=9))
    stratifier = Stratifier(kind="text", num_strata=4, num_hashes=48, seed=2)
    base_docs = corpus.documents[:300]
    new_docs = corpus.documents[300:]
    stratification = stratifier.stratify(base_docs)
    return corpus, stratifier, base_docs, new_docs, stratification


class TestAssignNew:
    def test_labels_in_range(self, setup):
        _, stratifier, _, new_docs, strat = setup
        labels = stratifier.assign_new(strat, new_docs)
        assert labels.shape == (len(new_docs),)
        assert labels.min() >= 0
        assert labels.max() < strat.num_strata

    def test_empty_new_items(self, setup):
        _, stratifier, _, _, strat = setup
        assert stratifier.assign_new(strat, []).size == 0

    def test_refit_items_land_in_own_stratum(self, setup):
        """Assigning the *training* items back must reproduce their own
        stratum labels (centres match their members)."""
        _, stratifier, base_docs, _, strat = setup
        labels = stratifier.assign_new(strat, base_docs)
        agreement = float(np.mean(labels == strat.labels))
        assert agreement > 0.9

    def test_new_items_follow_topics(self, setup):
        """New documents of a planted topic should mostly land in the
        stratum that holds that topic's training documents."""
        corpus, stratifier, base_docs, new_docs, strat = setup
        new_labels = stratifier.assign_new(strat, new_docs)
        topics_base = corpus.topic_of[: len(base_docs)]
        topics_new = corpus.topic_of[len(base_docs):]
        # Map each stratum to its dominant training topic.
        dominant = {}
        for s, members in enumerate(strat.strata):
            dominant[s] = int(np.bincount(topics_base[members]).argmax())
        hits = sum(
            1
            for label, topic in zip(new_labels, topics_new)
            if dominant[int(label)] == int(topic)
        )
        assert hits / len(new_docs) > 0.5

    def test_requires_kmodes_state(self, setup):
        _, stratifier, _, new_docs, strat = setup
        stripped = Stratification(labels=strat.labels, strata=strat.strata, kmodes=None)
        with pytest.raises(ValueError):
            stratifier.assign_new(stripped, new_docs)

    def test_deterministic(self, setup):
        _, stratifier, _, new_docs, strat = setup
        a = stratifier.assign_new(strat, new_docs)
        b = stratifier.assign_new(strat, new_docs)
        assert np.array_equal(a, b)
