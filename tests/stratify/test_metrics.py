"""Unit and property tests for clustering quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stratify.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    partition_label_entropy,
)

labels_strategy = st.lists(
    st.integers(min_value=0, max_value=4), min_size=2, max_size=60
)


class TestARI:
    def test_identical_is_one(self):
        labels = [0, 0, 1, 1, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [5, 5, 3, 3, 9, 9]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labels_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        ari = adjusted_rand_index(a, b)
        assert 0.0 < ari < 1.0

    def test_single_cluster_each(self):
        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == pytest.approx(1.0)

    @given(labels_strategy)
    @settings(max_examples=40)
    def test_self_ari_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(labels_strategy, st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_symmetric(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 3, size=len(labels))
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0])
        with pytest.raises(ValueError):
            adjusted_rand_index([], [])
        with pytest.raises(ValueError):
            adjusted_rand_index([-1, 0], [0, 0])


class TestNMI:
    def test_identical_is_one(self):
        assert normalized_mutual_information([0, 1, 0, 1], [0, 1, 0, 1]) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        assert normalized_mutual_information([0, 0, 1], [7, 7, 2]) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=3000)
        b = rng.integers(0, 3, size=3000)
        assert normalized_mutual_information(a, b) < 0.05

    @given(labels_strategy, st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_bounded(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 3, size=len(labels))
        nmi = normalized_mutual_information(labels, other)
        assert 0.0 <= nmi <= 1.0

    def test_constant_labels(self):
        assert normalized_mutual_information([0, 0, 0], [0, 0, 0]) == pytest.approx(1.0)


class TestPartitionEntropy:
    def test_pure_partitions_zero(self):
        labels = np.array([0, 0, 1, 1])
        parts = [np.array([0, 1]), np.array([2, 3])]
        assert partition_label_entropy(parts, labels) == pytest.approx(0.0)

    def test_mixed_partitions_positive(self):
        labels = np.array([0, 1, 0, 1])
        parts = [np.array([0, 1]), np.array([2, 3])]
        assert partition_label_entropy(parts, labels) == pytest.approx(np.log(2))

    def test_similar_lower_than_mixed(self):
        labels = np.array([0] * 50 + [1] * 50)
        similar = [np.arange(50), np.arange(50, 100)]
        mixed = [np.arange(0, 100, 2), np.arange(1, 100, 2)]
        assert partition_label_entropy(similar, labels) < partition_label_entropy(
            mixed, labels
        )

    def test_empty_partitions_skipped(self):
        labels = np.array([0, 0])
        parts = [np.array([], dtype=int), np.array([0, 1])]
        assert partition_label_entropy(parts, labels) == pytest.approx(0.0)

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_label_entropy([np.array([], dtype=int)], np.array([0]))
