"""Unit tests for domain-specific pivot extraction."""

import pytest

from repro.stratify.pivots import (
    UNIVERSE_SIZE,
    PivotExtractor,
    graph_pivots,
    stable_pivot_id,
    text_pivots,
    tree_pivots,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_pivot_id(1, 2, 3) == stable_pivot_id(1, 2, 3)

    def test_order_sensitive(self):
        assert stable_pivot_id(1, 2, 3) != stable_pivot_id(3, 2, 1)

    def test_in_universe(self):
        for args in [(0,), (1, 2), (10**9, 10**9, 10**9)]:
            assert 0 <= stable_pivot_id(*args) < UNIVERSE_SIZE

    def test_spreads_values(self):
        ids = {stable_pivot_id(i) for i in range(1000)}
        assert len(ids) == 1000  # no collisions over a small range


class TestTreePivots:
    def test_nonempty_for_small_tree(self):
        pivots = tree_pivots([-1, 0], [1, 2])
        assert pivots

    def test_identical_trees_share_all_pivots(self):
        parent = [-1, 0, 0, 1, 1]
        labels = [1, 2, 3, 4, 5]
        assert tree_pivots(parent, labels) == tree_pivots(parent, labels)

    def test_label_based_so_node_ids_irrelevant(self):
        # The same labelled structure with permuted node ids.
        a = tree_pivots([-1, 0, 0], [9, 5, 5])
        b = tree_pivots([1, -1, 1], [5, 9, 5])
        assert a & b  # shared structure => shared pivots

    def test_similar_trees_overlap_more_than_dissimilar(self):
        parent = [-1, 0, 0, 1, 1, 2, 2]
        base = tree_pivots(parent, [1, 2, 3, 4, 5, 6, 7])
        similar = tree_pivots(parent, [1, 2, 3, 4, 5, 6, 9])  # one label changed
        different = tree_pivots(parent, [11, 12, 13, 14, 15, 16, 17])
        assert len(base & similar) > len(base & different)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            tree_pivots([-1, 0], [1])


class TestGraphTextPivots:
    def test_graph_pivots_size(self):
        assert len(graph_pivots([1, 2, 3])) == 3

    def test_graph_pivots_set_semantics(self):
        assert graph_pivots([1, 1, 2]) == graph_pivots([2, 1])

    def test_text_pivots_deterministic(self):
        assert text_pivots([10, 20]) == text_pivots([20, 10])

    def test_domains_do_not_collide(self):
        # The same raw id hashes differently per domain tag.
        assert graph_pivots([42]) != text_pivots([42])


class TestPivotExtractor:
    def test_tree_kind(self):
        ex = PivotExtractor("tree")
        assert ex(([-1, 0], [1, 2])) == tree_pivots([-1, 0], [1, 2])

    def test_graph_kind(self):
        assert PivotExtractor("graph")([1, 2]) == graph_pivots([1, 2])

    def test_text_kind(self):
        assert PivotExtractor("text")([5]) == text_pivots([5])

    def test_set_kind_passthrough(self):
        assert PivotExtractor("set")([3, 1]) == {1, 3}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PivotExtractor("audio")

    def test_extract_all_preserves_order(self):
        ex = PivotExtractor("text")
        docs = [[1], [2], [3]]
        out = ex.extract_all(docs)
        assert out == [text_pivots(d) for d in docs]
