"""Tests for the distributed stratification pipeline (paper Section IV)."""

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.data.text import CorpusConfig, generate_corpus
from repro.stratify.distributed import DistributedStratifier
from repro.stratify.stratifier import Stratifier


@pytest.fixture(scope="module")
def documents():
    return generate_corpus(CorpusConfig(num_docs=200, num_topics=4, seed=7)).documents


class TestDistributedStratifier:
    def test_matches_centralized_result(self, documents):
        """The distributed plan is an execution detail: labels must be
        identical to the centralized stratifier's."""
        cluster = paper_cluster(4, seed=0)
        central = Stratifier(kind="text", num_strata=4, num_hashes=32, seed=3)
        distributed = DistributedStratifier(
            cluster=cluster, kind="text", num_strata=4, num_hashes=32, seed=3
        )
        a = central.stratify(documents)
        b = distributed.stratify(documents)
        assert np.array_equal(a.labels, b.labels)

    def test_phases_recorded(self, documents):
        cluster = paper_cluster(4, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="text", num_strata=4, seed=0)
        ds.stratify(documents)
        assert ds.phases_completed == ["pivots", "sketches", "clustering"]

    def test_sketches_staged_on_every_node(self, documents):
        cluster = paper_cluster(4, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="text", num_strata=4, seed=0)
        ds.stratify(documents)
        for node in range(4):
            store = cluster.kv.store_for(node)
            assert store.exists(f"sketches:{node}")
            assert store.exists(f"sketch-index:{node}")

    def test_barrier_counters_on_master(self, documents):
        cluster = paper_cluster(4, seed=0)
        master, _ = cluster.master_nodes()
        ds = DistributedStratifier(cluster=cluster, kind="text", num_strata=4, seed=0)
        ds.stratify(documents)
        store = cluster.kv.store_for(master.node_id)
        # Two barrier generations, each with 4 arrivals.
        assert store.get("stratify:gen:0:arrivals") == 4
        assert store.get("stratify:gen:1:arrivals") == 4

    def test_single_node_cluster(self, documents):
        cluster = paper_cluster(1, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="text", num_strata=4, seed=0)
        strat = ds.stratify(documents)
        assert strat.num_items == len(documents)

    def test_empty_rejected(self):
        cluster = paper_cluster(2, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="text", num_strata=4)
        with pytest.raises(ValueError):
            ds.stratify([])

    def test_worker_errors_propagate(self):
        cluster = paper_cluster(2, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="graph", num_strata=2)
        # Graph extractor will fail on non-iterable items.
        with pytest.raises(TypeError):
            ds.stratify([1, 2, 3, 4])

    def test_tree_items_supported(self):
        from repro.data.trees import TreeDatasetConfig, generate_tree_dataset, tree_items

        items = tree_items(generate_tree_dataset(TreeDatasetConfig(num_trees=40, seed=1)))
        cluster = paper_cluster(4, seed=0)
        ds = DistributedStratifier(cluster=cluster, kind="tree", num_strata=4, seed=0)
        strat = ds.stratify(items)
        assert strat.num_items == 40
