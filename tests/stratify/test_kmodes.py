"""Unit tests for compositeKModes clustering."""

import numpy as np
import pytest

from repro.stratify.kmodes import CompositeKModes


def planted_sketches(n_per_cluster=30, k=16, n_clusters=3, noise_slots=2, seed=0):
    """Sketch matrix with planted clusters: cluster c uses base value
    1000*c in every slot, with a few noisy slots per row."""
    rng = np.random.default_rng(seed)
    rows = []
    labels = []
    for c in range(n_clusters):
        for _ in range(n_per_cluster):
            row = np.full(k, 1000 * (c + 1), dtype=np.uint64)
            noisy = rng.choice(k, size=noise_slots, replace=False)
            row[noisy] = rng.integers(1, 10**6, size=noise_slots)
            rows.append(row)
            labels.append(c)
    return np.stack(rows), np.array(labels)


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CompositeKModes(num_clusters=0)
        with pytest.raises(ValueError):
            CompositeKModes(top_l=0)
        with pytest.raises(ValueError):
            CompositeKModes(max_iter=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeKModes().fit(np.empty((0, 4), dtype=np.uint64))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            CompositeKModes().fit(np.zeros(5, dtype=np.uint64))


class TestClustering:
    def test_recovers_planted_clusters(self):
        sketches, truth = planted_sketches()
        result = CompositeKModes(num_clusters=3, top_l=2, seed=1).fit(sketches)
        # Every planted cluster should map to one dominant output label.
        for c in range(3):
            members = result.labels[truth == c]
            dominant = np.bincount(members).max()
            assert dominant / members.size >= 0.9

    def test_converges(self):
        sketches, _ = planted_sketches()
        result = CompositeKModes(num_clusters=3, seed=0).fit(sketches)
        assert result.converged
        assert result.iterations <= 50

    def test_labels_cover_all_rows(self):
        sketches, _ = planted_sketches()
        result = CompositeKModes(num_clusters=3, seed=0).fit(sketches)
        assert result.labels.shape == (sketches.shape[0],)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.num_clusters

    def test_cluster_sizes_sum_to_n(self):
        sketches, _ = planted_sketches()
        result = CompositeKModes(num_clusters=3, seed=0).fit(sketches)
        assert result.cluster_sizes().sum() == sketches.shape[0]

    def test_deterministic_in_seed(self):
        sketches, _ = planted_sketches()
        r1 = CompositeKModes(num_clusters=3, seed=42).fit(sketches)
        r2 = CompositeKModes(num_clusters=3, seed=42).fit(sketches)
        assert np.array_equal(r1.labels, r2.labels)

    def test_k_clamped_to_n(self):
        sketches = np.array([[1, 2], [3, 4]], dtype=np.uint64)
        result = CompositeKModes(num_clusters=10, seed=0).fit(sketches)
        assert result.num_clusters == 2

    def test_single_cluster(self):
        sketches, _ = planted_sketches(n_clusters=1)
        result = CompositeKModes(num_clusters=1, seed=0).fit(sketches)
        assert (result.labels == 0).all()

    def test_identical_rows_one_cluster_dominates(self):
        sketches = np.tile(np.array([5, 6, 7], dtype=np.uint64), (20, 1))
        result = CompositeKModes(num_clusters=4, seed=0).fit(sketches)
        # All rows identical => all land in one cluster with zero cost.
        assert len(set(result.labels.tolist())) == 1
        assert result.cost == 0.0


class TestCompositeLBehaviour:
    def test_larger_l_reduces_cost(self):
        # Rows whose slot values alternate between two per-cluster values:
        # with L=1 half the slots mismatch; with L=2 the centre holds both.
        rng = np.random.default_rng(0)
        rows = []
        for _ in range(40):
            row = np.where(rng.random(12) < 0.5, 100, 200).astype(np.uint64)
            rows.append(row)
        sketches = np.stack(rows)
        cost_l1 = CompositeKModes(num_clusters=1, top_l=1, seed=0).fit(sketches).cost
        cost_l2 = CompositeKModes(num_clusters=1, top_l=2, seed=0).fit(sketches).cost
        assert cost_l2 < cost_l1
        assert cost_l2 == 0.0

    def test_zero_match_problem_mitigated(self):
        # Sparse high-cardinality sketches: standard KModes (L=1) leaves
        # many rows with zero matching attributes; L=3 matches more.
        sketches, _ = planted_sketches(noise_slots=6, seed=3)
        km1 = CompositeKModes(num_clusters=3, top_l=1, seed=0).fit(sketches)
        km3 = CompositeKModes(num_clusters=3, top_l=3, seed=0).fit(sketches)
        assert km3.cost <= km1.cost


class TestAssign:
    def test_assign_members_to_own_cluster(self):
        sketches, _ = planted_sketches()
        km = CompositeKModes(num_clusters=3, top_l=2, seed=1)
        result = km.fit(sketches)
        labels = km.assign(sketches, result.centers)
        agreement = (labels == result.labels).mean()
        assert agreement > 0.95

    def test_assign_new_rows(self):
        sketches, truth = planted_sketches(seed=0)
        km = CompositeKModes(num_clusters=3, top_l=2, seed=1)
        result = km.fit(sketches)
        new_sketches, new_truth = planted_sketches(n_per_cluster=10, seed=99)
        labels = km.assign(new_sketches, result.centers)
        # New rows of one planted cluster land together.
        for c in range(3):
            members = labels[new_truth == c]
            assert (members == members[0]).mean() > 0.8

    def test_assign_validation(self):
        import numpy as np

        km = CompositeKModes(num_clusters=2)
        result = km.fit(np.array([[1, 2], [3, 4]], dtype=np.uint64))
        with pytest.raises(ValueError):
            km.assign(np.zeros(3, dtype=np.uint64), result.centers)
        with pytest.raises(ValueError):
            km.assign(np.zeros((2, 5), dtype=np.uint64), result.centers)


class TestCostMonotonicity:
    def test_cost_nonincreasing_over_restarts_of_same_fit(self):
        # The returned cost is consistent with the labels/centres pair.
        sketches, _ = planted_sketches(seed=5)
        result = CompositeKModes(num_clusters=3, seed=9).fit(sketches)
        k = sketches.shape[1]
        manual = 0
        for i, label in enumerate(result.labels):
            hit = (
                sketches[i][:, None] == result.centers[label]
            ).any(axis=1)
            manual += k - int(hit.sum())
        assert manual == result.cost
