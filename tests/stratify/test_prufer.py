"""Unit and property tests for Prüfer sequences and tree helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stratify.prufer import (
    adjacency_from_parents,
    depths_from_parents,
    lca,
    prufer_sequence,
    tree_from_prufer,
)


def random_parent_array(seq):
    """Build a valid parent array from a Prüfer code (hypothesis helper)."""
    return tree_from_prufer(list(seq))


class TestPruferSequence:
    def test_path_graph(self):
        # Path 0-1-2-3 rooted at 3: pruning leaves 0,1 emits their parents.
        parent = [1, 2, 3, -1]
        assert prufer_sequence(parent) == [1, 2]

    def test_star_graph(self):
        # Star centred at 0; every pruned leaf emits the centre.
        parent = [-1, 0, 0, 0, 0]
        assert prufer_sequence(parent) == [0, 0, 0]

    def test_tiny_trees_have_empty_sequence(self):
        assert prufer_sequence([-1]) == []
        assert prufer_sequence([1, -1]) == []

    def test_sequence_length_is_n_minus_2(self):
        parent = [-1, 0, 0, 1, 1, 2]
        assert len(prufer_sequence(parent)) == 4

    def test_rejects_multiple_roots(self):
        with pytest.raises(ValueError):
            prufer_sequence([-1, -1, 0])

    def test_rejects_no_root(self):
        with pytest.raises(ValueError):
            prufer_sequence([1, 0])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(ValueError):
            prufer_sequence([-1, 5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            prufer_sequence([])


class TestTreeFromPrufer:
    def test_known_decoding(self):
        # Prüfer [0, 0, 0] over 5 nodes is the star centred at 0.
        parent = tree_from_prufer([0, 0, 0])
        adj = adjacency_from_parents(parent)
        assert sorted(len(a) for a in adj) == [1, 1, 1, 1, 4]
        assert len(adj[0]) == 4

    def test_small_n(self):
        assert tree_from_prufer([], n=1) == [-1]
        assert tree_from_prufer([], n=2) == [1, -1]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            tree_from_prufer([0], n=5)

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(ValueError):
            tree_from_prufer([9], n=3)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=8))
    @settings(max_examples=100)
    def test_encode_decode_identity(self, seq):
        # Valid codes have entries < n = len(seq) + 2; clamp accordingly.
        n = len(seq) + 2
        seq = [s % n for s in seq]
        parent = tree_from_prufer(seq, n)
        assert prufer_sequence(parent) == seq


class TestTreeHelpers:
    def test_depths(self):
        parent = [-1, 0, 0, 1, 3]
        assert depths_from_parents(parent).tolist() == [0, 1, 1, 2, 3]

    def test_depths_root_only(self):
        assert depths_from_parents([-1]).tolist() == [0]

    def test_lca_simple(self):
        parent = np.array([-1, 0, 0, 1, 1, 2])
        depth = depths_from_parents(parent)
        assert lca(parent, depth, 3, 4) == 1
        assert lca(parent, depth, 3, 5) == 0
        assert lca(parent, depth, 3, 1) == 1
        assert lca(parent, depth, 0, 5) == 0

    def test_lca_of_node_with_itself(self):
        parent = np.array([-1, 0, 1])
        depth = depths_from_parents(parent)
        assert lca(parent, depth, 2, 2) == 2

    def test_adjacency_symmetric(self):
        parent = [-1, 0, 0, 1]
        adj = adjacency_from_parents(parent)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError):
            adjacency_from_parents([-1, 1])

    def test_rejects_cycle(self):
        # 1 -> 2 -> 3 -> 1 cycle beside root 0.
        with pytest.raises(ValueError):
            prufer_sequence([-1, 2, 3, 1])
