"""Unit and property tests for the end-to-end stratifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.text import CorpusConfig, generate_corpus
from repro.stratify.stratifier import Stratification, Stratifier


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(num_docs=300, num_topics=4, seed=1))


@pytest.fixture(scope="module")
def stratification(corpus):
    return Stratifier(kind="text", num_strata=4, num_hashes=48, seed=0).stratify(
        corpus.documents
    )


class TestPipeline:
    def test_every_item_in_exactly_one_stratum(self, stratification, corpus):
        all_members = np.concatenate(stratification.strata)
        assert sorted(all_members.tolist()) == list(range(len(corpus.documents)))

    def test_labels_match_strata(self, stratification):
        for s, members in enumerate(stratification.strata):
            assert (stratification.labels[members] == s).all()

    def test_strata_ids_dense(self, stratification):
        assert stratification.num_strata == stratification.labels.max() + 1

    def test_recovers_planted_topics(self, corpus, stratification):
        # Items of the same planted topic should mostly co-locate: the
        # dominant topic of each stratum covers most of its members.
        agreement = 0
        for members in stratification.strata:
            topics = corpus.topic_of[members]
            agreement += np.bincount(topics).max()
        assert agreement / stratification.num_items >= 0.7

    def test_deterministic(self, corpus):
        s1 = Stratifier(kind="text", num_strata=4, seed=0).stratify(corpus.documents)
        s2 = Stratifier(kind="text", num_strata=4, seed=0).stratify(corpus.documents)
        assert np.array_equal(s1.labels, s2.labels)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Stratifier(kind="text").stratify([])

    def test_invalid_num_strata(self):
        with pytest.raises(ValueError):
            Stratifier(kind="text", num_strata=0)

    def test_sketch_shape(self, corpus):
        st_ = Stratifier(kind="text", num_strata=4, num_hashes=32, seed=0)
        assert st_.sketch(corpus.documents[:10]).shape == (10, 32)


class TestStratifiedSample:
    def test_exact_total(self, stratification):
        rng = np.random.default_rng(0)
        sample = stratification.stratified_sample(0.1, rng)
        assert sample.size == round(0.1 * stratification.num_items)

    def test_no_duplicates(self, stratification):
        rng = np.random.default_rng(1)
        sample = stratification.stratified_sample(0.3, rng)
        assert len(set(sample.tolist())) == sample.size

    def test_full_fraction_returns_everything(self, stratification):
        rng = np.random.default_rng(2)
        sample = stratification.stratified_sample(1.0, rng)
        assert sample.size == stratification.num_items

    def test_proportions_respected(self, stratification):
        rng = np.random.default_rng(3)
        sample = stratification.stratified_sample(0.5, rng)
        sizes = stratification.stratum_sizes()
        counts = np.bincount(
            stratification.labels[sample], minlength=stratification.num_strata
        )
        for s in range(stratification.num_strata):
            expected = 0.5 * sizes[s]
            assert abs(counts[s] - expected) <= max(2, 0.2 * sizes[s])

    def test_invalid_fraction(self, stratification):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stratification.stratified_sample(0.0, rng)
        with pytest.raises(ValueError):
            stratification.stratified_sample(1.5, rng)

    @given(st.floats(min_value=0.02, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_sample_size_property(self, fraction):
        labels = np.array([0] * 40 + [1] * 60)
        strat = Stratification(
            labels=labels,
            strata=[np.arange(40), np.arange(40, 100)],
        )
        sample = strat.stratified_sample(fraction, np.random.default_rng(0))
        assert sample.size == max(1, round(fraction * 100))


class TestOrdering:
    def test_ordered_by_stratum_is_permutation(self, stratification):
        ordered = stratification.ordered_by_stratum()
        assert sorted(ordered.tolist()) == list(range(stratification.num_items))

    def test_ordered_by_stratum_is_grouped(self, stratification):
        ordered = stratification.ordered_by_stratum()
        seen = stratification.labels[ordered]
        # Stratum ids along the ordering never revisit an earlier id.
        changes = (np.diff(seen) != 0).sum()
        assert changes == stratification.num_strata - 1
