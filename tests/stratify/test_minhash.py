"""Unit and property tests for MinHash sketching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stratify.minhash import (
    EMPTY_SLOT,
    PRIME,
    MinHasher,
    _is_prime,
    jaccard,
    sketch_jaccard,
)

sets_strategy = st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=40)


class TestPrime:
    def test_constant_is_prime(self):
        assert _is_prime(PRIME)

    def test_prime_exceeds_universe(self):
        assert PRIME > 2**32

    def test_is_prime_basics(self):
        assert _is_prime(2) and _is_prime(3) and _is_prime(97)
        assert not _is_prime(1) and not _is_prime(91) and not _is_prime(0)


class TestExactJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestSketching:
    def test_deterministic_given_seed(self):
        h1, h2 = MinHasher(32, seed=7), MinHasher(32, seed=7)
        s = {1, 5, 9}
        assert np.array_equal(h1.sketch(s), h2.sketch(s))

    def test_different_seeds_differ(self):
        s = set(range(100))
        assert not np.array_equal(
            MinHasher(32, seed=1).sketch(s), MinHasher(32, seed=2).sketch(s)
        )

    def test_sketch_length(self):
        assert MinHasher(17).sketch({1}).shape == (17,)

    def test_empty_set_sentinel(self):
        sk = MinHasher(8).sketch(set())
        assert (sk == EMPTY_SLOT).all()

    def test_identical_empty_sets_match(self):
        h = MinHasher(8)
        assert sketch_jaccard(h.sketch(set()), h.sketch(set())) == 1.0

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            MinHasher(8).sketch({2**32})

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)

    def test_sketch_all_shape(self):
        h = MinHasher(16)
        mat = h.sketch_all([{1}, {2}, {3}])
        assert mat.shape == (3, 16)

    def test_sketch_all_empty_dataset(self):
        assert MinHasher(16).sketch_all([]).shape == (0, 16)

    def test_identical_sets_identical_sketches(self):
        h = MinHasher(64)
        assert sketch_jaccard(h.sketch({3, 4}), h.sketch({4, 3})) == 1.0


class TestEstimation:
    def test_estimator_accuracy(self):
        # Two sets with known Jaccard 0.5; k=512 gives stderr ~0.022.
        x = set(range(200))
        y = set(range(100, 300))
        h = MinHasher(512, seed=3)
        est = sketch_jaccard(h.sketch(x), h.sketch(y))
        assert abs(est - jaccard(x, y)) < 0.08

    def test_disjoint_sets_estimate_near_zero(self):
        h = MinHasher(256, seed=5)
        est = sketch_jaccard(h.sketch(set(range(100))), h.sketch(set(range(1000, 1100))))
        assert est < 0.05

    @given(sets_strategy, sets_strategy)
    @settings(max_examples=30)
    def test_estimate_in_unit_interval(self, x, y):
        h = MinHasher(32, seed=11)
        est = sketch_jaccard(h.sketch(x), h.sketch(y))
        assert 0.0 <= est <= 1.0

    def test_mismatched_sketches_rejected(self):
        with pytest.raises(ValueError):
            sketch_jaccard(np.zeros(4, dtype=np.uint64), np.zeros(5, dtype=np.uint64))

    def test_empty_sketches_rejected(self):
        with pytest.raises(ValueError):
            sketch_jaccard(np.array([]), np.array([]))


class TestSimilarityMatrix:
    def test_diagonal_is_one(self):
        h = MinHasher(32, seed=2)
        sk = h.sketch_all([{1, 2}, {3, 4}, {1, 2, 3}])
        sim = h.similarity_matrix(sk)
        assert np.allclose(np.diag(sim), 1.0)

    def test_symmetric(self):
        h = MinHasher(32, seed=2)
        sk = h.sketch_all([{1, 2}, {2, 3}, {9}])
        sim = h.similarity_matrix(sk)
        assert np.allclose(sim, sim.T)


class TestPermutationProperty:
    def test_hash_is_injective_on_sample(self):
        # h(x) = (a x + b) mod P is a permutation of Z_P: no collisions.
        h = MinHasher(1, seed=13)
        a, b = int(h._a[0]), int(h._b[0])
        values = [(a * x + b) % PRIME for x in range(5000)]
        assert len(set(values)) == 5000
