"""Unit and property tests for WebGraph-style compression."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.compression.webgraph import WebGraphCodec

adjacency_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=5000), max_size=30).map(sorted),
    max_size=40,
)


@pytest.fixture(scope="module")
def codec():
    return WebGraphCodec()


class TestRoundtrip:
    def test_empty(self, codec):
        blob, _ = codec.compress([])
        assert codec.decompress(blob) == []

    def test_single_list(self, codec):
        blob, _ = codec.compress([[1, 5, 9]])
        assert codec.decompress(blob) == [[1, 5, 9]]

    def test_empty_lists(self, codec):
        blob, _ = codec.compress([[], [1], []])
        assert codec.decompress(blob) == [[], [1], []]

    def test_identical_lists(self, codec):
        lists = [[2, 4, 6, 8]] * 10
        blob, stats = codec.compress(lists)
        assert codec.decompress(blob) == lists
        assert stats.referenced_lists > 0

    def test_normalizes_input(self, codec):
        # Duplicates and unsorted input are canonicalised.
        blob, _ = codec.compress([[5, 1, 5, 3]])
        assert codec.decompress(blob) == [[1, 3, 5]]

    @given(adjacency_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, lists):
        codec = WebGraphCodec(window=4)
        blob, _ = codec.compress(lists)
        assert codec.decompress(blob) == [sorted(set(l)) for l in lists]


class TestReferenceCompression:
    def test_similar_neighbours_use_references(self, codec):
        base = sorted(random.Random(0).sample(range(1000), 25))
        lists = []
        rng = random.Random(1)
        for _ in range(40):
            perturbed = sorted(set(base) ^ {rng.randrange(1000)})
            lists.append(perturbed)
        blob, stats = codec.compress(lists)
        assert stats.referenced_lists > stats.plain_lists
        assert codec.decompress(blob) == lists

    def test_references_shrink_output(self):
        base = sorted(random.Random(0).sample(range(5000), 30))
        lists = [base] * 30
        with_refs = WebGraphCodec(window=7)
        without_refs = WebGraphCodec(window=0)
        blob_ref, _ = with_refs.compress(lists)
        blob_plain, _ = without_refs.compress(lists)
        assert len(blob_ref) < len(blob_plain)

    def test_window_zero_never_references(self):
        codec = WebGraphCodec(window=0)
        blob, stats = codec.compress([[1, 2]] * 5)
        assert stats.referenced_lists == 0
        assert codec.decompress(blob) == [[1, 2]] * 5


class TestGapCompression:
    def test_local_lists_compress_better_than_random(self, codec):
        rng = random.Random(2)
        local = [sorted(rng.sample(range(v, v + 200), 20)) for v in range(0, 4000, 100)]
        scattered = [sorted(rng.sample(range(10**6), 20)) for _ in range(40)]
        _, stats_local = codec.compress(local)
        _, stats_scattered = codec.compress(scattered)
        assert stats_local.bits_per_edge < stats_scattered.bits_per_edge

    def test_ratio_definition(self, codec):
        lists = [[1, 2, 3, 4]]
        blob, stats = codec.compress(lists)
        assert stats.raw_bytes == 16
        assert stats.ratio == pytest.approx(16 / len(blob))


class TestIntervalEncoding:
    def test_split_intervals(self):
        from repro.workloads.compression.webgraph import _split_intervals

        intervals, residuals = _split_intervals([1, 2, 3, 4, 7, 9, 10, 11, 20])
        assert intervals == [(1, 4), (9, 3)]
        assert residuals == [7, 20]

    def test_short_runs_stay_residual(self):
        from repro.workloads.compression.webgraph import _split_intervals

        intervals, residuals = _split_intervals([5, 6, 9])
        assert intervals == []
        assert residuals == [5, 6, 9]

    def test_consecutive_runs_roundtrip(self, codec):
        lists = [list(range(100, 140)), [5, 6, 7, 50, 51, 52, 99]]
        blob, _ = codec.compress(lists)
        assert codec.decompress(blob) == lists

    def test_intervals_beat_gap_coding_on_dense_runs(self, codec):
        dense = [list(range(v, v + 30)) for v in range(0, 3000, 40)]
        sparse = [sorted(random.Random(v).sample(range(10**6), 30)) for v in range(75)]
        _, stats_dense = codec.compress(dense)
        _, stats_sparse = codec.compress(sparse)
        assert stats_dense.bits_per_edge < 0.3 * stats_sparse.bits_per_edge
        assert stats_dense.ratio > 8.0


class TestStatsAndValidation:
    def test_counts_partition(self, codec):
        lists = [[1, 2], [1, 2], [900]]
        _, stats = codec.compress(lists)
        assert stats.referenced_lists + stats.plain_lists == 3
        assert stats.input_edges == 5

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WebGraphCodec(window=-1)

    def test_empty_stats(self, codec):
        _, stats = codec.compress([])
        assert stats.ratio == 0.0
        assert stats.bits_per_edge == 0.0

    def test_corrupt_flag_rejected(self, codec):
        from repro.workloads.compression.varint import encode_varint

        bad = encode_varint(1) + bytes([7])
        with pytest.raises(ValueError):
            codec.decompress(bad)
