"""Unit and property tests for the LZ77 coder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.compression.lz77 import LZ77Codec


@pytest.fixture(scope="module")
def codec():
    return LZ77Codec()


class TestRoundtrip:
    def test_empty(self, codec):
        blob, stats = codec.compress(b"")
        assert codec.decompress(blob) == b""
        assert stats.input_bytes == 0

    def test_short_literal_only(self, codec):
        data = b"abc"
        blob, stats = codec.compress(data)
        assert codec.decompress(blob) == data
        assert stats.matches == 0

    def test_repetitive(self, codec):
        data = b"abcabcabcabcabcabc" * 20
        blob, stats = codec.compress(data)
        assert codec.decompress(blob) == data
        assert stats.matches > 0
        assert len(blob) < len(data)

    def test_self_overlapping_match(self, codec):
        # 'aaaa...' forces matches whose source overlaps the copy target.
        data = b"a" * 500
        blob, _ = codec.compress(data)
        assert codec.decompress(blob) == data

    def test_binary_data(self, codec):
        data = bytes(range(256)) * 4
        blob, _ = codec.compress(data)
        assert codec.decompress(blob) == data

    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = LZ77Codec(window=256, max_chain=4)
        blob, _ = codec.compress(data)
        assert codec.decompress(blob) == data


class TestCompressionBehaviour:
    def test_repetitive_beats_random(self, codec):
        import random

        rng = random.Random(0)
        random_data = bytes(rng.randrange(256) for _ in range(4000))
        repetitive = b"the quick brown fox " * 200
        _, stats_rand = codec.compress(random_data)
        _, stats_rep = codec.compress(repetitive)
        assert stats_rep.ratio > stats_rand.ratio
        assert stats_rep.ratio > 3.0

    def test_stats_consistency(self, codec):
        data = b"hello world hello world hello"
        blob, stats = codec.compress(data)
        assert stats.input_bytes == len(data)
        assert stats.output_bytes == len(blob)
        assert stats.ratio == pytest.approx(len(data) / len(blob))

    def test_window_limits_match_distance(self):
        # A repeat farther than the window cannot be matched.
        data = b"unique-prefix-0123456789" + b"x" * 600 + b"unique-prefix-0123456789"
        small = LZ77Codec(window=64)
        blob_small, stats_small = small.compress(data)
        large = LZ77Codec(window=4096)
        blob_large, stats_large = large.compress(data)
        assert len(blob_large) <= len(blob_small)
        assert small.decompress(blob_small) == data
        assert large.decompress(blob_large) == data

    def test_max_chain_bounds_probes(self):
        data = b"ab" * 3000
        shallow = LZ77Codec(max_chain=1)
        deep = LZ77Codec(max_chain=64)
        _, stats_shallow = shallow.compress(data)
        _, stats_deep = deep.compress(data)
        assert stats_shallow.probes <= stats_deep.probes


class TestRecordFraming:
    def test_binary_records_roundtrip(self, codec):
        records = [[1, 2, 3], [], [70000, 5]]
        blob, _ = codec.compress_records(records)
        assert codec.decompress_records(blob) == records

    def test_text_records_roundtrip(self, codec):
        records = [[10, 20, 30], [7], [999, 1000]]
        blob, _ = codec.compress_text_records(records)
        assert codec.decompress_text_records(blob) == records

    def test_text_records_empty(self, codec):
        blob, _ = codec.compress_text_records([])
        assert codec.decompress_text_records(blob) == []

    def test_similar_records_compress_better(self, codec):
        base = list(range(100, 160))
        similar = [base for _ in range(30)]
        import random

        rng = random.Random(1)
        dissimilar = [sorted(rng.sample(range(10000), 60)) for _ in range(30)]
        _, s_sim = codec.compress_text_records(similar)
        _, s_dis = codec.compress_text_records(dissimilar)
        assert s_sim.ratio > s_dis.ratio


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LZ77Codec(window=0)
        with pytest.raises(ValueError):
            LZ77Codec(max_chain=0)
        with pytest.raises(ValueError):
            LZ77Codec(max_match=2)

    def test_corrupt_stream_rejected(self, codec):
        blob, _ = codec.compress(b"hello hello hello hello")
        with pytest.raises(ValueError):
            codec.decompress(blob[:-1] + b"\xff")

    def test_unknown_flag_rejected(self, codec):
        from repro.workloads.compression.varint import encode_varint

        bad = encode_varint(4) + bytes([9]) + b"zzz"
        with pytest.raises(ValueError):
            codec.decompress(bad)
