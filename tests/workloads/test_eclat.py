"""Unit and property tests for Eclat (must agree with Apriori)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.fpm.apriori import AprioriMiner
from repro.workloads.fpm.eclat import EclatMiner, EclatWorkload

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=20,
)


class TestEquivalenceWithApriori:
    @given(transactions_strategy, st.sampled_from([0.2, 0.4, 0.6, 0.9]))
    @settings(max_examples=60, deadline=None)
    def test_same_frequent_itemsets(self, tx, support):
        apriori = AprioriMiner(min_support=support).mine(tx).counts
        eclat = EclatMiner(min_support=support).mine(tx).counts
        assert apriori == eclat

    @given(transactions_strategy)
    @settings(max_examples=30, deadline=None)
    def test_same_with_max_len(self, tx):
        apriori = AprioriMiner(min_support=0.3, max_len=2).mine(tx).counts
        eclat = EclatMiner(min_support=0.3, max_len=2).mine(tx).counts
        assert apriori == eclat


class TestEclatBasics:
    def test_empty(self):
        out = EclatMiner(min_support=0.5).mine([])
        assert out.counts == {}

    def test_known_example(self):
        tx = [[1, 2], [1, 2, 3], [2, 3]]
        counts = EclatMiner(min_support=0.6).mine(tx).counts
        assert counts == {(1,): 2, (2,): 3, (3,): 2, (1, 2): 2, (2, 3): 2}

    def test_work_units_positive(self):
        out = EclatMiner(min_support=0.3).mine([[1, 2, 3], [1, 2], [2, 3]])
        assert out.work_units > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EclatMiner(min_support=0.0)
        with pytest.raises(ValueError):
            EclatMiner(min_support=0.5, max_len=0)


class TestEclatWorkload:
    def test_run_and_merge(self):
        wl = EclatWorkload(min_support=0.5)
        r1 = wl.run([[1, 2], [1, 2]])
        r2 = wl.run([[3], [3]])
        assert wl.merge([r1, r2]) == {(1,), (2,), (1, 2), (3,)}

    def test_min_support_property(self):
        assert EclatWorkload(min_support=0.25).min_support == 0.25
