"""Unit tests for the workload protocol primitives."""

import pytest

from repro.workloads.base import Workload, WorkloadResult


class Echo(Workload):
    name = "echo"

    def run(self, records):
        return WorkloadResult(work_units=1.0, output=list(records))


class TestWorkloadResult:
    def test_defaults(self):
        r = WorkloadResult(work_units=0.0)
        assert r.output is None
        assert r.stats == {}

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            WorkloadResult(work_units=-1.0)

    def test_stats_isolated_per_instance(self):
        a = WorkloadResult(work_units=1.0)
        b = WorkloadResult(work_units=1.0)
        a.stats["x"] = 1
        assert b.stats == {}


class TestWorkloadDefaults:
    def test_default_merge_collects_outputs(self):
        wl = Echo()
        partials = [wl.run([1]), wl.run([2, 3])]
        assert wl.merge(partials) == [[1], [2, 3]]

    def test_abstract_run_required(self):
        with pytest.raises(TypeError):
            Workload()  # type: ignore[abstract]
