"""Tests for the two-phase partition-based mining algorithm."""

import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.data.transactions import TransactionConfig, generate_transactions
from repro.workloads.fpm.apriori import AprioriMiner
from repro.workloads.fpm.savasere import SavasereJob


@pytest.fixture(scope="module")
def engine():
    return SimulatedEngine(paper_cluster(4, seed=0), unit_rate=1e4)


@pytest.fixture(scope="module")
def transactions():
    return generate_transactions(
        TransactionConfig(num_transactions=300, num_items=60, seed=1)
    ).transactions


def split(records, p):
    out = [[] for _ in range(p)]
    for i, r in enumerate(records):
        out[i % p].append(r)
    return out


class TestCorrectness:
    def test_matches_single_machine_mining(self, engine, transactions):
        """The distributed result must equal mining everything centrally
        (Savasere's algorithm is exact, not approximate)."""
        support = 0.1
        central = AprioriMiner(min_support=support).mine(transactions).counts
        job = SavasereJob(engine=engine, min_support=support)
        result = job.run(split(transactions, 4))
        assert result.frequent == central

    def test_candidates_superset_of_frequent(self, engine, transactions):
        job = SavasereJob(engine=engine, min_support=0.1)
        result = job.run(split(transactions, 4))
        assert set(result.frequent) <= result.candidates
        assert result.false_positives == len(result.candidates) - len(result.frequent)
        assert result.false_positives >= 0

    def test_exactness_across_partitionings(self, engine, transactions):
        support = 0.15
        central = AprioriMiner(min_support=support).mine(transactions).counts
        for p in (2, 3, 4):
            result = SavasereJob(engine=engine, min_support=support).run(
                split(transactions, p)
            )
            assert result.frequent == central, f"mismatch at p={p}"

    def test_max_len_respected(self, engine, transactions):
        job = SavasereJob(engine=engine, min_support=0.1, max_len=2)
        result = job.run(split(transactions, 4))
        assert all(len(p) <= 2 for p in result.frequent)


class TestCostModel:
    def test_makespan_sums_phases(self, engine, transactions):
        job = SavasereJob(engine=engine, min_support=0.1)
        result = job.run(split(transactions, 4))
        assert result.makespan_s == pytest.approx(
            result.local_job.makespan_s + result.count_job.makespan_s
        )

    def test_energy_sums_phases(self, engine, transactions):
        job = SavasereJob(engine=engine, min_support=0.1)
        result = job.run(split(transactions, 4))
        assert result.total_dirty_energy_j == pytest.approx(
            result.local_job.total_dirty_energy_j
            + result.count_job.total_dirty_energy_j
        )

    def test_skewed_partitions_inflate_candidates(self, engine, transactions):
        """Sorting transactions (by content) before chunking makes the
        partitions statistically skewed; the candidate union must grow
        versus round-robin partitions — the paper's core motivation."""
        support = 0.12
        p = 4
        balanced = SavasereJob(engine=engine, min_support=support).run(
            split(transactions, p)
        )
        skewed_order = sorted(transactions)
        chunk = len(transactions) // p
        skewed_parts = [
            skewed_order[i * chunk : (i + 1) * chunk if i < p - 1 else None]
            for i in range(p)
        ]
        skewed = SavasereJob(engine=engine, min_support=support).run(skewed_parts)
        assert len(skewed.candidates) > len(balanced.candidates)
        # Exactness is preserved regardless of skew.
        assert skewed.frequent == balanced.frequent

    def test_empty_dataset_rejected(self, engine):
        with pytest.raises(ValueError):
            SavasereJob(engine=engine, min_support=0.1).run([[], []])
