"""Unit and property tests for varint / zigzag / gap coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.compression.varint import (
    decode_varint,
    decode_varint_list,
    encode_varint,
    encode_varint_list,
    gaps_decode,
    gaps_encode,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,length", [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3)]
    )
    def test_encoded_length(self, value, length):
        assert len(encode_varint(value)) == length

    def test_roundtrip_simple(self):
        blob = encode_varint(300)
        assert decode_varint(blob) == (300, len(blob))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_offset_decoding(self):
        blob = encode_varint(5) + encode_varint(1000)
        v1, off = decode_varint(blob, 0)
        v2, _ = decode_varint(blob, off)
        assert (v1, v2) == (5, 1000)

    @given(st.integers(min_value=0, max_value=2**62))
    @settings(max_examples=100)
    def test_roundtrip_property(self, value):
        blob = encode_varint(value)
        assert decode_varint(blob) == (value, len(blob))

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100)
    def test_roundtrip_full_uint64_property(self, value):
        blob = encode_varint(value)
        assert decode_varint(blob) == (value, len(blob))

    @pytest.mark.parametrize(
        "value,length",
        [(2**63 - 1, 9), (2**63, 10), (2**64 - 1, 10), (2**56 - 1, 8), (2**56, 9)],
    )
    def test_uint64_edge_lengths(self, value, length):
        blob = encode_varint(value)
        assert len(blob) == length
        assert decode_varint(blob) == (value, len(blob))


class TestVarintList:
    def test_roundtrip(self):
        values = [0, 1, 127, 128, 99999]
        blob = encode_varint_list(values)
        assert decode_varint_list(blob) == (values, len(blob))

    def test_empty(self):
        blob = encode_varint_list([])
        assert decode_varint_list(blob) == ([], len(blob))

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        blob = encode_varint_list(values)
        assert decode_varint_list(blob) == (values, len(blob))


class TestZigzag:
    @pytest.mark.parametrize("value,encoded", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)])
    def test_known_mapping(self, value, encoded):
        assert zigzag_encode(value) == encoded
        assert zigzag_decode(encoded) == value

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100)
    def test_roundtrip_property(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_negative_rejected(self):
        with pytest.raises(ValueError):
            zigzag_decode(-1)


class TestGaps:
    def test_roundtrip(self):
        values = [3, 4, 7, 100]
        assert gaps_decode(gaps_encode(values)) == values

    def test_empty(self):
        assert gaps_encode([]) == []
        assert gaps_decode([]) == []

    def test_dense_run_gives_zero_gaps(self):
        assert gaps_encode([5, 6, 7, 8]) == [5, 0, 0, 0]

    def test_requires_strictly_increasing(self):
        with pytest.raises(ValueError):
            gaps_encode([1, 1])
        with pytest.raises(ValueError):
            gaps_encode([2, 1])

    @given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        sorted_vals = sorted(values)
        assert gaps_decode(gaps_encode(sorted_vals)) == sorted_vals
