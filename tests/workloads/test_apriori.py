"""Unit tests for Apriori mining and the counting scan."""

import pytest

from repro.workloads.fpm.apriori import (
    AprioriMiner,
    AprioriWorkload,
    CandidateCountWorkload,
    count_patterns,
)

# A textbook example: 4 transactions over items {1,2,3,5}.
TX = [
    [1, 3, 4],
    [2, 3, 5],
    [1, 2, 3, 5],
    [2, 5],
]


class TestMinerKnownExample:
    def test_frequent_itemsets_support_half(self):
        counts = AprioriMiner(min_support=0.5).mine(TX).counts
        expected = {
            (1,): 2,
            (2,): 3,
            (3,): 3,
            (5,): 3,
            (1, 3): 2,
            (2, 3): 2,
            (2, 5): 3,
            (3, 5): 2,
            (2, 3, 5): 2,
        }
        assert counts == expected

    def test_support_threshold_is_ceiling(self):
        # 0.6 of 4 transactions → min count 3.
        counts = AprioriMiner(min_support=0.6).mine(TX).counts
        assert set(counts) == {(2,), (3,), (5,), (2, 5)}

    def test_support_one_returns_items_in_all_transactions(self):
        tx = [[1, 2], [1, 2, 3], [1, 2]]
        counts = AprioriMiner(min_support=1.0).mine(tx).counts
        assert set(counts) == {(1,), (2,), (1, 2)}

    def test_max_len_caps_pattern_size(self):
        counts = AprioriMiner(min_support=0.5, max_len=1).mine(TX).counts
        assert all(len(p) == 1 for p in counts)

    def test_empty_transactions(self):
        out = AprioriMiner(min_support=0.5).mine([])
        assert out.counts == {}
        assert out.work_units == 0.0

    def test_patterns_are_sorted_tuples(self):
        counts = AprioriMiner(min_support=0.25).mine(TX).counts
        for p in counts:
            assert p == tuple(sorted(p))

    def test_downward_closure(self):
        # Every subset of a frequent pattern is frequent (Apriori property).
        counts = AprioriMiner(min_support=0.5).mine(TX).counts
        for p in counts:
            for i in range(len(p)):
                sub = p[:i] + p[i + 1 :]
                if sub:
                    assert sub in counts

    def test_work_units_grow_with_candidates(self):
        small = AprioriMiner(min_support=0.9).mine(TX)
        large = AprioriMiner(min_support=0.25).mine(TX)
        assert large.work_units > small.work_units
        assert large.candidates_generated >= small.candidates_generated

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0.0)
        with pytest.raises(ValueError):
            AprioriMiner(min_support=1.1)
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0.5, max_len=0)


class TestCandidateGeneration:
    def test_join_requires_shared_prefix(self):
        cands = AprioriMiner._generate_candidates([(1, 2), (1, 3), (2, 3)], 3)
        assert cands == [(1, 2, 3)]

    def test_prune_removes_unsupported_subsets(self):
        # (1,2) and (1,3) join to (1,2,3) but (2,3) is not frequent.
        cands = AprioriMiner._generate_candidates([(1, 2), (1, 3)], 3)
        assert cands == []


class TestCountPatterns:
    def test_counts_match_miner(self):
        miner_counts = AprioriMiner(min_support=0.5).mine(TX).counts
        recount, work = count_patterns(TX, sorted(miner_counts))
        assert recount == miner_counts
        assert work == len(TX) * len(miner_counts)

    def test_absent_pattern_zero(self):
        counts, _ = count_patterns(TX, [(99,)])
        assert counts == {(99,): 0}


class TestWorkloads:
    def test_local_workload_runs(self):
        result = AprioriWorkload(min_support=0.5).run(TX)
        assert result.work_units > 0
        assert result.stats["transactions"] == 4

    def test_local_merge_unions_patterns(self):
        wl = AprioriWorkload(min_support=0.5)
        r1 = wl.run(TX[:2])
        r2 = wl.run(TX[2:])
        union = wl.merge([r1, r2])
        assert union == r1.output.patterns() | r2.output.patterns()

    def test_count_workload_global_threshold(self):
        wl = CandidateCountWorkload(
            candidates=[(2,), (99,)], min_support=0.5, total_transactions=4
        )
        partials = [wl.run(TX[:2]), wl.run(TX[2:])]
        merged = wl.merge(partials)
        assert merged == {(2,): 3}

    def test_count_workload_validation(self):
        with pytest.raises(ValueError):
            CandidateCountWorkload([], min_support=0.5, total_transactions=0)
        with pytest.raises(ValueError):
            CandidateCountWorkload([], min_support=0.0, total_transactions=4)
