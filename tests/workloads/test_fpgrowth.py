"""Unit and property tests for FP-growth (must agree with Apriori)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.fpm.apriori import AprioriMiner
from repro.workloads.fpm.fpgrowth import FPGrowthMiner, FPGrowthWorkload, _FPTree

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=20,
)


class TestFPTree:
    def test_shared_prefix_single_branch(self):
        tree = _FPTree()
        tree.insert([1, 2, 3], 1)
        tree.insert([1, 2, 4], 1)
        # Nodes: 1, 2, 3, 4 — prefix [1, 2] shared.
        assert tree.nodes_created == 4
        assert tree.item_counts[1] == 2
        assert tree.item_counts[2] == 2

    def test_prefix_paths(self):
        tree = _FPTree()
        tree.insert([1, 2, 3], 2)
        tree.insert([1, 3], 1)
        base, _ = tree.prefix_paths(3)
        assert sorted(base) == [([1], 1), ([1, 2], 2)]

    def test_prefix_paths_of_root_item_empty(self):
        tree = _FPTree()
        tree.insert([1, 2], 1)
        base, _ = tree.prefix_paths(1)
        assert base == []


class TestEquivalenceWithApriori:
    @given(transactions_strategy, st.sampled_from([0.2, 0.4, 0.6, 0.9]))
    @settings(max_examples=60, deadline=None)
    def test_same_frequent_itemsets(self, tx, support):
        apriori = AprioriMiner(min_support=support).mine(tx).counts
        fpg = FPGrowthMiner(min_support=support).mine(tx).counts
        assert apriori == fpg

    @given(transactions_strategy)
    @settings(max_examples=30, deadline=None)
    def test_same_with_max_len(self, tx):
        apriori = AprioriMiner(min_support=0.3, max_len=2).mine(tx).counts
        fpg = FPGrowthMiner(min_support=0.3, max_len=2).mine(tx).counts
        assert apriori == fpg


class TestFPGrowthBasics:
    def test_empty(self):
        out = FPGrowthMiner(min_support=0.5).mine([])
        assert out.counts == {}

    def test_known_example(self):
        tx = [[1, 2], [1, 2, 3], [2, 3]]
        counts = FPGrowthMiner(min_support=0.6).mine(tx).counts
        assert counts == {(1,): 2, (2,): 3, (3,): 2, (1, 2): 2, (2, 3): 2}

    def test_duplicate_items_deduped(self):
        counts = FPGrowthMiner(min_support=1.0).mine([[1, 1, 2]]).counts
        assert counts == {(1,): 1, (2,): 1, (1, 2): 1}

    def test_cheaper_than_apriori_on_dense_data(self):
        # On dense data the FP-tree collapses the shared prefixes, so
        # FP-growth does far less work than Apriori's repeated scans.
        tx = [list(range(8))] * 10
        fpg = FPGrowthMiner(min_support=0.5).mine(tx)
        apriori = AprioriMiner(min_support=0.5).mine(tx)
        assert fpg.work_units < apriori.work_units
        assert fpg.candidates_generated <= apriori.candidates_generated

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FPGrowthMiner(min_support=0.0)
        with pytest.raises(ValueError):
            FPGrowthMiner(min_support=0.5, max_len=0)


class TestFPGrowthWorkload:
    def test_run_and_merge(self):
        wl = FPGrowthWorkload(min_support=0.5)
        r1 = wl.run([[1, 2], [1, 2]])
        r2 = wl.run([[3], [3]])
        assert wl.merge([r1, r2]) == {(1,), (2,), (1, 2), (3,)}

    def test_work_units_positive(self):
        assert FPGrowthWorkload(min_support=0.5).run([[1, 2]]).work_units > 0

    def test_framework_accepts_fpgrowth(self):
        """FP-growth must drop into execute_fpm unchanged."""
        from repro.cluster.cluster import paper_cluster
        from repro.cluster.engines import SimulatedEngine
        from repro.core.framework import ParetoPartitioner
        from repro.core.strategies import STRATIFIED
        from repro.data.text import CorpusConfig, generate_corpus

        docs = generate_corpus(CorpusConfig(num_docs=200, seed=2)).documents
        pp = ParetoPartitioner(
            SimulatedEngine(paper_cluster(4, seed=0)),
            kind="text",
            num_strata=4,
            stage_via_kv=False,
        )
        report = pp.execute_fpm(docs, FPGrowthWorkload(min_support=0.2, max_len=2), STRATIFIED)
        central = FPGrowthMiner(min_support=0.2, max_len=2).mine(docs).counts
        assert report.merged_output == central
