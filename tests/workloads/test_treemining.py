"""Unit tests for frequent tree (pivot-set) mining."""

import pytest

from repro.data.trees import TreeDatasetConfig, generate_tree_dataset, tree_items
from repro.workloads.fpm.treemining import TreeMiningWorkload, trees_to_pivot_sets


@pytest.fixture(scope="module")
def items():
    trees = generate_tree_dataset(TreeDatasetConfig(num_trees=60, seed=6))
    return tree_items(trees)


class TestConversion:
    def test_one_transaction_per_tree(self, items):
        transactions, work = trees_to_pivot_sets(items)
        assert len(transactions) == len(items)
        assert work == sum(len(parent) for parent, _ in items)

    def test_transactions_sorted_unique(self, items):
        transactions, _ = trees_to_pivot_sets(items)
        for t in transactions:
            assert t == sorted(set(t))

    def test_no_empty_transactions(self, items):
        transactions, _ = trees_to_pivot_sets(items)
        assert all(t for t in transactions)


class TestWorkload:
    def test_run_produces_patterns(self, items):
        result = TreeMiningWorkload(min_support=0.2, max_len=2).run(items)
        assert result.stats["patterns"] > 0
        assert result.stats["trees"] == len(items)

    def test_work_includes_conversion(self, items):
        result = TreeMiningWorkload(min_support=0.99, max_len=1).run(items)
        # Even with nothing frequent, conversion work is charged.
        assert result.work_units >= sum(len(parent) for parent, _ in items)

    def test_merge_unions(self, items):
        wl = TreeMiningWorkload(min_support=0.2, max_len=2)
        half = len(items) // 2
        r1, r2 = wl.run(items[:half]), wl.run(items[half:])
        assert wl.merge([r1, r2]) == r1.output.patterns() | r2.output.patterns()

    def test_same_cluster_partition_has_more_frequent_patterns(self):
        """A partition of structurally similar trees (one template
        cluster) yields more locally frequent pivots than a mixed
        partition — the skew effect the stratifier controls."""
        trees = generate_tree_dataset(
            TreeDatasetConfig(num_trees=120, num_clusters=6, skew=0.0, seed=3)
        )
        wl = TreeMiningWorkload(min_support=0.3, max_len=1)
        one_cluster = [t.as_item() for t in trees if t.cluster == 0][:20]
        mixed = [t.as_item() for t in trees[:20]]
        assert (
            wl.run(one_cluster).stats["patterns"]
            > wl.run(mixed).stats["patterns"]
        )

    def test_min_support_property(self):
        assert TreeMiningWorkload(min_support=0.4).min_support == 0.4
