"""Unit tests for the distributed compression workload."""

import pytest

from repro.data.graphs import WebGraphConfig, generate_webgraph
from repro.workloads.compression.distributed import (
    CompressionSummary,
    CompressionWorkload,
)


@pytest.fixture(scope="module")
def records():
    return generate_webgraph(
        WebGraphConfig(num_vertices=300, num_hosts=4, seed=7)
    ).records()


class TestWorkload:
    @pytest.mark.parametrize("algorithm", ["webgraph", "lz77"])
    def test_run_reports_sizes(self, records, algorithm):
        result = CompressionWorkload(algorithm).run(records[:100])
        assert result.output["raw_bytes"] > 0
        assert result.output["compressed_bytes"] > 0
        assert result.work_units > 0
        assert result.stats["records"] == 100

    def test_webgraph_stats_keys(self, records):
        result = CompressionWorkload("webgraph").run(records[:50])
        assert "referenced_lists" in result.stats
        assert "bits_per_edge" in result.stats

    def test_lz77_stats_keys(self, records):
        result = CompressionWorkload("lz77").run(records[:50])
        assert "matches" in result.stats

    def test_codec_kwargs_forwarded(self):
        wl = CompressionWorkload("webgraph", window=3)
        assert wl.codec.window == 3

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            CompressionWorkload("zstd")

    def test_name_reflects_algorithm(self):
        assert CompressionWorkload("lz77").name == "compress-lz77"


class TestMerge:
    def test_merge_aggregates_ratio(self, records):
        wl = CompressionWorkload("webgraph")
        partials = [wl.run(records[:150]), wl.run(records[150:])]
        summary = wl.merge(partials)
        assert isinstance(summary, CompressionSummary)
        assert summary.raw_bytes == sum(p.output["raw_bytes"] for p in partials)
        assert summary.num_partitions == 2
        assert summary.ratio == pytest.approx(
            summary.raw_bytes / summary.compressed_bytes
        )

    def test_empty_summary_ratio_zero(self):
        assert CompressionSummary(0, 0, 0).ratio == 0.0


class TestEntropySensitivity:
    def test_similar_partition_compresses_better(self, records):
        """Same records, grouped by host vs interleaved: grouping must
        improve the webgraph ratio — the property the similar-together
        placement exploits."""
        wl = CompressionWorkload("webgraph")
        grouped = wl.run(records)  # generator output is host-ordered
        interleaved = wl.run(records[::2] + records[1::2])
        ratio_grouped = grouped.output["raw_bytes"] / grouped.output["compressed_bytes"]
        ratio_inter = (
            interleaved.output["raw_bytes"] / interleaved.output["compressed_bytes"]
        )
        assert ratio_grouped >= ratio_inter * 0.98  # grouped never much worse
