"""End-to-end service tests on the real ProcessPoolEngine.

These are the acceptance tests for the service's performance story:
concurrent repeat jobs must ride the shared-memory dataplane caches
(the engine is shared, so re-staged partitions hit the identity/digest
caches instead of re-pickling), per-job energy must reconcile exactly
with the obs trace, and a graceful drain must leave no orphaned
shared-memory segments.
"""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.obs.energy import energy_split
from repro.service import ServiceConfig, build_service
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec, JobState
from repro.service.manager import JobManager

SPEC = {"workload": "apriori", "dataset": "rcv1", "size_scale": 0.05, "support": 0.2}


@pytest.fixture()
def service():
    svc = build_service(
        engine="process",
        num_nodes=4,
        max_workers=2,
        port=0,
        config=ServiceConfig(max_queue_depth=16, concurrency=2, result_ttl_s=120.0),
    )
    with svc:
        yield svc


class TestRepeatJobsShareDataplane:
    def test_concurrent_repeat_jobs_hit_digest_cache(self, service):
        client = ServiceClient(service.url)
        # Two scenario variants over the same dataset: the second
        # prepare builds new partition objects with identical content,
        # so staging them is a digest-cache hit (no re-serialization);
        # repeats of the same prepared scenario are identity hits.
        specs = [dict(SPEC), dict(SPEC), dict(SPEC, support=0.3), dict(SPEC, support=0.3)]
        responses: list = [None] * len(specs)

        def submit(i):
            responses[i] = client.submit(specs[i])

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(len(specs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert all(r is not None and r.status == 202 for r in responses)
        finals = [
            client.wait(r.body["job_id"], timeout_s=120.0) for r in responses
        ]
        assert [f.body["state"] for f in finals] == ["SUCCEEDED"] * len(specs)

        audit = service.executor.dataplane_audit()
        assert audit["identity_hits"] > 0, audit  # repeat runs, same objects
        assert audit["digest_hits"] > 0, audit  # re-prepared equal content
        # Digest hits serialize (to hash) but create no new segment, so
        # unique segments stay below total serializations.
        assert audit["segments_created"] < audit["serializations"]
        assert service.executor.scenarios_prepared == 2

    def test_energy_reconciles_with_trace(self, service):
        obs.enable()
        obs.reset()
        client = ServiceClient(service.url)
        jobs = [client.submit(dict(SPEC, seed=0)) for _ in range(3)]
        finals = [client.wait(r.body["job_id"], timeout_s=120.0) for r in jobs]
        assert [f.body["state"] for f in finals] == ["SUCCEEDED"] * 3

        total_from_results = sum(f.body["result"]["total_energy_j"] for f in finals)
        dirty_from_results = sum(
            f.body["result"]["total_dirty_energy_j"] for f in finals
        )
        spans = obs.get_tracer().finished_spans()
        split = energy_split(spans)
        assert split["energy_j"] == pytest.approx(total_from_results, abs=1e-6)
        assert split["dirty_energy_j"] == pytest.approx(dirty_from_results, abs=1e-6)


class TestGracefulShutdown:
    def test_drain_leaves_no_orphaned_shm(self, service):
        client = ServiceClient(service.url)
        resp = client.submit(dict(SPEC))
        assert resp.status == 202
        final = client.wait(resp.body["job_id"], timeout_s=120.0)
        assert final.body["state"] == "SUCCEEDED"

        before = service.executor.dataplane_audit()
        assert before["segments_created"] > 0  # the dataplane really ran
        assert service.manager.shutdown(timeout_s=60.0) is True
        after = service.executor.dataplane_audit()
        assert after["store_closed"] is True
        assert after["live_segments"] == 0


class TestInProcessManagerOnEngine:
    def test_mixed_scenarios_queue_and_finish(self, service):
        manager: JobManager = service.manager
        records = [
            manager.submit(JobSpec(size_scale=0.05, support=0.2, seed=0)),
            manager.submit(JobSpec(size_scale=0.05, support=0.2, seed=0, alpha=0.99)),
            manager.submit(
                JobSpec(
                    workload="webgraph", dataset="uk", size_scale=0.05, seed=0
                )
            ),
        ]
        assert all(r.state is JobState.QUEUED for r in records)
        assert manager.drain(timeout_s=120.0) is True
        assert [r.state for r in records] == [JobState.SUCCEEDED] * 3
        # Per-request operating points really differ per job.
        assert records[0].result["strategy"] != records[1].result["strategy"]
        assert records[2].result["quality"].get("compression_ratio") is not None
