"""Races the JobManager on purpose: many submitters against a
concurrent drain, under the runtime lock watchdog.

The invariants probed here are the ones the static LOCK-ORDER /
GUARD-CONSISTENCY rules protect structurally: every submit gets exactly
one terminal story (a job is never both REJECTED and run), drain always
terminates, and no lock-order cycle appears in any interleaving.
"""

from __future__ import annotations

import threading
import time

from repro.service.jobs import JobSpec, JobState
from repro.service.manager import JobManager, ServiceConfig


class CountingExecutor:
    """Instant jobs; records every spec it actually ran, thread-safely."""

    def __init__(self):
        self._lock = threading.Lock()
        self.ran: list[int] = []
        self.closed = False

    def run(self, spec):
        with self._lock:
            self.ran.append(spec.seed)
        return {"workload": spec.workload, "makespan_s": 0.001}

    def ran_probes(self) -> list[int]:
        with self._lock:
            return list(self.ran)

    def close(self):
        self.closed = True


def test_submit_vs_drain_race_is_consistent(lock_watch):
    """Hammer submit from many threads while drain runs concurrently."""
    executor = CountingExecutor()
    manager = JobManager(
        executor,
        ServiceConfig(max_queue_depth=16, concurrency=4, per_tenant_inflight=64),
    )

    n_threads, per_thread = 8, 25
    records = [[] for _ in range(n_threads)]
    start = threading.Barrier(n_threads + 1)

    def submitter(idx: int) -> None:
        start.wait(timeout=10.0)
        for j in range(per_thread):
            spec = JobSpec(seed=idx * 1000 + j)
            records[idx].append(manager.submit(spec))

    threads = [
        threading.Thread(target=submitter, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    start.wait(timeout=10.0)
    time.sleep(0.01)  # let some jobs land before admission closes
    drained = manager.drain(timeout_s=30.0)
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive(), "submitter deadlocked against drain"
    assert drained, "drain timed out with submitters racing it"

    all_records = [r for per in records for r in per]
    assert len(all_records) == n_threads * per_thread

    ran = set(executor.ran_probes())
    for record in all_records:
        probe = record.spec.seed
        if record.state is JobState.REJECTED:
            # A rejected job must never have reached the executor and
            # must never have been started.
            assert probe not in ran
            assert record.started_at is None
            assert record.reject_reason in {"draining", "queue_full", "tenant_cap"}
            assert record.retry_after_s is not None
        else:
            # Everything admitted before the drain closed the door must
            # have been run to completion — drain never strands a job.
            assert record.state is JobState.SUCCEEDED
            assert probe in ran
    # Every executed probe belongs to exactly one accepted record.
    accepted = [
        r.spec.seed for r in all_records if r.state is not JobState.REJECTED
    ]
    assert sorted(accepted) == sorted(ran)

    stats = manager.stats()
    assert stats["running"] == 0
    assert stats["queue_depth"] == 0
    assert not stats["accepting"]


def test_repeated_drain_is_idempotent_under_load(lock_watch):
    executor = CountingExecutor()
    manager = JobManager(
        executor, ServiceConfig(max_queue_depth=8, concurrency=2)
    )
    for i in range(6):
        manager.submit(JobSpec(seed=i))
    assert manager.drain(timeout_s=30.0)
    assert manager.drain(timeout_s=5.0)  # second drain: immediate, no hang
    late = manager.submit(JobSpec(seed=99))
    assert late.state is JobState.REJECTED
    assert late.reject_reason == "draining"
    assert 99 not in executor.ran_probes()
