"""Live telemetry plane wired through the real job service.

The acceptance story for the live plane: run the service under load and
check that (a) the online estimator recovers the *configured* cluster
(speeds and watts), (b) the per-tenant ledger reconciles with the obs
trace to 1e-6, (c) induced overload flips the queue-wait SLO to
burning and back, and (d) ``GET /live`` + ``repro obs top`` actually
serve/render the picture.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs.energy import energy_split
from repro.obs.live import (
    Objective,
    SLOMonitor,
    enable_live,
    get_plane,
)
from repro.obs.live.dashboard import fetch_live, render_dashboard
from repro.service import ServiceConfig, build_service
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec

from tests.service.test_manager import (
    BlockingExecutor,
    make_manager,
    wait_for,
)

# alpha=None is the stratified equal-split baseline: every node gets a
# share of every job, so the online regression sees varied work sizes
# on all four nodes (Pareto plans legitimately starve slow nodes).
SPEC = {"workload": "webgraph", "dataset": "uk", "seed": 0, "alpha": None}


@pytest.fixture()
def live_service():
    plane = enable_live()
    svc = build_service(
        engine="simulated",
        num_nodes=4,
        port=0,
        config=ServiceConfig(max_queue_depth=16, concurrency=2, result_ttl_s=120.0),
    )
    with svc:
        yield svc, plane


def _run_mixed_load(svc, sizes=(0.02, 0.05, 0.08)):
    """A few jobs at different scales (varied per-node work sizes keep
    the online regression well-conditioned)."""
    client = ServiceClient(svc.url)
    finals = []
    for tenant, size in zip(("acme", "beta", "acme"), sizes):
        resp = client.submit(dict(SPEC, size_scale=size, tenant=tenant))
        assert resp.status == 202
        finals.append(client.wait(resp.body["job_id"], timeout_s=60.0))
    assert [f.body["state"] for f in finals] == ["SUCCEEDED"] * len(sizes)
    return finals


class TestEstimatorUnderServiceLoad:
    def test_estimates_match_configured_cluster(self, live_service):
        svc, plane = live_service
        _run_mixed_load(svc)
        cluster = svc.executor.engine.cluster
        unit_rate = svc.executor.engine.unit_rate
        estimate = plane.estimator.estimates(num_nodes=len(cluster.nodes))
        for node, est in zip(cluster.nodes, estimate.nodes):
            assert est.samples > 0, f"node {node.node_id} never observed"
            # ISSUE acceptance: within 15% of the configured cluster.
            assert est.throughput_items_per_s == pytest.approx(
                unit_rate * node.speed_factor, rel=0.15
            )
            assert est.power_w == pytest.approx(node.watts, rel=0.15)
        optimizer = estimate.optimizer()
        assert optimizer.num_partitions == len(cluster.nodes)


class TestLedgerUnderServiceLoad:
    def test_ledger_reconciles_and_attributes_tenants(self, live_service):
        svc, plane = live_service
        finals = _run_mixed_load(svc)
        split = energy_split(obs.get_tracer().finished_spans())
        recon = plane.ledger.reconcile(split, tol=1e-6)
        assert recon["ok"], recon
        totals = plane.ledger.totals()
        assert set(totals) == {"acme", "beta"}
        # Per-tenant charges sum to what the jobs reported.
        reported = sum(f.body["result"]["total_energy_j"] for f in finals)
        assert plane.ledger.grand_total()["energy_j"] == pytest.approx(
            reported, abs=1e-6
        )


class TestLiveEndpoint:
    def test_503_when_plane_disabled(self):
        svc = build_service(
            engine="simulated", port=0,
            config=ServiceConfig(max_queue_depth=4, concurrency=1),
        )
        with svc:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{svc.url}/live", timeout=5.0)
            assert err.value.code == 503
            body = json.loads(err.value.read())
            assert "not enabled" in body["error"]

    def test_snapshot_events_and_longpoll(self, live_service):
        svc, _plane = live_service
        _run_mixed_load(svc, sizes=(0.02,))
        payload = fetch_live(svc.url)
        assert payload["seq"] > 0
        assert payload["events"], "buffered events should be returned"
        assert payload["queue"]["accepting"] is True
        snap = payload["snapshot"]
        assert snap["nodes"] and "tenants" in snap and "slo" in snap
        # Long-polling past the tip returns promptly with no events.
        t0 = time.monotonic()
        tail = fetch_live(svc.url, since=payload["seq"], timeout_s=0.2)
        assert tail["events"] == []
        assert time.monotonic() - t0 < 5.0


class TestQueueWaitSLOUnderOverload:
    def test_overload_burns_then_recovers(self):
        # Tight windows so the test observes a full burn/recover cycle.
        plane = enable_live(
            slo=SLOMonitor((
                Objective(
                    "queue_wait", threshold=0.25, budget=0.05,
                    fast_window_s=1.0, slow_window_s=2.0, unit="s",
                ),
            ))
        )
        executor = BlockingExecutor()
        manager = make_manager(executor, max_queue_depth=8, concurrency=1)
        try:
            records = [manager.submit(JobSpec(tenant="t")) for _ in range(4)]
            assert executor.started.wait(timeout=10.0)
            time.sleep(0.6)  # queued jobs accumulate > threshold of wait
            executor.release.set()
            assert wait_for(lambda: all(r.done for r in records))
            status = plane.slo.status()["queue_wait"]
            assert status["state"] == "burning", status
            assert plane.slo.burning() == ["queue_wait"]
            # Recovery: the burst ages out of both windows and fresh
            # uncontended jobs come back with negligible waits.
            time.sleep(2.1)
            assert plane.slo.status()["queue_wait"]["state"] == "ok"
            fresh = manager.submit(JobSpec(tenant="t"))
            assert wait_for(lambda: fresh.done)
            assert plane.slo.status()["queue_wait"]["state"] == "ok"
        finally:
            executor.release.set()
            manager.drain(timeout_s=10.0)


class TestDashboardAgainstLiveServer:
    def test_obs_top_once_renders(self, live_service, capsys):
        svc, _plane = live_service
        _run_mixed_load(svc, sizes=(0.02, 0.05))
        code = main(["obs", "top", "--once", "--url", svc.url])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro live" in out
        for header in ("NODE", "TENANT", "SLO", "QUEUE"):
            assert header in out, f"missing {header} section:\n{out}"
        # And the library path renders the same payload.
        text = render_dashboard(fetch_live(svc.url), source=svc.url)
        assert "items/s" in text

    def test_obs_top_unreachable_is_exit_1(self, capsys):
        code = main(["obs", "top", "--once", "--url", "http://127.0.0.1:9"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
