"""HTTP API contracts over a real (ephemeral-port) server.

Each test spins up a :class:`ServiceHTTPServer` on port 0 against a
stub-executor manager, then exercises the route contracts through the
real :class:`ServiceClient` — the same transport the CLI and the load
harness use.
"""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.service.client import ServiceClient
from repro.service.http import ServiceHTTPServer
from repro.service.jobs import JobState
from repro.service.manager import JobManager, ServiceConfig

from tests.service.test_manager import (
    BlockingExecutor,
    ImmediateExecutor,
    wait_for,
)


@pytest.fixture()
def immediate():
    executor = ImmediateExecutor()
    manager = JobManager(
        executor, ServiceConfig(max_queue_depth=4, concurrency=1, result_ttl_s=60.0)
    )
    with ServiceHTTPServer(manager, port=0) as server:
        yield ServiceClient(server.url), manager
    manager.drain(timeout_s=10.0)


@pytest.fixture()
def blocking():
    executor = BlockingExecutor()
    manager = JobManager(
        executor, ServiceConfig(max_queue_depth=1, concurrency=1, result_ttl_s=60.0)
    )
    with ServiceHTTPServer(manager, port=0) as server:
        yield ServiceClient(server.url), manager, executor
    executor.release.set()
    manager.drain(timeout_s=10.0)


class TestSubmitAndResult:
    def test_submit_roundtrip(self, immediate):
        client, _manager = immediate
        resp = client.submit({"workload": "apriori", "tenant": "t"})
        assert resp.status == 202
        assert resp.body["state"] == "QUEUED"
        job_id = resp.body["job_id"]

        final = client.wait(job_id, timeout_s=10.0)
        assert final.status == 200
        assert final.body["state"] == "SUCCEEDED"
        assert final.body["result"]["total_energy_j"] == 2.0
        assert final.body["run_s"] is not None

        status = client.status(job_id)
        assert status.status == 200
        assert status.body["spec"]["tenant"] == "t"

    def test_bad_spec_is_400(self, immediate):
        client, _manager = immediate
        assert client.submit({"workload": "nope"}).status == 400
        assert client.submit({"bogus_field": 1}).status == 400

    def test_unknown_job_is_404(self, immediate):
        client, _manager = immediate
        assert client.status("job-missing").status == 404
        assert client.result("job-missing").status == 404
        assert client.cancel("job-missing").status == 404

    def test_result_before_terminal_is_409(self, blocking):
        client, _manager, executor = blocking
        resp = client.submit({})
        assert resp.status == 202
        assert executor.started.wait(timeout=5.0)
        pending = client.result(resp.body["job_id"])
        assert pending.status == 409
        assert pending.body["state"] in ("QUEUED", "RUNNING")
        executor.release.set()
        final = client.wait(resp.body["job_id"], timeout_s=10.0)
        assert final.body["state"] == "SUCCEEDED"

    def test_unknown_route_is_404(self, immediate):
        client, _manager = immediate
        assert client._request("GET", "/v1/nope").status == 404
        assert client._request("POST", "/v1/nope").status == 404


class TestBackpressureOverHTTP:
    def test_429_with_retry_after_header(self, blocking):
        client, _manager, executor = blocking
        first = client.submit({})
        assert first.status == 202
        assert executor.started.wait(timeout=5.0)
        assert client.submit({}).status == 202  # fills the depth-1 queue

        rejected = client.submit({})
        assert rejected.status == 429
        assert rejected.rejected
        assert rejected.body["state"] == "REJECTED"
        assert rejected.body["reject_reason"] == "queue_full"
        assert rejected.retry_after_s > 0
        assert float(rejected.headers["Retry-After"]) > 0
        executor.release.set()


class TestCancelOverHTTP:
    def test_cancel_queued(self, blocking):
        client, manager, executor = blocking
        running = client.submit({})
        assert executor.started.wait(timeout=5.0)
        queued = client.submit({})
        resp = client.cancel(queued.body["job_id"])
        assert resp.status == 200
        assert resp.body["cancelled"] is True
        assert manager.get(queued.body["job_id"]).state is JobState.CANCELLED
        executor.release.set()
        final = client.wait(running.body["job_id"], timeout_s=10.0)
        assert final.body["state"] == "SUCCEEDED"


class TestOpsEndpoints:
    def test_healthz_and_stats(self, immediate):
        client, _manager = immediate
        health = client.healthz()
        assert health.status == 200
        assert health.body["status"] == "ok"
        assert health.body["accepting"] is True
        stats = client.stats()
        assert stats.body["config"]["max_queue_depth"] == 4

    def test_metrics_exposition(self, immediate):
        client, _manager = immediate
        obs.enable()
        resp = client.submit({})
        client.wait(resp.body["job_id"], timeout_s=10.0)
        text = client.metrics_text()
        assert "repro_service_submitted_total" in text
        assert 'repro_service_jobs_total{state="SUCCEEDED"}' in text

    def test_drain_endpoint_flips_health(self, immediate):
        client, manager = immediate
        resp = client.drain()
        assert resp.status == 202
        assert wait_for(lambda: not manager.stats()["accepting"])
        health = client.healthz()
        assert health.body["status"] == "draining"
        rejected = client.submit({})
        assert rejected.status == 429
        assert rejected.body["reject_reason"] == "draining"


class TestSubmitCLI:
    def test_repro_submit_waits_and_prints_result(self, immediate, capsys):
        client, _manager = immediate
        from repro.cli import main

        rc = main(
            [
                "submit",
                "--url",
                client.base_url,
                "--workload",
                "apriori",
                "--tenant",
                "cli",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"state": "SUCCEEDED"' in out

    def test_repro_submit_no_wait(self, immediate, capsys):
        client, _manager = immediate
        from repro.cli import main

        rc = main(["submit", "--url", client.base_url, "--no-wait"])
        assert rc == 0
        assert '"state": "QUEUED"' in capsys.readouterr().out


class TestConcurrentClients:
    def test_parallel_submitters_all_answered(self, immediate):
        client, _manager = immediate
        # Every submit gets *a* response (202 or 429) — nothing hangs
        # or drops: the zero-dropped invariant the harness asserts.
        results: list[int] = []
        lock = threading.Lock()

        def one(i):
            resp = client.submit({"seed": i % 3})
            with lock:
                results.append(resp.status)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20.0)
        assert len(results) == 12
        assert set(results) <= {202, 429}
        assert 202 in results
