"""JobManager admission control, lifecycle, and drain semantics.

These tests use stub executors (no engine, no processes) so every
backpressure edge case is exercised deterministically: the blocking
executor holds jobs RUNNING until the test releases them, which lets a
test fill the queue to an exact depth before probing admission.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobs import JobSpec, JobState
from repro.service.manager import JobManager, ServiceConfig


def _result(spec) -> dict:
    return {
        "workload": spec.workload,
        "makespan_s": 0.01,
        "total_energy_j": 2.0,
        "total_dirty_energy_j": 1.0,
        "green_energy_j": 1.0,
    }


class ImmediateExecutor:
    """Runs every job instantly."""

    def __init__(self):
        self.runs = []
        self.closed = False

    def run(self, spec):
        self.runs.append(spec)
        return _result(spec)

    def close(self):
        self.closed = True


class BlockingExecutor(ImmediateExecutor):
    """Holds every job RUNNING until the test sets ``release``."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, spec):
        self.started.set()
        if not self.release.wait(timeout=20.0):
            raise TimeoutError("test never released the executor")
        return super().run(spec)


class FailingExecutor(ImmediateExecutor):
    def run(self, spec):
        raise RuntimeError("scenario exploded")


def wait_for(predicate, timeout_s=10.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def make_manager(executor, **overrides) -> JobManager:
    defaults = dict(
        max_queue_depth=2, concurrency=1, per_tenant_inflight=8, result_ttl_s=60.0
    )
    defaults.update(overrides)
    return JobManager(executor, ServiceConfig(**defaults))


class TestLifecycle:
    def test_submit_runs_to_succeeded(self):
        manager = make_manager(ImmediateExecutor())
        record = manager.submit(JobSpec())
        assert record.state is JobState.QUEUED
        assert wait_for(lambda: record.state is JobState.SUCCEEDED)
        assert record.result["total_energy_j"] == 2.0
        assert record.queue_wait_s is not None and record.run_s is not None
        assert manager.drain(timeout_s=5.0)

    def test_failed_job_records_error(self):
        manager = make_manager(FailingExecutor())
        record = manager.submit(JobSpec())
        assert wait_for(lambda: record.state is JobState.FAILED)
        assert "RuntimeError" in record.error
        assert record.result is None
        manager.drain(timeout_s=5.0)

    def test_invalid_spec_raises_before_admission(self):
        manager = make_manager(ImmediateExecutor())
        with pytest.raises(ValueError, match="unknown workload"):
            manager.submit(JobSpec(workload="nope"))
        with pytest.raises(ValueError, match="cannot run on"):
            manager.submit(JobSpec(workload="treemining", dataset="rcv1"))
        manager.drain(timeout_s=5.0)


class TestBackpressure:
    def test_queue_full_rejects_with_retry_hint(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, max_queue_depth=2, concurrency=1)
        first = manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)  # worker picked it up
        queued = [manager.submit(JobSpec()) for _ in range(2)]
        assert all(r.state is JobState.QUEUED for r in queued)

        rejected = manager.submit(JobSpec())
        assert rejected.state is JobState.REJECTED
        assert rejected.reject_reason == "queue_full"
        assert rejected.retry_after_s > 0
        assert rejected.done
        # Rejections are terminal records: status queries still answer.
        assert manager.get(rejected.job_id) is rejected
        snap = rejected.snapshot()
        assert snap["reject_reason"] == "queue_full"

        executor.release.set()
        assert wait_for(lambda: first.state is JobState.SUCCEEDED)
        manager.drain(timeout_s=10.0)

    def test_retry_hint_scales_with_ewma_after_first_job(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, max_queue_depth=1, concurrency=1)
        first = manager.submit(JobSpec())
        executor.release.set()
        assert wait_for(lambda: first.state is JobState.SUCCEEDED)
        assert manager.stats()["run_ewma_s"] is not None

        executor.release.clear()
        blocker = manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)
        manager.submit(JobSpec())  # fills the depth-1 queue
        rejected = manager.submit(JobSpec())
        assert rejected.state is JobState.REJECTED
        assert rejected.retry_after_s >= manager.config.default_retry_after_s
        executor.release.set()
        assert wait_for(lambda: blocker.state is JobState.SUCCEEDED)
        manager.drain(timeout_s=10.0)

    def test_per_tenant_inflight_cap(self):
        executor = BlockingExecutor()
        manager = make_manager(
            executor, max_queue_depth=16, concurrency=1, per_tenant_inflight=2
        )
        a1 = manager.submit(JobSpec(tenant="a"))
        assert executor.started.wait(timeout=5.0)
        a2 = manager.submit(JobSpec(tenant="a"))
        capped = manager.submit(JobSpec(tenant="a"))
        assert capped.state is JobState.REJECTED
        assert capped.reject_reason == "tenant_cap"
        # Another tenant is unaffected by a's cap.
        b1 = manager.submit(JobSpec(tenant="b"))
        assert b1.state is JobState.QUEUED

        executor.release.set()
        assert wait_for(
            lambda: all(
                r.state is JobState.SUCCEEDED for r in (a1, a2, b1)
            )
        )
        # Caps release as jobs finish: tenant a admits again.
        a3 = manager.submit(JobSpec(tenant="a"))
        assert a3.state is JobState.QUEUED
        assert wait_for(lambda: a3.state is JobState.SUCCEEDED)
        manager.drain(timeout_s=10.0)


class TestCancel:
    def test_cancel_queued_job(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, max_queue_depth=4, concurrency=1)
        running = manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)
        queued = manager.submit(JobSpec())
        assert manager.cancel(queued.job_id) is True
        assert queued.state is JobState.CANCELLED
        assert queued.done

        executor.release.set()
        assert wait_for(lambda: running.state is JobState.SUCCEEDED)
        # The cancelled job never reached the executor.
        assert len(executor.runs) == 1
        manager.drain(timeout_s=10.0)

    def test_cancel_running_job_only_flags(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, concurrency=1)
        running = manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)
        assert wait_for(lambda: running.state is JobState.RUNNING)
        assert manager.cancel(running.job_id) is False
        assert running.cancel_requested is True
        assert running.state is JobState.RUNNING
        executor.release.set()
        assert wait_for(lambda: running.state is JobState.SUCCEEDED)
        manager.drain(timeout_s=10.0)

    def test_cancel_unknown_job(self):
        manager = make_manager(ImmediateExecutor())
        assert manager.cancel("job-nope") is False
        manager.drain(timeout_s=5.0)


class TestTTLEviction:
    def test_finished_results_evicted_after_ttl(self):
        manager = make_manager(ImmediateExecutor(), result_ttl_s=0.05)
        record = manager.submit(JobSpec())
        assert wait_for(lambda: record.state is JobState.SUCCEEDED)
        assert manager.get(record.job_id) is record
        time.sleep(0.08)
        # Any table access sweeps expired terminal records.
        assert manager.get(record.job_id) is None
        manager.drain(timeout_s=5.0)

    def test_queued_and_running_never_evicted(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, result_ttl_s=0.01, concurrency=1)
        running = manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)
        queued = manager.submit(JobSpec())
        time.sleep(0.05)
        assert manager.get(running.job_id) is running
        assert manager.get(queued.job_id) is queued
        executor.release.set()
        assert wait_for(lambda: queued.state is JobState.SUCCEEDED)
        manager.drain(timeout_s=10.0)


class TestDrain:
    def test_drain_finishes_queue_then_rejects(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, max_queue_depth=8, concurrency=2)
        records = [manager.submit(JobSpec()) for _ in range(4)]
        assert executor.started.wait(timeout=5.0)

        done = threading.Event()
        result: dict[str, bool] = {}

        def drainer():
            result["drained"] = manager.drain(timeout_s=20.0)
            done.set()

        threading.Thread(target=drainer, daemon=True).start()
        # Admission stops as soon as the drain begins.
        assert wait_for(lambda: not manager.stats()["accepting"])
        late = manager.submit(JobSpec())
        assert late.state is JobState.REJECTED
        assert late.reject_reason == "draining"

        executor.release.set()
        assert done.wait(timeout=20.0)
        assert result["drained"] is True
        assert all(r.state is JobState.SUCCEEDED for r in records)
        # Workers are stopped; a second drain is an idempotent no-op.
        assert manager.drain(timeout_s=1.0) is True

    def test_drain_timeout_reports_false(self):
        executor = BlockingExecutor()
        manager = make_manager(executor, concurrency=1)
        manager.submit(JobSpec())
        assert executor.started.wait(timeout=5.0)
        assert manager.drain(timeout_s=0.05) is False
        executor.release.set()
        assert manager.drain(timeout_s=10.0) is True

    def test_shutdown_closes_executor(self):
        executor = ImmediateExecutor()
        manager = make_manager(executor)
        record = manager.submit(JobSpec())
        assert wait_for(lambda: record.state is JobState.SUCCEEDED)
        assert manager.shutdown(timeout_s=10.0) is True
        assert executor.closed is True


class TestStats:
    def test_stats_shape(self):
        manager = make_manager(ImmediateExecutor())
        record = manager.submit(JobSpec(tenant="t1"))
        assert wait_for(lambda: record.state is JobState.SUCCEEDED)
        stats = manager.stats()
        assert stats["accepting"] is True
        assert stats["queue_depth"] == 0
        assert stats["states"].get("SUCCEEDED") == 1
        assert stats["config"]["max_queue_depth"] == 2
        manager.drain(timeout_s=5.0)
