"""Shared service-test hygiene: obs left off/empty around every test."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
