"""Unit tests for the cluster node model."""

import numpy as np
import pytest

from repro.cluster.node import PAPER_NODE_TYPES, Node, NodeType
from repro.energy.traces import EnergyTrace


def make_node(speed=2.0, cores=2, overhead=0.5, green=0.0):
    return Node(
        node_id=0,
        node_type=NodeType(type_id=0, speed_factor=speed, cores=cores),
        trace=EnergyTrace(watts=np.full(100, green)),
        task_overhead_s=overhead,
    )


class TestNodeTypes:
    def test_paper_preset_speeds(self):
        assert [t.speed_factor for t in PAPER_NODE_TYPES] == [4.0, 3.0, 2.0, 1.0]

    def test_paper_preset_cores(self):
        assert [t.cores for t in PAPER_NODE_TYPES] == [4, 3, 2, 1]

    def test_paper_preset_watts(self):
        assert [t.power_model().watts for t in PAPER_NODE_TYPES] == [
            440.0,
            345.0,
            250.0,
            155.0,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeType(type_id=0, speed_factor=0.0, cores=1)
        with pytest.raises(ValueError):
            NodeType(type_id=0, speed_factor=1.0, cores=0)


class TestRuntimeModel:
    def test_speed_divides_runtime(self):
        slow = make_node(speed=1.0, overhead=0.0)
        fast = make_node(speed=4.0, overhead=0.0)
        work = 1000.0
        assert slow.runtime_for_work(work, 100.0) == pytest.approx(
            4 * fast.runtime_for_work(work, 100.0)
        )

    def test_overhead_included(self):
        node = make_node(speed=2.0, overhead=1.0)
        assert node.runtime_for_work(0.0, 100.0) == pytest.approx(0.5)

    def test_linear_in_work(self):
        node = make_node(speed=1.0, overhead=0.0)
        t1 = node.runtime_for_work(100.0, 10.0)
        t2 = node.runtime_for_work(200.0, 10.0)
        assert t2 == pytest.approx(2 * t1)

    def test_invalid_inputs(self):
        node = make_node()
        with pytest.raises(ValueError):
            node.runtime_for_work(-1.0, 10.0)
        with pytest.raises(ValueError):
            node.runtime_for_work(1.0, 0.0)


class TestNodeValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(
                node_id=-1,
                node_type=PAPER_NODE_TYPES[0],
                trace=EnergyTrace(watts=np.zeros(1)),
            )

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            make_node(overhead=-0.1)

    def test_accountant_wired(self):
        node = make_node(cores=1, green=55.0)
        # draw 155 W − 55 W green = 100 W dirty.
        assert node.dirty_power_coefficient() == pytest.approx(100.0)

    def test_watts_property(self):
        assert make_node(cores=3).watts == pytest.approx(345.0)
