"""Unit tests for cluster assembly and presets."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, homogeneous_cluster, paper_cluster
from repro.cluster.node import PAPER_NODE_TYPES, Node
from repro.energy.traces import EnergyTrace


class TestPaperCluster:
    def test_cycles_through_four_types(self):
        cluster = paper_cluster(8)
        speeds = cluster.speed_factors()
        assert speeds.tolist() == [4.0, 3.0, 2.0, 1.0, 4.0, 3.0, 2.0, 1.0]

    def test_four_node_cluster_one_of_each(self):
        cluster = paper_cluster(4)
        assert sorted(n.node_type.type_id for n in cluster) == [1, 2, 3, 4]

    def test_locations_cycle(self):
        cluster = paper_cluster(8)
        names = [n.trace.location.name for n in cluster]
        assert names[:4] == names[4:]
        assert len(set(names[:4])) == 4

    def test_traces_seeded_independently(self):
        cluster = paper_cluster(8, seed=3)
        # Same location, different node => different weather realisation.
        assert not np.array_equal(cluster[0].trace.watts, cluster[4].trace.watts)

    def test_deterministic_in_seed(self):
        c1, c2 = paper_cluster(4, seed=9), paper_cluster(4, seed=9)
        for n1, n2 in zip(c1, c2):
            assert np.array_equal(n1.trace.watts, n2.trace.watts)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            paper_cluster(0)

    def test_dirty_coefficients_vector(self):
        cluster = paper_cluster(8)
        k = cluster.dirty_power_coefficients()
        assert k.shape == (8,)
        assert (k >= 0).all()


class TestHomogeneousCluster:
    def test_uniform_speeds(self):
        cluster = homogeneous_cluster(6, speed_factor=2.0)
        assert (cluster.speed_factors() == 2.0).all()

    def test_uniform_power(self):
        cluster = homogeneous_cluster(3, cores=2)
        assert len({n.watts for n in cluster}) == 1


class TestClusterStructure:
    def test_dense_ids_required(self):
        nodes = [
            Node(
                node_id=i,
                node_type=PAPER_NODE_TYPES[0],
                trace=EnergyTrace(watts=np.zeros(1)),
            )
            for i in (0, 2)
        ]
        with pytest.raises(ValueError):
            Cluster(nodes=nodes)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster(nodes=[])

    def test_iteration_and_indexing(self):
        cluster = paper_cluster(4)
        assert len(cluster) == 4
        assert cluster[2].node_id == 2
        assert [n.node_id for n in cluster] == [0, 1, 2, 3]

    def test_kv_client_matches_size(self):
        cluster = paper_cluster(4)
        assert cluster.kv.num_nodes == 4


class TestMasterSelection:
    def test_fastest_node_is_type1(self):
        cluster = paper_cluster(8)
        assert cluster.fastest_node().node_type.type_id == 1

    def test_master_nodes_distinct_and_fastest(self):
        cluster = paper_cluster(8)
        a, b = cluster.master_nodes()
        assert a.node_id != b.node_id
        # Both masters are drawn from the fastest available type(s).
        assert a.speed_factor == 4.0 and b.speed_factor == 4.0

    def test_single_node_cluster_reuses_master(self):
        cluster = paper_cluster(1)
        a, b = cluster.master_nodes()
        assert a is b

    def test_priority_order_without_type1(self):
        # Build a cluster of types 2..4 only; master must be type 2.
        nodes = [
            Node(
                node_id=i,
                node_type=PAPER_NODE_TYPES[1 + (i % 3)],
                trace=EnergyTrace(watts=np.zeros(1)),
            )
            for i in range(6)
        ]
        cluster = Cluster(nodes=nodes)
        assert cluster.fastest_node().node_type.type_id == 2
