"""Unit tests for the execution engines."""

import time
from typing import Sequence

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import ProcessPoolEngine, SimulatedEngine
from repro.workloads.base import Workload, WorkloadResult


class CountingWorkload(Workload):
    """Work = number of records; output = their sum (picklable)."""

    name = "counting"

    def run(self, records: Sequence[int]) -> WorkloadResult:
        return WorkloadResult(
            work_units=float(len(records)), output=sum(records), stats={"n": len(records)}
        )

    def merge(self, partials):
        return sum(p.output for p in partials)


class SlowWorkload(CountingWorkload):
    """Counting plus a worker-side sleep, to hold tasks in flight."""

    name = "slow-counting"

    def run(self, records: Sequence[int]) -> WorkloadResult:
        time.sleep(0.05)
        return super().run(records)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(4, seed=0)


@pytest.fixture(scope="module")
def engine(cluster):
    return SimulatedEngine(cluster, unit_rate=10.0)


class TestSimulatedEngine:
    def test_runtime_formula(self, cluster, engine):
        # node 3 (speed 1): overhead 0.5 + 20/10 = 2.5 s.
        runtime = engine.profile(CountingWorkload(), list(range(20)), 3)
        assert runtime == pytest.approx(0.5 + 2.0)

    def test_faster_node_shorter_runtime(self, engine):
        records = list(range(40))
        t_fast = engine.profile(CountingWorkload(), records, 0)
        t_slow = engine.profile(CountingWorkload(), records, 3)
        assert t_fast == pytest.approx(t_slow / 4.0)

    def test_profile_all_nodes_matches_profile(self, engine):
        records = list(range(12))
        batched = engine.profile_all_nodes(CountingWorkload(), records)
        singles = [
            engine.profile(CountingWorkload(), records, i) for i in range(4)
        ]
        assert batched == pytest.approx(singles)

    def test_invalid_unit_rate(self, cluster):
        with pytest.raises(ValueError):
            SimulatedEngine(cluster, unit_rate=0.0)

    def test_deterministic(self, engine):
        parts = [[1, 2], [3], [4, 5, 6], [7]]
        r1 = engine.run_job(CountingWorkload(), parts)
        r2 = engine.run_job(CountingWorkload(), parts)
        assert r1.makespan_s == r2.makespan_s
        assert r1.total_dirty_energy_j == r2.total_dirty_energy_j


class TestJobExecution:
    def test_default_assignment_round_robins(self, engine):
        parts = [[1]] * 6
        job = engine.run_job(CountingWorkload(), parts)
        assert [t.node_id for t in job.tasks] == [0, 1, 2, 3, 0, 1]

    def test_makespan_is_max_node_busy_time(self, engine):
        parts = [[1] * 10, [1] * 10]
        job = engine.run_job(CountingWorkload(), parts, assignment=[0, 3])
        busy = job.node_busy_times()
        assert job.makespan_s == pytest.approx(max(busy.values()))

    def test_multiple_partitions_on_node_serialize(self, engine):
        parts = [[1] * 10, [1] * 10]
        job = engine.run_job(CountingWorkload(), parts, assignment=[2, 2])
        t0, t1 = job.tasks
        assert t1.start_s == pytest.approx(t0.end_s)
        assert job.makespan_s == pytest.approx(t0.runtime_s + t1.runtime_s)

    def test_merged_output(self, engine):
        parts = [[1, 2], [3, 4]]
        job = engine.run_job(CountingWorkload(), parts, assignment=[0, 1])
        assert job.merged_output == 10

    def test_energy_totals_sum_tasks(self, engine):
        parts = [[1] * 5, [1] * 5, [1] * 5]
        job = engine.run_job(CountingWorkload(), parts)
        assert job.total_dirty_energy_j == pytest.approx(
            sum(t.dirty_energy_j for t in job.tasks)
        )
        assert job.total_energy_j == pytest.approx(
            sum(t.energy_j for t in job.tasks)
        )

    def test_energy_positive_for_busy_nodes(self, engine):
        job = engine.run_job(CountingWorkload(), [[1] * 20], assignment=[0])
        assert job.total_energy_j > 0

    def test_assignment_validation(self, engine):
        with pytest.raises(ValueError):
            engine.run_job(CountingWorkload(), [[1]], assignment=[9])
        with pytest.raises(ValueError):
            engine.run_job(CountingWorkload(), [[1], [2]], assignment=[0])
        with pytest.raises(ValueError):
            engine.run_job(CountingWorkload(), [], assignment=[])

    def test_partition_sizes_by_node(self, engine):
        parts = [[1] * 4, [1] * 6]
        job = engine.run_job(CountingWorkload(), parts, assignment=[1, 1])
        assert job.partition_sizes_by_node() == {1: 10.0}


class TestEnergyWindows:
    def test_sequential_tasks_account_later_trace_windows(self):
        """A node's second task runs later in its green trace, so its
        dirty energy must reflect that window — here the trace turns
        green after 2 s, so only the first task pays."""
        import numpy as np

        from repro.cluster.cluster import Cluster
        from repro.cluster.node import Node, NodeType
        from repro.energy.traces import EnergyTrace

        trace = EnergyTrace(
            watts=np.array([0.0, 0.0, 1000.0, 1000.0, 1000.0, 1000.0]),
            resolution_s=1.0,
        )
        node = Node(
            node_id=0,
            node_type=NodeType(type_id=1, speed_factor=1.0, cores=1),  # 155 W
            trace=trace,
            task_overhead_s=0.0,
        )
        cluster = Cluster(nodes=[node])
        engine = SimulatedEngine(cluster, unit_rate=10.0)
        # Two tasks of 20 work units = 2 s each, back to back.
        job = engine.run_job(CountingWorkload(), [[1] * 20, [1] * 20], assignment=[0, 0])
        first, second = job.tasks
        assert first.dirty_energy_j == pytest.approx(155.0 * 2.0)
        assert second.dirty_energy_j == pytest.approx(0.0)

        # A start offset shifts the billing window: starting at t=2 both
        # tasks run in the green part of the trace.
        shifted = engine.run_job(
            CountingWorkload(), [[1] * 20, [1] * 20], assignment=[0, 0], start_offset_s=2.0
        )
        assert shifted.total_dirty_energy_j == pytest.approx(0.0)
        assert shifted.makespan_s == pytest.approx(job.makespan_s)

    def test_negative_offset_rejected(self):
        from repro.cluster.cluster import paper_cluster

        engine = SimulatedEngine(paper_cluster(2, seed=0), unit_rate=10.0)
        with pytest.raises(ValueError):
            engine.run_job(CountingWorkload(), [[1]], start_offset_s=-1.0)


class TestProcessPoolEngine:
    def test_end_to_end(self, cluster):
        engine = ProcessPoolEngine(cluster, max_workers=2)
        parts = [[1, 2, 3], [4, 5]]
        job = engine.run_job(CountingWorkload(), parts, assignment=[0, 1])
        assert job.merged_output == 15
        assert job.makespan_s > 0
        assert all(t.runtime_s > 0 for t in job.tasks)

    def test_speed_scaling_applied(self, cluster):
        engine = ProcessPoolEngine(cluster, max_workers=1)
        records = list(range(100))
        # The same work on a 4x node must be reported faster than on the
        # 1x node by roughly the speed ratio (wall time is similar).
        t_fast = engine.profile(CountingWorkload(), records, 0)
        t_slow = engine.profile(CountingWorkload(), records, 3)
        assert t_slow > t_fast
        engine.shutdown()

    def test_pool_persists_across_jobs_and_probes(self, cluster):
        engine = ProcessPoolEngine(cluster, max_workers=1)
        assert engine.pools_created == 0  # lazy: nothing until first work
        engine.run_job(CountingWorkload(), [[1, 2], [3]], assignment=[0, 1])
        engine.profile(CountingWorkload(), [1, 2, 3], 2)
        engine.profile_all_nodes(CountingWorkload(), [1, 2])
        engine.run_job(CountingWorkload(), [[4]], assignment=[3])
        assert engine.pools_created == 1
        engine.shutdown()

    def test_shutdown_idempotent_and_pool_rebuilds(self, cluster):
        engine = ProcessPoolEngine(cluster, max_workers=1)
        engine.profile(CountingWorkload(), [1], 0)
        engine.shutdown()
        engine.shutdown()  # second call is a no-op
        # Work after shutdown transparently builds a fresh pool.
        job = engine.run_job(CountingWorkload(), [[1, 2]], assignment=[0])
        assert job.merged_output == 3
        assert engine.pools_created == 2
        engine.shutdown()

    def test_shutdown_waits_for_inflight_job(self, cluster):
        # shutdown(wait=True) racing an active run_job must drain the
        # job before unlinking shared memory: the job completes with a
        # correct result instead of crashing on a vanished segment.
        import threading

        engine = ProcessPoolEngine(cluster, max_workers=2)
        done: dict[str, object] = {}

        def run():
            parts = [list(range(200)) for _ in range(8)]
            done["job"] = engine.run_job(
                SlowWorkload(), parts, assignment=[i % 4 for i in range(8)]
            )

        worker = threading.Thread(target=run)
        worker.start()
        deadline = time.monotonic() + 10.0
        while engine._inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert engine._inflight > 0, "job never became in-flight"
        engine.shutdown(wait=True)
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        job = done["job"]
        assert job.merged_output == sum(range(200)) * 8
        assert engine._pool is None and engine._store is None

    def test_concurrent_shutdown_callers(self, cluster):
        # Two threads racing shutdown(): exactly-once teardown, no error.
        import threading

        engine = ProcessPoolEngine(cluster, max_workers=1)
        engine.profile(CountingWorkload(), [1, 2], 0)
        errors: list[BaseException] = []

        def call():
            try:
                engine.shutdown(wait=True)
            except BaseException as exc:  # repro: noqa[SILENT-EXCEPT] — not swallowed: collected per thread and asserted empty after join
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert errors == []
        assert engine._pool is None and engine._store is None

    def test_concurrent_run_jobs_share_pool(self, cluster):
        # Two submitting threads must both complete against the one
        # persistent pool/store pair (lifecycle lock serialises setup).
        import threading

        engine = ProcessPoolEngine(cluster, max_workers=2)
        results: dict[int, int] = {}

        def run(idx):
            parts = [[idx, idx + 1], [idx + 2]]
            job = engine.run_job(CountingWorkload(), parts, assignment=[0, 1])
            results[idx] = job.merged_output

        threads = [threading.Thread(target=run, args=(i,)) for i in (10, 20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert results == {10: 3 * 10 + 3, 20: 3 * 20 + 3}
        assert engine.pools_created == 1
        engine.shutdown()

    def test_context_manager_releases_pool(self, cluster):
        with ProcessPoolEngine(cluster, max_workers=1) as engine:
            job = engine.run_job(CountingWorkload(), [[1], [2]], assignment=[0, 1])
            assert job.merged_output == 3
        assert engine._pool is None

    def test_profile_all_nodes_scales_one_measurement(self, cluster):
        # The override runs the sample once; every node's runtime derives
        # from the same wall time, so the node ordering by speed is exact
        # (no cross-probe measurement noise).
        with ProcessPoolEngine(cluster, max_workers=1) as engine:
            times = engine.profile_all_nodes(CountingWorkload(), list(range(50)))
        assert len(times) == cluster.num_nodes
        wall_implied = [
            (t - n.task_overhead_s / n.speed_factor) * n.speed_factor
            for t, n in zip(times, cluster)
        ]
        assert wall_implied == pytest.approx([wall_implied[0]] * len(wall_implied))
