"""Unit tests for the data-center renewable-design scenarios."""

import numpy as np
import pytest

from repro.cluster.scenarios import (
    SCENARIOS,
    geo_distributed_cluster,
    iswitch_cluster,
    rack_level_cluster,
)


class TestRackLevel:
    def test_panel_sizes_cycle(self):
        cluster = rack_level_cluster(8, seed=0)
        means = [n.trace.watts.mean() for n in cluster]
        # Panels 800/400/200/0 W: strictly decreasing mean supply.
        assert means[0] > means[1] > means[2] > means[3] == 0.0
        assert means[:4] == pytest.approx(means[4:])

    def test_shared_weather(self):
        cluster = rack_level_cluster(8, seed=0)
        # Node 0 (800 W) and node 1 (400 W) share the weather: their
        # traces are proportional.
        ratio = cluster[0].trace.watts / np.maximum(cluster[1].trace.watts, 1e-9)
        daylight = cluster[1].trace.watts > 1.0
        assert np.allclose(ratio[daylight], 2.0, rtol=0.01)

    def test_grid_tied_rack_fully_dirty(self):
        cluster = rack_level_cluster(4, seed=0)
        node = cluster[3]
        assert node.dirty_power_coefficient() == pytest.approx(node.watts)

    def test_speeds_unchanged(self):
        cluster = rack_level_cluster(8, seed=0)
        assert cluster.speed_factors().tolist() == [4, 3, 2, 1, 4, 3, 2, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            rack_level_cluster(0)


class TestISwitch:
    def test_bimodal_supply(self):
        cluster = iswitch_cluster(8, green_fraction=0.5, seed=0)
        means = np.array([n.trace.watts.mean() for n in cluster])
        assert (means[:4] > 0).all()
        assert (means[4:] == 0).all()

    def test_green_racks_oversized_panels(self):
        cluster = iswitch_cluster(4, green_fraction=1.0, seed=0)
        for node in cluster:
            # Midday supply exceeds the node's own draw.
            assert node.trace.watts.max() > node.watts

    def test_dirty_coefficients_extreme(self):
        cluster = iswitch_cluster(8, green_fraction=0.5, seed=0)
        k = cluster.dirty_power_coefficients()
        # Grid racks pay full draw; green racks pay (near) nothing.
        assert (k[4:] == [n.watts for n in list(cluster)[4:]]).all()
        assert k[:4].max() < 0.5 * k[4:].min()

    def test_green_fraction_bounds(self):
        with pytest.raises(ValueError):
            iswitch_cluster(4, green_fraction=1.5)
        with pytest.raises(ValueError):
            iswitch_cluster(0)

    def test_zero_green_fraction(self):
        cluster = iswitch_cluster(4, green_fraction=0.0, seed=0)
        assert all(n.trace.watts.max() == 0 for n in cluster)


class TestRegistry:
    def test_three_designs(self):
        assert set(SCENARIOS) == {"rack-level", "iswitch", "geo-distributed"}

    def test_geo_is_paper_cluster(self):
        cluster = geo_distributed_cluster(8, seed=0)
        names = {n.trace.location.name for n in cluster}
        assert len(names) == 4

    def test_all_scenarios_buildable(self):
        for name, builder in SCENARIOS.items():
            cluster = builder(8, seed=1)
            assert cluster.num_nodes == 8, name
