"""Unit tests for the fetch-and-increment global barrier."""

import threading

import pytest

from repro.cluster.barrier import KVBarrier
from repro.kvstore.store import KeyValueStore, StoreError


@pytest.fixture()
def store():
    return KeyValueStore()


class TestBarrier:
    def test_single_party_passes_immediately(self, store):
        barrier = KVBarrier(store=store, parties=1)
        assert barrier.wait() == 0

    def test_all_threads_pass_together(self, store):
        parties = 6
        barrier = KVBarrier(store=store, parties=parties, timeout_s=5.0)
        passed = []
        lock = threading.Lock()

        def worker(pid):
            barrier.wait(party_id=pid)
            with lock:
                passed.append(pid)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(parties)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(passed) == list(range(parties))

    def test_generations_make_barrier_reusable(self, store):
        parties = 4
        barrier = KVBarrier(store=store, parties=parties, timeout_s=5.0)
        generations = []
        lock = threading.Lock()

        def worker(pid):
            for _phase in range(3):
                gen = barrier.wait(party_id=pid)
                with lock:
                    generations.append(gen)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(parties)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each generation 0,1,2 completed by all parties.
        assert sorted(generations) == [0] * 4 + [1] * 4 + [2] * 4

    def test_timeout_when_party_missing(self, store):
        barrier = KVBarrier(store=store, parties=2, timeout_s=0.1)
        with pytest.raises(TimeoutError):
            barrier.wait(party_id=0)

    def test_overflow_detected(self, store):
        barrier = KVBarrier(store=store, parties=1)
        barrier.wait(party_id=0)
        # A second distinct party arriving at generation 0 overflows.
        with pytest.raises(StoreError):
            barrier.wait(party_id=99)

    def test_zero_parties_rejected(self, store):
        with pytest.raises(StoreError):
            KVBarrier(store=store, parties=0)

    def test_distinct_names_isolated(self, store):
        b1 = KVBarrier(store=store, parties=1, name="phase1")
        b2 = KVBarrier(store=store, parties=1, name="phase2")
        assert b1.wait() == 0
        assert b2.wait() == 0
        assert store.get("phase1:gen:0:arrivals") == 1
        assert store.get("phase2:gen:0:arrivals") == 1
