"""Unit tests for the work-stealing baseline scheduler."""

from typing import Sequence

import pytest

from repro.cluster.cluster import homogeneous_cluster, paper_cluster
from repro.cluster.workstealing import WorkStealingScheduler
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fpm.apriori import AprioriWorkload


class SizeWorkload(Workload):
    """Payload-insensitive: work = record count (ideal for stealing)."""

    name = "size-only"

    def run(self, records: Sequence) -> WorkloadResult:
        return WorkloadResult(work_units=float(len(records)), output=len(records))

    def merge(self, partials):
        return sum(p.output for p in partials)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(4, seed=0)


class TestMechanics:
    def test_all_items_processed(self, cluster):
        ws = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=5)
        parts = [[1] * 23, [1] * 17, [1] * 9, [1] * 31]
        job = ws.run_job(SizeWorkload(), parts)
        assert job.merged_output == 80

    def test_steals_happen_under_heterogeneity(self, cluster):
        ws = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=4)
        # Equal partitions on a 4x..1x cluster: fast nodes finish early
        # and must steal from the slow ones.
        parts = [[1] * 40 for _ in range(4)]
        job = ws.run_job(SizeWorkload(), parts)
        assert ws.num_steals > 0
        thieves = {e.thief for e in ws.events}
        assert 0 in thieves  # the fastest node steals

    def test_stealing_improves_makespan_for_size_only_work(self, cluster):
        """For payload-insensitive work, stealing fixes the load
        imbalance — the case where the classic approach shines."""
        parts = [[1] * 40 for _ in range(4)]
        ws = WorkStealingScheduler(
            cluster, unit_rate=100.0, chunk_size=4, steal_latency_s=0.0,
            transfer_s_per_item=0.0,
        )
        stolen = ws.run_job(SizeWorkload(), parts)
        # No stealing possible with chunk = whole partition on own node
        # and zero-work overhead: emulate by huge chunk size.
        ws_off = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=10**6)
        pinned = ws_off.run_job(SizeWorkload(), parts)
        assert stolen.makespan_s < pinned.makespan_s

    def test_steal_costs_charged(self, cluster):
        parts = [[1] * 40 for _ in range(4)]
        cheap = WorkStealingScheduler(
            cluster, unit_rate=100.0, chunk_size=4,
            steal_latency_s=0.0, transfer_s_per_item=0.0,
        ).run_job(SizeWorkload(), parts)
        costly = WorkStealingScheduler(
            cluster, unit_rate=100.0, chunk_size=4,
            steal_latency_s=1.0, transfer_s_per_item=0.1,
        ).run_job(SizeWorkload(), parts)
        assert costly.makespan_s > cheap.makespan_s

    def test_deterministic(self, cluster):
        parts = [[1] * 20 for _ in range(4)]
        a = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=4).run_job(
            SizeWorkload(), parts
        )
        b = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=4).run_job(
            SizeWorkload(), parts
        )
        assert a.makespan_s == b.makespan_s

    def test_homogeneous_cluster_few_steals(self):
        cluster = homogeneous_cluster(4, seed=0)
        ws = WorkStealingScheduler(cluster, unit_rate=100.0, chunk_size=4)
        parts = [[1] * 20 for _ in range(4)]
        job = ws.run_job(SizeWorkload(), parts)
        # Balanced load on equal nodes: little to steal.
        assert ws.num_steals <= 4
        assert job.merged_output == 80

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            WorkStealingScheduler(cluster, unit_rate=0.0)
        with pytest.raises(ValueError):
            WorkStealingScheduler(cluster, chunk_size=0)
        with pytest.raises(ValueError):
            WorkStealingScheduler(cluster, steal_latency_s=-1.0)
        ws = WorkStealingScheduler(cluster)
        with pytest.raises(ValueError):
            ws.run_job(SizeWorkload(), [[1]], assignment=[99])


class TestPayloadSensitivity:
    def test_chunking_inflates_mining_candidates(self, cluster):
        """The paper's argument: stealing granularity fragments mining
        partitions, growing the locally-frequent candidate union."""
        from repro.data.text import CorpusConfig, generate_corpus

        docs = generate_corpus(CorpusConfig(num_docs=240, seed=4)).documents
        parts = [docs[i::4] for i in range(4)]
        wl = AprioriWorkload(min_support=0.2, max_len=2)

        whole = WorkStealingScheduler(
            cluster, unit_rate=1e4, chunk_size=10**6
        ).run_job(wl, parts)
        fragmented = WorkStealingScheduler(
            cluster, unit_rate=1e4, chunk_size=10
        ).run_job(wl, parts)
        assert len(fragmented.merged_output) > len(whole.merged_output)
