"""Tests for the shared-memory partition data plane."""

import os
import pickle
import subprocess
import sys
import textwrap
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.dataplane import (
    SharedPartitionStore,
    fetch_partition,
)
from repro.cluster.engines import ProcessPoolEngine
from repro.workloads.base import Workload, WorkloadResult


class SummingWorkload(Workload):
    name = "summing"

    def run(self, records: Sequence[int]) -> WorkloadResult:
        return WorkloadResult(work_units=float(len(records)), output=sum(records))

    def merge(self, partials):
        return sum(p.output for p in partials)


@pytest.fixture()
def store():
    with SharedPartitionStore() as s:
        yield s


class TestRoundTrip:
    def test_list_partition(self, store):
        part = [[1, 2, 3], [4], []]
        ref = store.put(part)
        assert fetch_partition(ref) == part

    def test_numpy_partition_goes_out_of_band(self, store):
        arr = np.arange(4096, dtype=np.int64)
        ref = store.put(arr)
        assert ref.buffer_lengths  # protocol-5 out-of-band buffer
        got = fetch_partition(ref)
        assert np.array_equal(got, arr)
        # The frame itself stays tiny: array bytes live out-of-band.
        assert ref.frame_bytes < 1024

    def test_mixed_batch(self, store):
        parts = [[1, 2], list(range(100)), [{"k": "v"}]]
        refs = store.put_many(parts)
        assert [fetch_partition(r) for r in refs] == parts


class TestCaching:
    def test_identity_hit_skips_serialization(self, store):
        part = [list(range(50))]
        r1 = store.put(part)
        r2 = store.put(part)
        assert r1 == r2
        assert store.stats.serializations == 1
        assert store.stats.identity_hits == 1

    def test_digest_hit_reuses_published_bytes(self, store):
        r1 = store.put([1, 2, 3])
        r2 = store.put([1, 2, 3])  # new object, same bytes
        assert r1 == r2
        assert store.stats.digest_hits == 1
        assert store.stats.segments_created == 1

    def test_distinct_partitions_get_distinct_refs(self, store):
        r1, r2 = store.put_many([[1], [2]])
        assert r1 != r2
        assert fetch_partition(r1) == [1] and fetch_partition(r2) == [2]

    def test_clear_cache_forces_reserialization(self, store):
        part = [1, 2]
        store.put(part)
        store.clear_cache()
        store.put(part)
        assert store.stats.serializations == 2


class TestRefSize:
    def test_ref_bytes_constant_in_partition_size(self, store):
        small = [list(range(10))]
        large = [list(range(100_000))]
        r_small, r_large = store.put(small), store.put(large)
        b_small = len(pickle.dumps(r_small, protocol=5))
        b_large = len(pickle.dumps(r_large, protocol=5))
        # The ref payload is a name + three ints: growing the partition
        # 10,000x moves the task payload by a few digit widths at most.
        assert b_large <= b_small + 16
        eager_large = len(pickle.dumps(large, protocol=5))
        assert b_large < eager_large / 100

    def test_stats_track_ref_bytes(self, store):
        store.put_many([[1], [2], [3]])
        assert store.stats.refs_issued == 3
        assert 0 < store.stats.ref_bytes_per_task < 512


class TestLifecycle:
    def test_close_unlinks_segments(self):
        store = SharedPartitionStore()
        ref = store.put(list(range(1000)))
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment, create=False)

    def test_close_is_idempotent(self):
        store = SharedPartitionStore()
        store.put([1])
        store.close()
        store.close()
        assert store.closed

    def test_put_after_close_rejected(self):
        store = SharedPartitionStore()
        store.close()
        with pytest.raises(RuntimeError):
            store.put([1])


class TestCacheLimit:
    """Regression: the segment cache must stay bounded across many
    distinct jobs (the LRU unlinks old segments and purges their
    digest/identity entries)."""

    def test_lru_evicts_oldest_segments(self):
        with SharedPartitionStore(cache_limit=2) as store:
            refs = [store.put([("job", i)] * 50) for i in range(5)]
            assert store.live_segments <= 2
            assert store.stats.segments_created == 5
            assert store.stats.segments_evicted == 3
            # Evicted segments are really unlinked...
            for ref in refs[:3]:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=ref.segment, create=False)
            # ...while the newest survivors stay fetchable.
            assert fetch_partition(refs[4]) == [("job", 4)] * 50

    def test_eviction_purges_cache_entries(self):
        with SharedPartitionStore(cache_limit=1) as store:
            part = [1, 2, 3]
            store.put(part)
            store.put([4] * 100)  # evicts the first segment
            # Identity and digest entries into the dead segment are gone:
            # republishing must serialize again rather than hand out a
            # ref into unlinked memory.
            ref = store.put(part)
            assert store.stats.serializations == 3
            assert fetch_partition(ref) == part

    def test_hits_refresh_recency(self):
        with SharedPartitionStore(cache_limit=2) as store:
            hot = [0] * 50
            r_hot = store.put(hot)
            store.put([1] * 50)
            store.put(hot)  # identity hit — hot segment becomes MRU
            store.put([2] * 50)  # evicts the [1] segment, not hot's
            assert fetch_partition(r_hot) == hot

    def test_current_batch_is_pinned(self):
        # One oversized batch may exceed the limit transiently; its own
        # refs must never be evicted out from under the caller.
        with SharedPartitionStore(cache_limit=1) as store:
            refs = store.put_many([[i] * 30 for i in range(4)])
            for i, ref in enumerate(refs):
                assert fetch_partition(ref) == [i] * 30

    def test_unbounded_by_default(self):
        with SharedPartitionStore() as store:
            for i in range(8):
                store.put([i] * 10)
            assert store.live_segments == 8
            assert store.stats.segments_evicted == 0

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            SharedPartitionStore(cache_limit=0)
        with pytest.raises(ValueError):
            ProcessPoolEngine(paper_cluster(2, seed=0), cache_limit=-1)

    def test_engine_bounds_segments_across_jobs(self):
        engine = ProcessPoolEngine(
            paper_cluster(2, seed=0), max_workers=2, cache_limit=3
        )
        with engine:
            for i in range(8):
                parts = [[i * 100 + j] * 40 for j in range(2)]
                job = engine.run_job(SummingWorkload(), parts)
                assert job.merged_output == sum(map(sum, parts))
                assert engine._store.live_segments <= 3
            assert engine.dataplane_stats.segments_evicted >= 5


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def cluster(self):
        return paper_cluster(2, seed=0)

    def test_shm_and_eager_agree(self, cluster):
        parts = [[1, 2, 3], [4, 5], list(range(50))]
        with ProcessPoolEngine(cluster, max_workers=2) as shm_engine:
            shm_job = shm_engine.run_job(SummingWorkload(), parts)
            assert shm_engine.dataplane_stats.refs_issued == 3
        with ProcessPoolEngine(cluster, max_workers=2, use_shared_memory=False) as eager:
            eager_job = eager.run_job(SummingWorkload(), parts)
            assert eager.dataplane_stats.refs_issued == 0
        assert shm_job.merged_output == eager_job.merged_output == sum(map(sum, parts))

    def test_repeat_jobs_never_reserialize(self, cluster):
        parts = [[1] * 200, [2] * 200]
        with ProcessPoolEngine(cluster, max_workers=2) as engine:
            engine.run_job(SummingWorkload(), parts)
            engine.run_job(SummingWorkload(), parts)
            engine.profile_all_nodes(SummingWorkload(), parts[0])
            stats = engine.dataplane_stats
        assert stats.serializations == 2
        assert stats.identity_hits == 3
        assert stats.segments_created == 1

    def test_shutdown_unlinks_and_next_job_rebuilds(self, cluster):
        engine = ProcessPoolEngine(cluster, max_workers=1)
        engine.run_job(SummingWorkload(), [[1, 2]])
        seg = next(iter(engine._store._segments))
        engine.shutdown()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=seg, create=False)
        job = engine.run_job(SummingWorkload(), [[3, 4]])
        assert job.merged_output == 7
        engine.shutdown()

    def test_interpreter_exit_without_shutdown_is_silent(self):
        """Satellite check: a script that never calls shutdown() must not
        leak /dev/shm segments or print teardown noise (ImportError /
        TypeError / resource_tracker KeyError) at exit."""
        script = textwrap.dedent(
            """
            from tests.cluster.test_dataplane import SummingWorkload
            from repro.cluster.cluster import paper_cluster
            from repro.cluster.engines import ProcessPoolEngine

            engine = ProcessPoolEngine(paper_cluster(2, seed=0), max_workers=2)
            job = engine.run_job(SummingWorkload(), [[1, 2], [3]])
            assert job.merged_output == 6
            # no shutdown(): atexit + __del__ must clean up quietly
            """
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        for noise in ("Traceback", "ImportError", "TypeError", "KeyError", "leaked"):
            assert noise not in proc.stderr, proc.stderr
