"""Tests for fault injection and recovery re-execution."""

from typing import Sequence

import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.cluster.faults import FaultInjectingEngine
from repro.workloads.base import Workload, WorkloadResult


class SumWorkload(Workload):
    name = "sum"

    def run(self, records: Sequence[int]) -> WorkloadResult:
        return WorkloadResult(work_units=float(len(records)), output=sum(records))

    def merge(self, partials):
        return sum(p.output for p in partials)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster(4, seed=0)


PARTS = [[1] * 40, [2] * 40, [3] * 40, [4] * 40]


class TestNoFaults:
    def test_matches_simulated_engine(self, cluster):
        faulty = FaultInjectingEngine(cluster, fail_at={}, unit_rate=10.0)
        plain = SimulatedEngine(cluster, unit_rate=10.0)
        a = faulty.run_job(SumWorkload(), PARTS)
        b = plain.run_job(SumWorkload(), PARTS)
        assert a.makespan_s == pytest.approx(b.makespan_s)
        assert a.merged_output == b.merged_output


class TestRecovery:
    def test_answer_survives_failure(self, cluster):
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        assert job.merged_output == sum(sum(p) for p in PARTS)

    def test_failure_extends_makespan_on_critical_path(self, cluster):
        # All partitions on the fastest node; its failure forces the
        # whole job onto slower survivors, so the makespan must grow.
        assignment = [0, 0, 0, 0]
        healthy = FaultInjectingEngine(cluster, fail_at={}, unit_rate=10.0)
        faulty = FaultInjectingEngine(cluster, fail_at={0: 1.0}, unit_rate=10.0)
        h = healthy.run_job(SumWorkload(), PARTS, assignment=assignment)
        f = faulty.run_job(SumWorkload(), PARTS, assignment=assignment)
        assert f.makespan_s > h.makespan_s
        assert f.merged_output == h.merged_output

    def test_losing_slowest_node_can_even_help(self, cluster):
        """Counter-intuitive but correct: when the 1x node dies early,
        its partition re-runs on the 4x node and the makespan drops —
        the load imbalance the Het-Aware planner removes up front."""
        healthy = FaultInjectingEngine(cluster, fail_at={}, unit_rate=10.0)
        faulty = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        h = healthy.run_job(SumWorkload(), PARTS)
        f = faulty.run_job(SumWorkload(), PARTS)
        assert f.makespan_s < h.makespan_s

    def test_wasted_energy_charged(self, cluster):
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        assert FaultInjectingEngine.wasted_energy_j(job) > 0

    def test_failure_before_start_loses_no_energy(self, cluster):
        # Node 3 dies at t=0: its partition never starts there.
        engine = FaultInjectingEngine(cluster, fail_at={3: 0.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        assert FaultInjectingEngine.wasted_energy_j(job) == 0.0
        assert job.merged_output == sum(sum(p) for p in PARTS)

    def test_recovery_lands_on_survivor(self, cluster):
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        recovered = [
            t for t in job.tasks if t.partition_id == 3 and not t.stats.get("wasted")
        ]
        assert len(recovered) == 1
        assert recovered[0].node_id != 3
        assert recovered[0].start_s >= 1.0 + engine.detection_latency_s

    def test_multiple_failures(self, cluster):
        engine = FaultInjectingEngine(
            cluster, fail_at={2: 0.5, 3: 1.0}, unit_rate=10.0
        )
        job = engine.run_job(SumWorkload(), PARTS)
        assert job.merged_output == sum(sum(p) for p in PARTS)
        used = {t.node_id for t in job.tasks if not t.stats.get("wasted")}
        assert used <= {0, 1}


class TestValidation:
    def test_all_nodes_failing_rejected(self, cluster):
        with pytest.raises(ValueError):
            FaultInjectingEngine(cluster, fail_at={0: 1, 1: 1, 2: 1, 3: 1})

    def test_unknown_node_rejected(self, cluster):
        with pytest.raises(ValueError):
            FaultInjectingEngine(cluster, fail_at={9: 1.0})

    def test_negative_times_rejected(self, cluster):
        with pytest.raises(ValueError):
            FaultInjectingEngine(cluster, fail_at={0: -1.0})
        with pytest.raises(ValueError):
            FaultInjectingEngine(cluster, detection_latency_s=-1.0)


class TestTelemetry:
    """Observability coverage: wasted energy accounting, retry charging,
    and the fault.injected / fault.retried spans + counters."""

    @pytest.fixture(autouse=True)
    def _obs(self):
        import repro.obs as obs

        obs.disable()
        obs.reset()
        obs.enable()
        yield obs
        obs.disable()
        obs.reset()

    def test_wasted_energy_matches_wasted_tasks(self, cluster):
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        wasted_tasks = [t for t in job.tasks if t.stats.get("wasted")]
        assert wasted_tasks
        assert FaultInjectingEngine.wasted_energy_j(job) == pytest.approx(
            sum(t.energy_j for t in wasted_tasks)
        )
        # Wasted runs still burn real joules inside the job totals.
        assert job.total_energy_j >= sum(t.energy_j for t in wasted_tasks)

    def test_retry_is_charged_to_the_recovery_node(self, cluster):
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        retried = [
            t for t in job.tasks if t.partition_id == 3 and not t.stats.get("wasted")
        ]
        assert len(retried) == 1
        assert retried[0].energy_j > 0
        assert retried[0].node_id != 3

    def test_fault_spans_and_counters(self, cluster, _obs):
        obs = _obs
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        job = engine.run_job(SumWorkload(), PARTS)
        spans = obs.get_tracer().finished_spans()
        names = [s["name"] for s in spans]

        injected = [s for s in spans if s["name"] == "fault.injected"]
        retried = [s for s in spans if s["name"] == "fault.retried"]
        assert len(injected) == 1
        assert injected[0]["attrs"]["node_id"] == 3
        assert injected[0]["duration_s"] == 0.0
        assert len(retried) == 1
        assert retried[0]["attrs"]["partition_id"] == 3
        assert retried[0]["attrs"]["node_id"] != 3

        assert "engine.run_job" in names
        assert names.count("task.execute") == len(job.tasks)

        snap = obs.metrics_snapshot()
        assert snap['repro_fault_injected_total{node="3"}']["value"] == 1
        retried_total = sum(
            v["value"]
            for k, v in snap.items()
            if k.startswith("repro_fault_retried_total")
        )
        assert retried_total == 1
        assert snap["repro_fault_wasted_energy_joules_total"][
            "value"
        ] == pytest.approx(FaultInjectingEngine.wasted_energy_j(job))

    def test_no_fault_spans_without_failures(self, cluster, _obs):
        obs = _obs
        engine = FaultInjectingEngine(cluster, fail_at={}, unit_rate=10.0)
        engine.run_job(SumWorkload(), PARTS)
        names = {s["name"] for s in obs.get_tracer().finished_spans()}
        assert "fault.injected" not in names
        assert "fault.retried" not in names

    def test_disabled_obs_collects_nothing(self, cluster, _obs):
        obs = _obs
        obs.disable()
        engine = FaultInjectingEngine(cluster, fail_at={3: 1.0}, unit_rate=10.0)
        engine.run_job(SumWorkload(), PARTS)
        assert obs.get_tracer().finished_spans() == []
        assert obs.metrics_snapshot() == {}
