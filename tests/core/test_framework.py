"""Integration-grade unit tests for the ParetoPartitioner framework."""

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.core.framework import ParetoPartitioner
from repro.core.strategies import HET_AWARE, RANDOM, STRATIFIED, Strategy
from repro.data.datasets import load_dataset
from repro.workloads.compression.distributed import CompressionWorkload
from repro.workloads.fpm.apriori import AprioriWorkload


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("rcv1", size_scale=0.3, seed=0)


@pytest.fixture(scope="module")
def pp(dataset):
    cluster = paper_cluster(4, seed=0)
    engine = SimulatedEngine(cluster, unit_rate=5e4)
    return ParetoPartitioner(engine, kind=dataset.kind, num_strata=6, seed=0)


@pytest.fixture(scope="module")
def workload():
    return AprioriWorkload(min_support=0.15, max_len=2)


@pytest.fixture(scope="module")
def prepared(pp, dataset, workload):
    return pp.prepare(dataset.items, workload)


class TestPrepare:
    def test_prepared_contents(self, prepared, dataset):
        assert prepared.num_items == len(dataset)
        assert prepared.profiling.num_nodes == 4
        assert prepared.stratification.num_items == len(dataset)

    def test_models_reflect_speed_order(self, prepared):
        slopes = [m.slope for m in prepared.profiling.models]
        # Speeds 4,3,2,1: slope must increase with node index.
        assert slopes == sorted(slopes)


class TestPlanning:
    def test_stratified_equal_sizes(self, pp, prepared):
        plan = pp.plan(prepared, STRATIFIED)
        assert plan.sizes.max() - plan.sizes.min() <= 1

    def test_het_aware_favours_fast_nodes(self, pp, prepared):
        plan = pp.plan(prepared, HET_AWARE)
        assert plan.sizes[0] > plan.sizes[3]

    def test_auto_min_items_respected(self, pp, prepared):
        plan = pp.plan(prepared, Strategy(name="x", alpha=0.9))
        floor = min(prepared.profiling.sample_sizes)
        for s in plan.sizes:
            assert s == 0 or s >= min(floor, prepared.num_items // 4) - 1

    def test_placement_matches_plan_sizes(self, pp, prepared):
        for strategy in (STRATIFIED, HET_AWARE, RANDOM):
            plan = pp.plan(prepared, strategy)
            parts = pp.place(prepared, strategy, plan)
            assert [p.size for p in parts] == plan.sizes.tolist()
            union = np.concatenate(parts)
            assert sorted(union.tolist()) == list(range(prepared.num_items))


class TestExecute:
    def test_run_report_fields(self, pp, dataset, workload, prepared):
        report = pp.execute(dataset.items, workload, STRATIFIED, prepared=prepared)
        assert report.makespan_s > 0
        assert report.total_energy_j > report.total_dirty_energy_j >= 0
        assert report.strategy is STRATIFIED

    def test_kv_staging_round_trips(self, pp, dataset, workload, prepared):
        report = pp.execute(dataset.items, workload, STRATIFIED, prepared=prepared)
        assert report.kv_round_trips > 0

    def test_kv_staging_can_be_disabled(self, dataset, workload):
        cluster = paper_cluster(4, seed=0)
        engine = SimulatedEngine(cluster, unit_rate=5e4)
        pp2 = ParetoPartitioner(
            engine, kind=dataset.kind, num_strata=6, stage_via_kv=False, seed=0
        )
        report = pp2.execute(dataset.items, workload, STRATIFIED)
        assert report.kv_round_trips == 0

    def test_prepare_reused_across_strategies(self, pp, dataset, workload, prepared):
        r1 = pp.execute(dataset.items, workload, STRATIFIED, prepared=prepared)
        r2 = pp.execute(dataset.items, workload, HET_AWARE, prepared=prepared)
        assert r1.makespan_s != r2.makespan_s  # different plans executed

    def test_without_prepared_runs_full_pipeline(self, pp, dataset, workload):
        report = pp.execute(dataset.items, workload, STRATIFIED)
        assert report.makespan_s > 0


class TestExecuteFpm:
    def test_two_phase_accounting(self, pp, dataset, workload, prepared):
        report = pp.execute_fpm(dataset.items, workload, STRATIFIED, prepared=prepared)
        assert report.extra["local_makespan_s"] + report.extra[
            "count_makespan_s"
        ] == pytest.approx(report.makespan_s)
        assert report.extra["false_positives"] >= 0
        assert report.extra["candidates"] >= report.extra["frequent"]

    def test_fpm_result_is_exact(self, pp, dataset, workload, prepared):
        """Distributed mining through the whole framework equals central
        mining — placement must not change the answer."""
        from repro.workloads.fpm.apriori import AprioriMiner

        central = AprioriMiner(min_support=0.15, max_len=2).mine(dataset.items).counts
        for strategy in (STRATIFIED, HET_AWARE):
            report = pp.execute_fpm(dataset.items, workload, strategy, prepared=prepared)
            assert report.merged_output == central

    def test_rejects_non_mining_workload(self, pp, dataset, prepared):
        with pytest.raises(TypeError):
            pp.execute_fpm(
                dataset.items, CompressionWorkload("lz77"), STRATIFIED, prepared=prepared
            )


class TestCompressionPath:
    def test_similar_placement_end_to_end(self):
        ds = load_dataset("uk", size_scale=0.2, seed=0)
        cluster = paper_cluster(4, seed=0)
        pp = ParetoPartitioner(
            SimulatedEngine(cluster, unit_rate=5e3),
            kind="graph",
            num_strata=6,
            seed=0,
        )
        wl = CompressionWorkload("webgraph")
        report = pp.execute(ds.items, wl, STRATIFIED.with_placement("similar"))
        assert report.merged_output.ratio > 1.0


class TestTreePath:
    def test_tree_items_survive_kv_staging(self):
        ds = load_dataset("swissprot", size_scale=0.15, seed=0)
        cluster = paper_cluster(4, seed=0)
        pp = ParetoPartitioner(
            SimulatedEngine(cluster, unit_rate=5e4), kind="tree", num_strata=6, seed=0
        )
        from repro.workloads.fpm.treemining import TreeMiningWorkload

        wl = TreeMiningWorkload(min_support=0.15, max_len=1)
        report = pp.execute_fpm(ds.items, wl, STRATIFIED)
        assert report.kv_round_trips > 0
        assert report.extra["frequent"] > 0
