"""Property-based robustness tests for the LP optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heterogeneity import LinearTimeModel
from repro.core.optimizer import ParetoOptimizer, predict_makespan

model_strategy = st.builds(
    LinearTimeModel,
    slope=st.floats(min_value=0.001, max_value=2.0),
    intercept=st.floats(min_value=0.0, max_value=5.0),
)

instance_strategy = st.integers(min_value=2, max_value=8).flatmap(
    lambda p: st.tuples(
        st.lists(model_strategy, min_size=p, max_size=p),
        st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=p, max_size=p
        ),
        st.integers(min_value=p, max_value=5000),
        st.sampled_from([1.0, 0.999, 0.99, 0.9, 0.5, 0.0]),
    )
)


class TestLPProperties:
    @given(instance_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sizes_always_partition_total(self, instance):
        models, coeffs, total, alpha = instance
        plan = ParetoOptimizer(models=models, dirty_coeffs=coeffs).solve(total, alpha)
        assert plan.sizes.sum() == total
        assert (plan.sizes >= 0).all()

    @given(instance_strategy)
    @settings(max_examples=60, deadline=None)
    def test_alpha_one_never_worse_than_equal_split(self, instance):
        models, coeffs, total, _alpha = instance
        opt = ParetoOptimizer(models=models, dirty_coeffs=coeffs)
        het = opt.solve(total, 1.0)
        equal = opt.equal_split_plan(total)
        # Integer rounding can cost at most one item's worth of slack.
        slack = max(m.slope for m in models) * 2 + 1e-6
        assert het.predicted_makespan_s <= equal.predicted_makespan_s + slack

    @given(instance_strategy)
    @settings(max_examples=60, deadline=None)
    def test_alpha_zero_never_dirtier_than_equal_split(self, instance):
        models, coeffs, total, _alpha = instance
        opt = ParetoOptimizer(models=models, dirty_coeffs=coeffs)
        green = opt.solve(total, 0.0)
        equal = opt.equal_split_plan(total)
        slack = max(
            k * m.slope for k, m in zip(coeffs, models)
        ) * 2 + 1e-6
        assert green.predicted_dirty_energy_j <= equal.predicted_dirty_energy_j + slack

    @given(instance_strategy, st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_min_items_semicontinuous(self, instance, min_items):
        models, coeffs, total, alpha = instance
        opt = ParetoOptimizer(models=models, dirty_coeffs=coeffs)
        plan = opt.solve(total, alpha, min_items=min_items)
        assert plan.sizes.sum() == total
        for s in plan.sizes:
            # Either idle, at/above the floor (±1 from rounding), or the
            # degenerate everything-on-one-node case.
            assert s == 0 or s >= min_items - 1 or s == total

    @given(instance_strategy)
    @settings(max_examples=40, deadline=None)
    def test_predictions_match_sizes(self, instance):
        models, coeffs, total, alpha = instance
        opt = ParetoOptimizer(models=models, dirty_coeffs=coeffs)
        plan = opt.solve(total, alpha)
        assert plan.predicted_makespan_s == pytest.approx(
            predict_makespan(models, plan.sizes)
        )

    @given(instance_strategy)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, instance):
        models, coeffs, total, alpha = instance
        opt = ParetoOptimizer(models=models, dirty_coeffs=coeffs)
        a = opt.solve(total, alpha)
        b = opt.solve(total, alpha)
        assert np.array_equal(a.sizes, b.sizes)
