"""Unit tests for the progressive-sampling heterogeneity estimator."""

from typing import Sequence

import numpy as np
import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.core.heterogeneity import (
    PAPER_FRACTIONS,
    SMALL_DATA_FRACTIONS,
    LinearTimeModel,
    PolynomialTimeModel,
    ProgressiveSampler,
    auto_fractions,
)
from repro.stratify.stratifier import Stratification
from repro.workloads.base import Workload, WorkloadResult


class LinearWorkload(Workload):
    """Work exactly equals record count: the engine's runtime becomes
    a perfectly linear function of sample size."""

    name = "linear"

    def run(self, records: Sequence) -> WorkloadResult:
        return WorkloadResult(work_units=float(len(records)), output=None)


class QuadraticWorkload(Workload):
    name = "quadratic"

    def run(self, records: Sequence) -> WorkloadResult:
        return WorkloadResult(work_units=float(len(records)) ** 2 / 10.0, output=None)


def flat_stratification(n):
    return Stratification(labels=np.zeros(n, dtype=np.int64), strata=[np.arange(n)])


class TestLinearTimeModel:
    def test_fit_recovers_line(self):
        model = LinearTimeModel.fit([10, 20, 40], [1.5, 2.5, 4.5])
        assert model.slope == pytest.approx(0.1)
        assert model.intercept == pytest.approx(0.5)

    def test_predict(self):
        model = LinearTimeModel(slope=0.1, intercept=1.0)
        assert model.predict(100) == pytest.approx(11.0)

    def test_predict_clamps_at_zero(self):
        model = LinearTimeModel(slope=0.0, intercept=0.0)
        assert model.predict(10) == 0.0

    def test_negative_slope_clamped_in_fit(self):
        model = LinearTimeModel.fit([10, 20, 30], [5.0, 4.0, 3.0])
        assert model.slope == 0.0
        assert model.intercept == pytest.approx(4.0)  # falls back to mean

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            LinearTimeModel(slope=-1.0, intercept=0.0)
        with pytest.raises(ValueError):
            LinearTimeModel(slope=1.0, intercept=0.0).predict(-5)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            LinearTimeModel.fit([1], [1.0])


class TestPolynomialTimeModel:
    def test_fit_quadratic(self):
        x = [1, 2, 3, 4, 5]
        y = [xi**2 for xi in x]
        model = PolynomialTimeModel.fit(x, y, degree=2)
        assert model.predict(6) == pytest.approx(36.0, rel=1e-6)
        assert model.degree == 2

    def test_needs_more_points_than_degree(self):
        with pytest.raises(ValueError):
            PolynomialTimeModel.fit([1, 2], [1.0, 2.0], degree=2)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialTimeModel.fit([1, 2, 3], [1, 2, 3], degree=0)

    def test_overfits_with_few_samples(self):
        """The paper's Section III-D argument: high-degree fits on few
        progressive samples extrapolate badly versus a linear fit."""
        rng = np.random.default_rng(0)
        x = np.array([10.0, 20.0, 40.0, 80.0, 160.0])
        true = 0.05 * x + 1.0
        y = true + rng.normal(0, 0.3, size=x.size)
        linear = LinearTimeModel.fit(x, y)
        poly = PolynomialTimeModel.fit(x, y, degree=4)
        target = 0.05 * 2000.0 + 1.0
        assert abs(linear.predict(2000.0) - target) < abs(
            poly.predict(2000.0) - target
        )


class TestAutoFractions:
    def test_large_data_uses_paper_schedule(self):
        assert auto_fractions(100_000) == PAPER_FRACTIONS

    def test_small_data_uses_wide_schedule(self):
        assert auto_fractions(1000) == SMALL_DATA_FRACTIONS

    def test_invalid(self):
        with pytest.raises(ValueError):
            auto_fractions(0)


class TestProgressiveSampler:
    @pytest.fixture(scope="class")
    def engine(self):
        return SimulatedEngine(paper_cluster(4, seed=0), unit_rate=100.0)

    def test_recovers_speed_ratios(self, engine):
        """Per-node slopes must mirror the emulated speed factors."""
        items = list(range(2000))
        sampler = ProgressiveSampler(engine=engine, seed=0)
        report = sampler.profile(LinearWorkload(), items, flat_stratification(2000))
        slopes = np.array([m.slope for m in report.models])
        # speeds 4,3,2,1 → slopes proportional to 1/4, 1/3, 1/2, 1.
        ratios = slopes / slopes[3]
        assert np.allclose(ratios, [0.25, 1 / 3, 0.5, 1.0], rtol=0.05)

    def test_linear_fit_is_good(self, engine):
        items = list(range(1000))
        report = ProgressiveSampler(engine=engine, seed=0).profile(
            LinearWorkload(), items, flat_stratification(1000)
        )
        assert all(r2 > 0.99 for r2 in report.r_squared)

    def test_sample_sizes_ascending_distinct(self, engine):
        items = list(range(500))
        report = ProgressiveSampler(engine=engine, seed=0).profile(
            LinearWorkload(), items, flat_stratification(500)
        )
        assert report.sample_sizes == sorted(set(report.sample_sizes))
        assert len(report.sample_sizes) >= 2

    def test_one_model_per_node(self, engine):
        items = list(range(300))
        report = ProgressiveSampler(engine=engine, seed=0).profile(
            LinearWorkload(), items, flat_stratification(300)
        )
        assert report.num_nodes == 4
        assert len(report.times) == 4

    def test_tiny_dataset_still_profiles(self, engine):
        items = list(range(10))
        report = ProgressiveSampler(engine=engine, seed=0).profile(
            LinearWorkload(), items, flat_stratification(10)
        )
        assert len(report.sample_sizes) >= 2

    def test_empty_dataset_rejected(self, engine):
        with pytest.raises(ValueError):
            ProgressiveSampler(engine=engine).profile(
                LinearWorkload(), [], flat_stratification(1)
            )

    def test_invalid_fractions(self, engine):
        with pytest.raises(ValueError):
            ProgressiveSampler(engine=engine, fractions=(0.5, 0.1))
        with pytest.raises(ValueError):
            ProgressiveSampler(engine=engine, fractions=(0.1,))
        with pytest.raises(ValueError):
            ProgressiveSampler(engine=engine, fractions=(0.0, 0.1))

    def test_nonlinear_workload_lower_r2(self, engine):
        items = list(range(1000))
        lin = ProgressiveSampler(engine=engine, seed=0).profile(
            LinearWorkload(), items, flat_stratification(1000)
        )
        quad = ProgressiveSampler(engine=engine, seed=0).profile(
            QuadraticWorkload(), items, flat_stratification(1000)
        )
        assert min(quad.r_squared) < min(lin.r_squared) + 1e-9
