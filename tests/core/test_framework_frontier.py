"""Tests for ParetoPartitioner.measure_frontier and error paths."""

import pytest

from repro.cluster.cluster import paper_cluster
from repro.cluster.engines import SimulatedEngine
from repro.core.framework import ParetoPartitioner
from repro.data.datasets import load_dataset
from repro.workloads.compression.distributed import CompressionWorkload
from repro.workloads.fpm.apriori import AprioriWorkload


@pytest.fixture(scope="module")
def pp_and_items():
    dataset = load_dataset("rcv1", size_scale=0.4, seed=0)
    pp = ParetoPartitioner(
        SimulatedEngine(paper_cluster(4, seed=0)),
        kind="text",
        num_strata=6,
        stage_via_kv=False,
        seed=0,
    )
    return pp, dataset.items


class TestMeasureFrontier:
    def test_one_report_per_alpha(self, pp_and_items):
        pp, items = pp_and_items
        workload = AprioriWorkload(min_support=0.15, max_len=2)
        sweep = pp.measure_frontier(items, workload, alphas=(1.0, 0.99, 0.0))
        assert [a for a, _ in sweep] == [1.0, 0.99, 0.0]
        assert all(r.makespan_s > 0 for _, r in sweep)

    def test_mining_uses_two_phases(self, pp_and_items):
        pp, items = pp_and_items
        workload = AprioriWorkload(min_support=0.15, max_len=2)
        sweep = pp.measure_frontier(items, workload, alphas=(1.0,))
        _, report = sweep[0]
        assert "false_positives" in report.extra

    def test_alpha_extremes_ordered(self, pp_and_items):
        pp, items = pp_and_items
        workload = AprioriWorkload(min_support=0.15, max_len=2)
        prepared = pp.prepare(items, workload)
        sweep = pp.measure_frontier(
            items, workload, alphas=(1.0, 0.0), prepared=prepared
        )
        fast = sweep[0][1]
        green = sweep[1][1]
        assert fast.makespan_s <= green.makespan_s
        assert green.total_dirty_energy_j <= fast.total_dirty_energy_j

    def test_compression_single_phase(self):
        dataset = load_dataset("uk", size_scale=0.2, seed=0)
        pp = ParetoPartitioner(
            SimulatedEngine(paper_cluster(4, seed=0), unit_rate=5e3),
            kind="graph",
            num_strata=6,
            stage_via_kv=False,
            seed=0,
        )
        sweep = pp.measure_frontier(
            dataset.items,
            CompressionWorkload("webgraph"),
            alphas=(1.0, 0.0),
            placement="similar",
        )
        assert all(not r.extra for _, r in sweep)
        assert all(r.merged_output.ratio > 1.0 for _, r in sweep)

    def test_empty_alphas_rejected(self, pp_and_items):
        pp, items = pp_and_items
        with pytest.raises(ValueError):
            pp.measure_frontier(
                items, AprioriWorkload(min_support=0.2), alphas=()
            )
