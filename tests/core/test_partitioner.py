"""Unit and property tests for the data partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import (
    equal_sizes,
    random_partitions,
    representative_partitions,
    round_robin_partitions,
    similar_partitions,
)
from repro.stratify.stratifier import Stratification


def make_stratification(stratum_sizes, seed=0):
    """A stratification with the given stratum sizes over shuffled ids."""
    n = sum(stratum_sizes)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    strata = []
    labels = np.empty(n, dtype=np.int64)
    offset = 0
    for s, size in enumerate(stratum_sizes):
        members = np.sort(perm[offset : offset + size])
        strata.append(members)
        labels[members] = s
        offset += size
    return Stratification(labels=labels, strata=strata)


def assert_exact_partition(parts, n, sizes):
    allitems = np.concatenate([p for p in parts]) if parts else np.array([])
    assert sorted(allitems.tolist()) == list(range(n))
    assert [p.size for p in parts] == list(sizes)


class TestEqualSizes:
    def test_divisible(self):
        assert equal_sizes(100, 4).tolist() == [25, 25, 25, 25]

    def test_remainder_first(self):
        assert equal_sizes(10, 3).tolist() == [4, 3, 3]

    def test_zero_items(self):
        assert equal_sizes(0, 3).tolist() == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            equal_sizes(10, 0)
        with pytest.raises(ValueError):
            equal_sizes(-1, 2)


class TestRepresentative:
    def test_exact_partition(self):
        strat = make_stratification([40, 30, 30])
        sizes = [50, 30, 20]
        parts = representative_partitions(strat, sizes, np.random.default_rng(0))
        assert_exact_partition(parts, 100, sizes)

    def test_stratum_proportions_preserved(self):
        strat = make_stratification([60, 40])
        sizes = [50, 50]
        parts = representative_partitions(strat, sizes, np.random.default_rng(1))
        for part in parts:
            frac_stratum0 = np.mean(strat.labels[part] == 0)
            assert abs(frac_stratum0 - 0.6) < 0.1

    def test_unequal_sizes_still_representative(self):
        strat = make_stratification([100, 100])
        sizes = [150, 30, 20]
        parts = representative_partitions(strat, sizes, np.random.default_rng(2))
        assert_exact_partition(parts, 200, sizes)
        big = parts[0]
        assert abs(np.mean(strat.labels[big] == 0) - 0.5) < 0.1

    def test_zero_size_partitions_allowed(self):
        strat = make_stratification([10, 10])
        parts = representative_partitions(strat, [0, 20, 0], np.random.default_rng(0))
        assert_exact_partition(parts, 20, [0, 20, 0])

    def test_wrong_total_rejected(self):
        strat = make_stratification([10])
        with pytest.raises(ValueError):
            representative_partitions(strat, [4, 4], np.random.default_rng(0))

    def test_negative_size_rejected(self):
        strat = make_stratification([10])
        with pytest.raises(ValueError):
            representative_partitions(strat, [-2, 12], np.random.default_rng(0))

    @given(
        st.lists(st.integers(min_value=5, max_value=40), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_partition_property(self, stratum_sizes, p):
        n = sum(stratum_sizes)
        strat = make_stratification(stratum_sizes, seed=1)
        sizes = equal_sizes(n, p)
        parts = representative_partitions(strat, sizes, np.random.default_rng(3))
        assert_exact_partition(parts, n, sizes.tolist())


class TestSimilar:
    def test_exact_partition(self):
        strat = make_stratification([25, 25, 50])
        sizes = [40, 30, 30]
        parts = similar_partitions(strat, sizes)
        assert_exact_partition(parts, 100, sizes)

    def test_keeps_strata_contiguous(self):
        strat = make_stratification([50, 50])
        parts = similar_partitions(strat, [50, 50])
        # Perfect alignment: each partition is exactly one stratum.
        assert set(strat.labels[parts[0]]) == {0}
        assert set(strat.labels[parts[1]]) == {1}

    def test_minimizes_strata_per_partition(self):
        strat = make_stratification([30, 30, 40])
        parts = similar_partitions(strat, [25, 25, 25, 25])
        # Chunking a stratum-ordered list: each partition spans at most
        # two strata here (a stratum boundary can split a chunk).
        for part in parts:
            assert len(set(strat.labels[part].tolist())) <= 2

    def test_wrong_total_rejected(self):
        strat = make_stratification([10])
        with pytest.raises(ValueError):
            similar_partitions(strat, [5])

    def test_zero_size_partitions(self):
        strat = make_stratification([10, 10])
        parts = similar_partitions(strat, [0, 20, 0])
        assert_exact_partition(parts, 20, [0, 20, 0])

    @given(
        st.lists(st.integers(min_value=3, max_value=30), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_partition_property(self, stratum_sizes, p):
        n = sum(stratum_sizes)
        strat = make_stratification(stratum_sizes, seed=2)
        sizes = equal_sizes(n, p)
        parts = similar_partitions(strat, sizes)
        assert_exact_partition(parts, n, sizes.tolist())


class TestBaselines:
    def test_random_exact_partition(self):
        parts = random_partitions(50, [20, 20, 10], np.random.default_rng(4))
        assert_exact_partition(parts, 50, [20, 20, 10])

    def test_random_differs_from_sorted(self):
        parts = random_partitions(100, [50, 50], np.random.default_rng(5))
        assert parts[0].tolist() != list(range(50))

    def test_round_robin_deals_in_turn(self):
        parts = round_robin_partitions(10, 3)
        assert parts[0].tolist() == [0, 3, 6, 9]
        assert parts[1].tolist() == [1, 4, 7]
        assert parts[2].tolist() == [2, 5, 8]

    def test_round_robin_exact_partition(self):
        parts = round_robin_partitions(17, 4)
        allitems = np.concatenate(parts)
        assert sorted(allitems.tolist()) == list(range(17))

    def test_round_robin_validation(self):
        with pytest.raises(ValueError):
            round_robin_partitions(10, 0)
