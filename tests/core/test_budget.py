"""Unit tests for the carbon-budget planner."""

import pytest

from repro.core.budget import BudgetInfeasibleError, CarbonBudgetPlanner
from repro.core.heterogeneity import LinearTimeModel
from repro.core.optimizer import ParetoOptimizer


@pytest.fixture()
def optimizer():
    return ParetoOptimizer(
        models=[
            LinearTimeModel(slope=1.0 / s, intercept=0.2) for s in (4.0, 3.0, 2.0, 1.0)
        ],
        dirty_coeffs=[300.0, 200.0, 50.0, 0.0],
    )


@pytest.fixture()
def planner(optimizer):
    return CarbonBudgetPlanner(optimizer)


class TestPlanning:
    def test_loose_budget_returns_fastest(self, planner, optimizer):
        fastest = optimizer.solve(1000, 1.0)
        plan = planner.plan(1000, max_dirty_energy_j=1e12)
        assert plan.predicted_makespan_s == pytest.approx(
            fastest.predicted_makespan_s
        )

    def test_plan_respects_budget(self, planner, optimizer):
        fastest = optimizer.solve(1000, 1.0)
        budget = 0.5 * fastest.predicted_dirty_energy_j
        plan = planner.plan(1000, max_dirty_energy_j=budget)
        assert plan.predicted_dirty_energy_j <= budget * 1.001

    def test_tighter_budget_never_faster(self, planner, optimizer):
        fastest = optimizer.solve(1000, 1.0)
        loose = planner.plan(1000, 0.8 * fastest.predicted_dirty_energy_j)
        tight = planner.plan(1000, 0.2 * fastest.predicted_dirty_energy_j)
        assert tight.predicted_dirty_energy_j <= loose.predicted_dirty_energy_j
        assert tight.predicted_makespan_s >= loose.predicted_makespan_s - 1e-9

    def test_infeasible_budget_raises(self, optimizer):
        # Make every node dirty so the floor is positive.
        dirty_opt = ParetoOptimizer(
            models=list(optimizer.models), dirty_coeffs=[300.0, 200.0, 100.0, 50.0]
        )
        planner = CarbonBudgetPlanner(dirty_opt)
        greenest = dirty_opt.solve(1000, 0.0)
        with pytest.raises(BudgetInfeasibleError):
            planner.plan(1000, 0.5 * greenest.predicted_dirty_energy_j)

    def test_budget_at_floor_is_feasible(self, planner, optimizer):
        greenest = optimizer.solve(1000, 0.0)
        budget = max(greenest.predicted_dirty_energy_j, 1e-6) * 1.01 + 1.0
        plan = planner.plan(1000, budget)
        assert plan.predicted_dirty_energy_j <= budget

    def test_invalid_budget(self, planner):
        with pytest.raises(ValueError):
            planner.plan(1000, 0.0)
        with pytest.raises(ValueError):
            planner.plan(1000, -5.0)

    def test_min_items_forwarded(self, planner, optimizer):
        fastest = optimizer.solve(1000, 1.0)
        plan = planner.plan(
            1000, 0.6 * fastest.predicted_dirty_energy_j, min_items=100
        )
        for s in plan.sizes:
            assert s == 0 or s >= 99


class TestHeadroom:
    def test_headroom_fraction(self, planner, optimizer):
        plan = optimizer.solve(1000, 1.0)
        budget = 2.0 * plan.predicted_dirty_energy_j
        assert planner.headroom(plan, budget) == pytest.approx(0.5)

    def test_over_budget_negative(self, planner, optimizer):
        plan = optimizer.solve(1000, 1.0)
        assert planner.headroom(plan, 0.5 * plan.predicted_dirty_energy_j) < 0

    def test_invalid(self, planner, optimizer):
        plan = optimizer.solve(1000, 1.0)
        with pytest.raises(ValueError):
            planner.headroom(plan, 0.0)
