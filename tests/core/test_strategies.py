"""Unit tests for the named strategies."""

import pytest

from repro.core.strategies import (
    ALPHA_COMPRESSION,
    ALPHA_FPM,
    HET_AWARE,
    PAPER_ALPHA_COMPRESSION,
    PAPER_ALPHA_FPM,
    RANDOM,
    ROUND_ROBIN,
    STRATIFIED,
    Strategy,
    het_energy_aware,
)


class TestPresets:
    def test_stratified_is_not_het_aware(self):
        assert STRATIFIED.alpha is None
        assert not STRATIFIED.het_aware

    def test_het_aware_alpha_one(self):
        assert HET_AWARE.alpha == 1.0
        assert HET_AWARE.het_aware

    def test_het_energy_aware_default(self):
        s = het_energy_aware()
        assert s.alpha == ALPHA_FPM
        assert s.name == "Het-Energy-Aware"

    def test_het_energy_aware_custom_alpha(self):
        assert het_energy_aware(ALPHA_COMPRESSION).alpha == ALPHA_COMPRESSION

    def test_paper_alphas_recorded(self):
        assert PAPER_ALPHA_FPM == 0.999
        assert PAPER_ALPHA_COMPRESSION == 0.995

    def test_baselines_placements(self):
        assert RANDOM.placement == "random"
        assert ROUND_ROBIN.placement == "round-robin"


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            Strategy(name="x", alpha=1.5)
        with pytest.raises(ValueError):
            Strategy(name="x", alpha=-0.1)

    def test_bad_placement(self):
        with pytest.raises(ValueError):
            Strategy(name="x", alpha=None, placement="hashmod")

    def test_with_placement(self):
        s = HET_AWARE.with_placement("similar")
        assert s.placement == "similar"
        assert s.alpha == HET_AWARE.alpha
        assert HET_AWARE.placement == "representative"  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            STRATIFIED.alpha = 0.5  # type: ignore[misc]
