"""Unit tests for Pareto dominance, frontiers and sweeps."""

import pytest

from repro.core.heterogeneity import LinearTimeModel
from repro.core.optimizer import ParetoOptimizer
from repro.core.pareto import (
    ParetoPoint,
    frontier_sweep,
    hypervolume_2d,
    is_pareto_efficient,
    pareto_dominates,
    pareto_front,
)


class TestDominance:
    def test_strict_dominance(self):
        assert pareto_dominates([1, 1], [2, 2])

    def test_weak_dominance_one_axis(self):
        assert pareto_dominates([1, 2], [2, 2])

    def test_equal_points_do_not_dominate(self):
        assert not pareto_dominates([1, 1], [1, 1])

    def test_tradeoff_points_incomparable(self):
        assert not pareto_dominates([1, 3], [3, 1])
        assert not pareto_dominates([3, 1], [1, 3])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pareto_dominates([1], [1, 2])


class TestFront:
    def test_extracts_non_dominated(self):
        points = [[1, 5], [2, 3], [4, 1], [3, 3], [5, 5]]
        assert pareto_front(points) == [0, 1, 2]

    def test_single_point(self):
        assert pareto_front([[1, 1]]) == [0]

    def test_duplicates_all_kept(self):
        # Equal points don't dominate each other.
        assert pareto_front([[1, 1], [1, 1]]) == [0, 1]

    def test_is_pareto_efficient(self):
        others = [[1, 5], [5, 1]]
        assert is_pareto_efficient([2, 2], others)
        assert not is_pareto_efficient([2, 6], others)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([[1, 1]], reference=[3, 3]) == pytest.approx(4.0)

    def test_two_point_staircase(self):
        hv = hypervolume_2d([[1, 2], [2, 1]], reference=[3, 3])
        assert hv == pytest.approx(2.0 + 1.0)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([[5, 5]], reference=[3, 3]) == 0.0

    def test_dominated_points_do_not_add(self):
        base = hypervolume_2d([[1, 1]], reference=[4, 4])
        extra = hypervolume_2d([[1, 1], [2, 2]], reference=[4, 4])
        assert base == pytest.approx(extra)


class TestFrontierSweep:
    @pytest.fixture()
    def optimizer(self):
        return ParetoOptimizer(
            models=[
                LinearTimeModel(slope=1.0 / s, intercept=0.1) for s in (4.0, 2.0, 1.0)
            ],
            dirty_coeffs=[300.0, 100.0, 0.0],
        )

    def test_one_point_per_alpha(self, optimizer):
        sweep = frontier_sweep(optimizer, 500, alphas=(1.0, 0.5, 0.0))
        assert len(sweep) == 3
        assert [pt.alpha for pt, _ in sweep] == [1.0, 0.5, 0.0]

    def test_endpoints_are_extremes(self, optimizer):
        sweep = frontier_sweep(optimizer, 500, alphas=(1.0, 0.5, 0.0))
        points = [pt for pt, _ in sweep]
        assert points[0].makespan_s == min(p.makespan_s for p in points)
        assert points[-1].dirty_energy_j == min(p.dirty_energy_j for p in points)

    def test_sweep_points_mutually_non_dominating(self, optimizer):
        sweep = frontier_sweep(optimizer, 500)
        objs = [pt.objectives() for pt, _ in sweep]
        for i, a in enumerate(objs):
            for j, b in enumerate(objs):
                if i != j:
                    assert not (a[0] < b[0] - 1e-6 and a[1] < b[1] - 1e-6)

    def test_equal_split_baseline_above_frontier(self, optimizer):
        """The paper's Figure 5 observation: the stratified (equal-split)
        baseline never dominates the frontier, and the frontier beats it
        in each objective somewhere along the sweep."""
        baseline = optimizer.equal_split_plan(500)
        base_obj = (baseline.predicted_makespan_s, baseline.predicted_dirty_energy_j)
        sweep = frontier_sweep(optimizer, 500)
        points = [pt for pt, _ in sweep]
        assert min(p.makespan_s for p in points) <= base_obj[0] + 1e-9
        assert min(p.dirty_energy_j for p in points) <= base_obj[1] + 1e-9
        for p in points:
            assert not pareto_dominates(base_obj, p.objectives())

    def test_point_objectives_match_plan(self, optimizer):
        sweep = frontier_sweep(optimizer, 500, alphas=(0.9,))
        pt, plan = sweep[0]
        assert pt.makespan_s == plan.predicted_makespan_s
        assert pt.dirty_energy_j == plan.predicted_dirty_energy_j


class TestParetoPoint:
    def test_objectives_tuple(self):
        pt = ParetoPoint(alpha=0.5, makespan_s=2.0, dirty_energy_j=3.0)
        assert pt.objectives() == (2.0, 3.0)
