"""Unit tests for the scalarized multi-objective LP."""

import numpy as np
import pytest

from repro.core.heterogeneity import LinearTimeModel
from repro.core.optimizer import (
    ParetoOptimizer,
    PartitionPlan,
    _largest_remainder_round,
    predict_dirty_energy,
    predict_makespan,
    waterfill_makespan,
)


def models_for_speeds(speeds, intercept=0.5):
    """Per-node models with slope inversely proportional to speed."""
    return [LinearTimeModel(slope=1.0 / s, intercept=intercept / s) for s in speeds]


@pytest.fixture()
def optimizer():
    return ParetoOptimizer(
        models=models_for_speeds([4.0, 3.0, 2.0, 1.0]),
        dirty_coeffs=[300.0, 200.0, 50.0, 0.0],
    )


class TestRounding:
    def test_preserves_sum(self):
        out = _largest_remainder_round(np.array([1.4, 2.3, 3.3]), 7)
        assert out.sum() == 7

    def test_exact_integers_untouched(self):
        out = _largest_remainder_round(np.array([2.0, 3.0]), 5)
        assert out.tolist() == [2, 3]

    def test_largest_fraction_wins(self):
        out = _largest_remainder_round(np.array([0.9, 0.1]), 1)
        assert out.tolist() == [1, 0]


class TestPredictions:
    def test_makespan_is_max(self):
        models = models_for_speeds([2.0, 1.0], intercept=0.0)
        sizes = np.array([10, 10])
        assert predict_makespan(models, sizes) == pytest.approx(10.0)

    def test_empty_partition_costs_nothing(self):
        models = [LinearTimeModel(slope=0.1, intercept=5.0)] * 2
        assert predict_makespan(models, np.array([0, 10])) == pytest.approx(6.0)

    def test_dirty_energy_weighted_sum(self):
        models = [LinearTimeModel(slope=1.0, intercept=0.0)] * 2
        k = np.array([2.0, 3.0])
        assert predict_dirty_energy(models, k, np.array([5, 5])) == pytest.approx(25.0)


class TestEqualSplit:
    def test_sizes_equal(self, optimizer):
        plan = optimizer.equal_split_plan(100)
        assert plan.sizes.tolist() == [25, 25, 25, 25]

    def test_remainder_spread(self, optimizer):
        plan = optimizer.equal_split_plan(102)
        assert plan.sizes.sum() == 102
        assert plan.sizes.max() - plan.sizes.min() <= 1

    def test_baseline_bottlenecked_by_slowest(self, optimizer):
        plan = optimizer.equal_split_plan(400)
        # Slowest node (speed 1) processes 100 items at slope 1.
        assert plan.predicted_makespan_s == pytest.approx(100.5, rel=0.01)


class TestHetAwareSolve:
    def test_sizes_sum_to_total(self, optimizer):
        plan = optimizer.solve(1000, alpha=1.0)
        assert plan.sizes.sum() == 1000

    def test_alpha_one_proportional_to_speed(self, optimizer):
        plan = optimizer.solve(1000, alpha=1.0)
        # Sizes should be close to 400/300/200/100 (speed-proportional).
        assert np.allclose(plan.sizes, [400, 300, 200, 100], atol=15)

    def test_alpha_one_matches_waterfill(self, optimizer):
        plan = optimizer.solve(10_000, alpha=1.0)
        wf = waterfill_makespan(optimizer.models, 10_000)
        lp_makespan = plan.predicted_makespan_s
        wf_makespan = predict_makespan(
            optimizer.models, np.round(wf).astype(int)
        )
        assert lp_makespan == pytest.approx(wf_makespan, rel=0.01)

    def test_beats_equal_split_makespan(self, optimizer):
        equal = optimizer.equal_split_plan(1000)
        het = optimizer.solve(1000, alpha=1.0)
        assert het.predicted_makespan_s < equal.predicted_makespan_s

    def test_alpha_zero_minimizes_energy(self, optimizer):
        plan = optimizer.solve(1000, alpha=0.0)
        # All load goes to the zero-dirty node (index 3).
        assert plan.sizes[3] == 1000

    def test_energy_monotone_in_alpha(self, optimizer):
        energies = [
            optimizer.solve(1000, alpha=a).predicted_dirty_energy_j
            for a in (1.0, 0.99, 0.9, 0.5, 0.0)
        ]
        assert all(e1 >= e2 - 1e-6 for e1, e2 in zip(energies, energies[1:]))

    def test_makespan_monotone_decreasing_in_alpha(self, optimizer):
        makespans = [
            optimizer.solve(1000, alpha=a).predicted_makespan_s
            for a in (0.0, 0.5, 0.9, 0.99, 1.0)
        ]
        assert all(m1 >= m2 - 1e-6 for m1, m2 in zip(makespans, makespans[1:]))

    def test_solutions_not_dominated_within_sweep(self, optimizer):
        """Scalarization guarantees Pareto optimality: no sweep point may
        dominate another in both objectives (up to rounding noise)."""
        plans = [optimizer.solve(2000, alpha=a) for a in (1.0, 0.99, 0.9, 0.5, 0.0)]
        pts = [(p.predicted_makespan_s, p.predicted_dirty_energy_j) for p in plans]
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                if i != j:
                    strictly_better = a[0] < b[0] - 1e-6 and a[1] < b[1] - 1e-6
                    assert not strictly_better


class TestMinItems:
    def test_floor_respected_or_idle(self, optimizer):
        plan = optimizer.solve(1000, alpha=0.9, min_items=100)
        for s in plan.sizes:
            assert s == 0 or s >= 99  # rounding may shave one item

    def test_zero_floor_matches_plain(self, optimizer):
        a = optimizer.solve(1000, alpha=1.0, min_items=0)
        b = optimizer.solve(1000, alpha=1.0)
        assert a.sizes.tolist() == b.sizes.tolist()

    def test_negative_rejected(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.solve(1000, alpha=1.0, min_items=-1)

    def test_tiny_total_degenerates_gracefully(self, optimizer):
        plan = optimizer.solve(10, alpha=1.0, min_items=100)
        assert plan.sizes.sum() == 10


class TestNormalization:
    def test_normalized_alpha_half_balances(self):
        """With objectives normalized to the equal-split scale, α=0.5
        weighs them equally — the optimizer must land strictly between
        the pure-time and pure-energy extremes."""
        opt = ParetoOptimizer(
            models=models_for_speeds([4.0, 1.0]),
            dirty_coeffs=[400.0, 0.0],
            normalize=True,
        )
        t = opt.solve(1000, alpha=1.0)
        e = opt.solve(1000, alpha=0.0)
        mid = opt.solve(1000, alpha=0.5)
        assert e.predicted_dirty_energy_j <= mid.predicted_dirty_energy_j <= t.predicted_dirty_energy_j
        assert t.predicted_makespan_s <= mid.predicted_makespan_s <= e.predicted_makespan_s


class TestValidation:
    def test_bad_alpha(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.solve(100, alpha=-0.1)
        with pytest.raises(ValueError):
            optimizer.solve(100, alpha=1.1)

    def test_bad_total(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.solve(0, alpha=1.0)

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            ParetoOptimizer(models=models_for_speeds([1.0]), dirty_coeffs=[1.0, 2.0])
        with pytest.raises(ValueError):
            ParetoOptimizer(models=[], dirty_coeffs=[])

    def test_negative_dirty_coeff_rejected(self):
        with pytest.raises(ValueError):
            ParetoOptimizer(
                models=models_for_speeds([1.0]), dirty_coeffs=[-5.0]
            )

    def test_plan_validates_sizes(self):
        with pytest.raises(ValueError):
            PartitionPlan(
                sizes=np.array([-1, 2]),
                alpha=1.0,
                predicted_makespan_s=0.0,
                predicted_dirty_energy_j=0.0,
            )


class TestWaterfill:
    def test_respects_total(self):
        x = waterfill_makespan(models_for_speeds([4.0, 2.0, 1.0]), 700)
        assert x.sum() == pytest.approx(700)

    def test_proportional_when_intercepts_equal(self):
        x = waterfill_makespan(models_for_speeds([4.0, 1.0], intercept=0.0), 500)
        assert x[0] == pytest.approx(400, rel=0.01)

    def test_zero_slope_models(self):
        models = [LinearTimeModel(slope=0.0, intercept=1.0)] * 3
        x = waterfill_makespan(models, 300)
        assert x.sum() == pytest.approx(300)
