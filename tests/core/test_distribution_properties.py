"""Property tests for the statistical guarantees the paper relies on.

The representative partitioner's whole point (Section III-E, citing
Cochran) is that every partition approximates the global payload
distribution. These properties pin that down quantitatively for
arbitrary stratifications and partition plans.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import representative_partitions
from repro.stratify.stratifier import Stratification


def build_stratification(stratum_sizes, seed):
    n = sum(stratum_sizes)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    strata, labels = [], np.empty(n, dtype=np.int64)
    offset = 0
    for s, size in enumerate(stratum_sizes):
        members = np.sort(perm[offset : offset + size])
        strata.append(members)
        labels[members] = s
        offset += size
    return Stratification(labels=labels, strata=strata)


sizes_strategy = st.lists(st.integers(min_value=20, max_value=60), min_size=2, max_size=5)


class TestRepresentativeDistribution:
    @given(sizes_strategy, st.integers(min_value=2, max_value=4), st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_partitions_mirror_global_mix(self, stratum_sizes, p, seed):
        """Every non-trivial partition's stratum mix stays within ±15
        percentage points of the global mix, per stratum."""
        strat = build_stratification(stratum_sizes, seed)
        n = strat.num_items
        base, extra = divmod(n, p)
        plan = [base + (1 if i < extra else 0) for i in range(p)]
        parts = representative_partitions(strat, plan, np.random.default_rng(seed))
        global_mix = strat.stratum_sizes() / n
        for part in parts:
            if part.size < 10:
                continue
            counts = np.bincount(strat.labels[part], minlength=strat.num_strata)
            mix = counts / part.size
            assert np.max(np.abs(mix - global_mix)) < 0.15

    @given(sizes_strategy, st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_heavily_skewed_plan_still_representative(self, stratum_sizes, seed):
        """Even a 4:1 size plan (the Het-Aware shape) keeps the big
        partition representative."""
        strat = build_stratification(stratum_sizes, seed)
        n = strat.num_items
        big = (4 * n) // 5
        plan = [big, n - big]
        parts = representative_partitions(strat, plan, np.random.default_rng(seed))
        global_mix = strat.stratum_sizes() / n
        counts = np.bincount(strat.labels[parts[0]], minlength=strat.num_strata)
        mix = counts / parts[0].size
        assert np.max(np.abs(mix - global_mix)) < 0.1


class TestStratifiedSampleDistribution:
    @given(
        sizes_strategy,
        st.floats(min_value=0.2, max_value=0.8),
        st.integers(0, 99),
    )
    @settings(max_examples=30, deadline=None)
    def test_sample_mix_tracks_population(self, stratum_sizes, fraction, seed):
        strat = build_stratification(stratum_sizes, seed)
        rng = np.random.default_rng(seed + 1)
        sample = strat.stratified_sample(fraction, rng)
        global_mix = strat.stratum_sizes() / strat.num_items
        counts = np.bincount(strat.labels[sample], minlength=strat.num_strata)
        mix = counts / sample.size
        assert np.max(np.abs(mix - global_mix)) < 0.12
