"""Bit-identity parity suite for the native (numba) kernel tier.

The native modules import without numba — :mod:`repro.perf.native.runtime`
turns ``@njit`` into an identity decorator, so every compiled kernel
also runs interpreted with identical semantics. That makes this suite
meaningful in both CI legs: without numba it proves the *algorithms*
are bit-identical to the reference oracles; with numba installed the
same assertions run against the actually-compiled code (see
``test_njit_functions_are_compiled_when_numba_present``).

Workload-level tests force the native tier by monkeypatching
``runtime.numba_available`` — explicit ``kernel="native"`` raises when
numba is genuinely absent, which is itself asserted here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import autotune
from repro.perf.fpm_kernels import (
    candidate_supports,
    intersect_supports,
    pack_transactions,
)
from repro.perf.lz77_kernels import build_match_links, scan_matches, serialize_tokens
from repro.perf.native import runtime
from repro.perf.native import fpm_njit, kmodes_njit, lz77_njit, minhash_njit
from repro.perf.minhash_kernels import flatten_sets
from repro.stratify.kmodes import CompositeKModes
from repro.stratify.minhash import EMPTY_SLOT, PRIME, MinHasher
from repro.workloads.compression.lz77 import LZ77Codec
from repro.workloads.fpm.apriori import AprioriMiner
from repro.workloads.fpm.eclat import EclatMiner

ragged_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=30),
    min_size=0,
    max_size=25,
)

matrix_strategy = st.tuples(
    st.integers(min_value=1, max_value=60),  # rows
    st.integers(min_value=1, max_value=6),  # attrs
    st.integers(min_value=1, max_value=5),  # distinct values per attr
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)

transactions_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=12), max_size=8),
    min_size=0,
    max_size=40,
)

# Repetitive byte strings exercise real match chains; random tails the
# literal paths and chain misses.
repetitive_strategy = st.builds(
    lambda chunks, tail: b"".join(chunks) + tail,
    st.lists(
        st.sampled_from([b"abcd", b"abcabc", b"xyzw" * 3, b"\x00\x01\x02\x03"]),
        min_size=0,
        max_size=30,
    ),
    st.binary(max_size=40),
)


@pytest.fixture
def force_native(monkeypatch):
    """Make the autotuner treat the native tier as available.

    Without numba the njit functions run interpreted — same arithmetic,
    same outputs — so parity holds in both CI legs.
    """
    monkeypatch.setattr(runtime, "numba_available", lambda: True)


class TestMinHashNativeParity:
    @given(ragged_strategy)
    @settings(max_examples=40, deadline=None)
    def test_native_matches_reference(self, sets):
        hasher = MinHasher(num_hashes=9, seed=3)
        ref = hasher.sketch_all_reference(sets)
        if len(sets) == 0:
            return
        flat, offsets = flatten_sets(sets)
        got = minhash_njit.sketch_all_native(
            flat, offsets, hasher._a, hasher._b, prime=PRIME, empty_slot=EMPTY_SLOT
        )
        assert got.dtype == ref.dtype == np.uint64
        assert np.array_equal(got, ref)

    def test_empty_sets_are_sentinel_rows(self):
        hasher = MinHasher(num_hashes=6, seed=0)
        sets = [set(), {1, 2}, set(), {3}]
        flat, offsets = flatten_sets(sets)
        got = minhash_njit.sketch_all_native(
            flat, offsets, hasher._a, hasher._b, prime=PRIME, empty_slot=EMPTY_SLOT
        )
        assert (got[[0, 2]] == EMPTY_SLOT).all()
        assert np.array_equal(got, hasher.sketch_all_reference(sets))

    def test_workload_native_tier_matches(self, force_native):
        rng = np.random.default_rng(7)
        sets = [
            rng.integers(0, 2**32, size=int(rng.integers(0, 50))).astype(np.uint64)
            for _ in range(80)
        ]
        native = MinHasher(num_hashes=16, seed=5, kernel="native").sketch_all(sets)
        ref = MinHasher(num_hashes=16, seed=5, kernel="reference").sketch_all(sets)
        assert np.array_equal(native, ref)


class TestKModesNativeParity:
    @given(matrix_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_match_counts_native_matches_reference(self, spec, num_clusters):
        n, k, card, seed = spec
        rng = np.random.default_rng(seed)
        sketches = rng.integers(0, card, size=(n, k)).astype(np.uint64)
        km = CompositeKModes(num_clusters=num_clusters, top_l=3, kernel="reference")
        centers = rng.integers(0, card, size=(num_clusters, k, 3)).astype(np.uint64)
        ref = km._match_counts_reference(sketches, centers)
        got = kmodes_njit.match_counts_native(sketches, centers)
        assert got.dtype == ref.dtype == np.int64
        assert np.array_equal(got, ref)

    def test_fit_native_tier_matches_reference(self, force_native):
        rng = np.random.default_rng(11)
        sketches = rng.integers(0, 5, size=(120, 4)).astype(np.uint64)
        res_native = CompositeKModes(num_clusters=4, seed=2, kernel="native").fit(sketches)
        res_ref = CompositeKModes(num_clusters=4, seed=2, kernel="reference").fit(sketches)
        assert np.array_equal(res_native.labels, res_ref.labels)
        assert np.array_equal(res_native.centers, res_ref.centers)
        assert res_native.cost == res_ref.cost
        assert res_native.iterations == res_ref.iterations


class TestFPMNativeParity:
    @given(transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_candidate_supports_native_matches_numpy(self, transactions):
        bitmap = pack_transactions(transactions)
        if bitmap.num_items == 0:
            return
        rng = np.random.default_rng(0)
        cands = rng.integers(
            0, bitmap.num_items, size=(12, 2), dtype=np.int64
        )
        ref = candidate_supports(bitmap, cands)
        got = fpm_njit.candidate_supports_native(bitmap, cands)
        assert np.array_equal(got, ref)

    @given(transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_intersect_supports_native_matches_numpy(self, transactions):
        bitmap = pack_transactions(transactions)
        if bitmap.num_items == 0:
            return
        prefix = bitmap.bits[0]
        ext = np.arange(bitmap.num_items, dtype=np.int64)
        ref_inter, ref_sup = intersect_supports(prefix, ext, bitmap)
        got_inter, got_sup = fpm_njit.intersect_supports_native(prefix, ext, bitmap)
        assert np.array_equal(got_inter, ref_inter)
        assert np.array_equal(got_sup, ref_sup)

    def test_empty_and_zero_length_candidates(self):
        bitmap = pack_transactions([{1, 2}, {2, 3}])
        none = fpm_njit.candidate_supports_native(
            bitmap, np.empty((0, 2), dtype=np.int64)
        )
        assert none.size == 0
        empty_itemsets = fpm_njit.candidate_supports_native(
            bitmap, np.empty((3, 0), dtype=np.int64)
        )
        assert np.array_equal(empty_itemsets, np.full(3, 2, dtype=np.int64))

    @given(transactions_strategy, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_apriori_native_matches_reference(self, transactions, min_support):
        runtime_available = runtime.numba_available
        try:
            runtime.numba_available = lambda: True
            native = AprioriMiner(
                min_support=min_support, kernel="native"
            ).mine(transactions)
        finally:
            runtime.numba_available = runtime_available
        ref = AprioriMiner(min_support=min_support, kernel="reference").mine(
            transactions
        )
        assert native.counts == ref.counts
        assert native.candidates_generated == ref.candidates_generated
        assert native.work_units == ref.work_units

    @given(transactions_strategy, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_eclat_native_matches_reference(self, transactions, min_support):
        runtime_available = runtime.numba_available
        try:
            runtime.numba_available = lambda: True
            native = EclatMiner(
                min_support=min_support, kernel="native"
            ).mine(transactions)
        finally:
            runtime.numba_available = runtime_available
        ref = EclatMiner(min_support=min_support, kernel="reference").mine(
            transactions
        )
        assert native.counts == ref.counts
        assert native.work_units == ref.work_units


class TestLZ77NativeParity:
    @given(
        repetitive_strategy,
        st.sampled_from([8, 64, 1 << 15]),
        st.sampled_from([1, 4, 16]),
        st.sampled_from([8, 255]),
    )
    @settings(max_examples=40, deadline=None)
    def test_native_scan_matches_numpy_scan(self, data, window, max_chain, max_match):
        links = build_match_links(data)
        ref = scan_matches(
            data, links, window=window, max_chain=max_chain, max_match=max_match
        )
        got = lz77_njit.scan_matches_native(
            data, links, window=window, max_chain=max_chain, max_match=max_match
        )
        assert list(got[0]) == list(ref[0])
        assert list(got[1]) == list(ref[1])
        assert list(got[2]) == list(ref[2])
        assert got[3] == ref[3]

    @given(repetitive_strategy)
    @settings(max_examples=30, deadline=None)
    def test_native_blob_matches_reference_coder(self, data):
        codec = LZ77Codec(window=64, max_chain=8, max_match=32, kernel="reference")
        ref_blob, ref_stats = codec.compress(data)
        links = build_match_links(data)
        m_pos, m_dist, m_len, probes = lz77_njit.scan_matches_native(
            data, links, window=64, max_chain=8, max_match=32
        )
        blob, counters = serialize_tokens(data, m_pos, m_dist, m_len, probes)
        assert blob == ref_blob
        assert counters["matches"] == ref_stats.matches
        assert counters["literals"] == ref_stats.literals
        assert counters["probes"] == ref_stats.probes
        assert codec.decompress(blob) == data

    def test_codec_native_tier_round_trips(self, force_native):
        data = b"the quick brown fox " * 50 + b"jumps over the lazy dog"
        codec = LZ77Codec(kernel="native")
        blob, stats = codec.compress(data)
        ref_blob, ref_stats = LZ77Codec(kernel="reference").compress(data)
        assert blob == ref_blob
        assert stats == ref_stats
        assert codec.decompress(blob) == data


class TestNativeTierContract:
    def test_explicit_native_without_numba_raises(self, monkeypatch):
        monkeypatch.setattr(runtime, "numba_available", lambda: False)
        with pytest.raises(RuntimeError, match="native"):
            autotune.resolve_tier("native", kind="minhash", work=10**6)

    def test_njit_functions_are_compiled_when_numba_present(self):
        if not runtime.numba_available():
            pytest.skip("numba not installed; interpreted fallback in use")
        # numba dispatchers expose the original function as py_func.
        for fn in (
            minhash_njit._sketch_sets,
            kmodes_njit._match_counts,
            fpm_njit._candidate_supports,
            fpm_njit._intersect_supports,
            fpm_njit._popcount,
            lz77_njit._scan,
        ):
            assert hasattr(fn, "py_func")
