"""Golden-equivalence property tests for the batched kernels.

Every kernel in :mod:`repro.perf` claims *bit-identical* output to the
reference implementation it replaces. These tests hold it to that:
hypothesis drives ragged/degenerate inputs (empty sets, single
elements, heavy value ties, chunk boundaries) through both paths and
asserts exact array equality — no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.kmodes_kernels import factorize_columns, top_l_centers
from repro.perf.minhash_kernels import as_uint64_elements, flatten_sets
from repro.stratify.kmodes import _FILL, CompositeKModes
from repro.stratify.minhash import EMPTY_SLOT, MinHasher

# Ragged datasets: lists of sets over the full 32-bit universe,
# including empty sets (which must round-trip as sentinel rows).
ragged_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=30),
    min_size=0,
    max_size=25,
)

# Low-cardinality matrices force repeated values per attribute — the
# Counter tie-break regime where a subtly wrong ordering would show.
matrix_strategy = st.tuples(
    st.integers(min_value=1, max_value=60),  # rows
    st.integers(min_value=1, max_value=6),  # attrs
    st.integers(min_value=1, max_value=5),  # distinct values per attr
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)


def _low_card_matrix(n, k, card, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, card, size=(n, k)).astype(np.uint64)


class TestSketchBatchEquivalence:
    @given(ragged_strategy, st.sampled_from([64, 1024, 8 * 1024 * 1024]))
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_per_set(self, sets, chunk_bytes):
        hasher = MinHasher(num_hashes=9, seed=3, chunk_bytes=chunk_bytes)
        got = hasher.sketch_all(sets)
        ref = hasher.sketch_all_reference(sets)
        assert got.dtype == ref.dtype == np.uint64
        assert np.array_equal(got, ref)

    @given(ragged_strategy)
    @settings(max_examples=20, deadline=None)
    def test_chunking_is_invisible(self, sets):
        tiny = MinHasher(num_hashes=7, seed=1, chunk_bytes=64)
        big = MinHasher(num_hashes=7, seed=1)
        assert np.array_equal(tiny.sketch_all(sets), big.sketch_all(sets))

    def test_ndarray_list_set_inputs_agree(self):
        rng = np.random.default_rng(0)
        arrays = [
            rng.integers(0, 2**32, size=int(rng.integers(0, 40))).astype(np.uint64)
            for _ in range(30)
        ]
        hasher = MinHasher(num_hashes=16, seed=5)
        as_arrays = hasher.sketch_all(arrays)
        as_lists = hasher.sketch_all([[int(v) for v in a] for a in arrays])
        assert np.array_equal(as_arrays, as_lists)

    def test_empty_sets_are_sentinel_rows(self):
        hasher = MinHasher(num_hashes=6, seed=0)
        got = hasher.sketch_all([set(), {1, 2}, set(), set(), {3}])
        assert (got[[0, 2, 3]] == EMPTY_SLOT).all()
        assert np.array_equal(got, hasher.sketch_all_reference([set(), {1, 2}, set(), set(), {3}]))

    def test_out_of_universe_rejected_in_batch(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=4).sketch_all([{1}, {2**32}])

    def test_concurrent_sketch_all_is_race_free(self):
        # The distributed stratifier sketches from several threads at
        # once; the kernel's reusable scratch must be thread-local or
        # concurrent `out=` writes corrupt each other's hashes
        # nondeterministically. Small chunk_bytes forces many chunk
        # iterations per call to maximise interleaving.
        import threading

        rng = np.random.default_rng(12)
        sets = [
            rng.integers(0, 2**32, size=int(rng.integers(5, 60))).astype(np.uint64)
            for _ in range(400)
        ]
        hasher = MinHasher(num_hashes=16, seed=2, chunk_bytes=2048)
        expected = hasher.sketch_all(sets)
        results: dict[int, np.ndarray] = {}

        def work(tid: int) -> None:
            for _ in range(5):
                results[tid] = hasher.sketch_all(sets)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for tid, got in results.items():
            assert np.array_equal(got, expected), f"thread {tid} diverged"


class TestElementCoercion:
    def test_integer_ndarray_fast_path_no_copy(self):
        arr = np.array([1, 2, 3], dtype=np.uint64)
        out = as_uint64_elements(arr)
        assert out is arr or out.base is arr

    def test_signed_ndarray_cast(self):
        out = as_uint64_elements(np.array([5, 0, 9], dtype=np.int32))
        assert out.dtype == np.uint64 and list(out) == [5, 0, 9]

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            as_uint64_elements(np.array([1, -2], dtype=np.int64))

    def test_generic_iterable_fallback(self):
        out = as_uint64_elements(iter([7, 8]))
        assert out.dtype == np.uint64 and list(out) == [7, 8]

    def test_flatten_offsets(self):
        flat, offsets = flatten_sets([[1, 2], [], [3]])
        assert list(offsets) == [0, 2, 2, 3]
        assert list(flat) == [1, 2, 3]


class TestKModesEquivalence:
    @given(matrix_strategy, st.sampled_from([256, 8 * 1024 * 1024]))
    @settings(max_examples=25, deadline=None)
    def test_fit_matches_reference(self, spec, chunk_bytes):
        n, k, card, seed = spec
        data = _low_card_matrix(n, k, card, seed)
        kwargs = dict(num_clusters=5, top_l=2, seed=seed % 1000, max_iter=30)
        batched = CompositeKModes(kernel="batched", chunk_bytes=chunk_bytes, **kwargs).fit(data)
        reference = CompositeKModes(kernel="reference", **kwargs).fit(data)
        assert np.array_equal(batched.labels, reference.labels)
        assert np.array_equal(batched.centers, reference.centers)
        assert batched.cost == reference.cost
        assert batched.iterations == reference.iterations
        assert batched.converged == reference.converged

    @given(matrix_strategy)
    @settings(max_examples=25, deadline=None)
    def test_top_l_dense_and_sparse_paths_agree(self, spec):
        n, k, card, seed = spec
        data = _low_card_matrix(n, k, card, seed)
        codes, col_offsets, all_values = factorize_columns(data)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=n).astype(np.int64)
        old = np.full((4, k, 3), _FILL, dtype=np.uint64)
        # chunk_bytes=1 forces the argsort fallback; 1 GiB the bincount path.
        dense = top_l_centers(
            codes, col_offsets, all_values, labels, old, top_l=3, fill=_FILL, chunk_bytes=1 << 30
        )
        sparse = top_l_centers(
            codes, col_offsets, all_values, labels, old, top_l=3, fill=_FILL, chunk_bytes=1
        )
        assert np.array_equal(dense, sparse)

    def test_assign_matches_reference(self):
        data = _low_card_matrix(80, 5, 4, seed=9)
        batched = CompositeKModes(num_clusters=4, top_l=2, seed=1, kernel="batched")
        reference = CompositeKModes(num_clusters=4, top_l=2, seed=1, kernel="reference")
        result = batched.fit(data)
        new = _low_card_matrix(40, 5, 4, seed=10)
        assert np.array_equal(
            batched.assign(new, result.centers), reference.assign(new, result.centers)
        )

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            CompositeKModes(kernel="magic")


class TestSimilarityEquivalence:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([128, 8 * 1024 * 1024]),
    )
    @settings(max_examples=25, deadline=None)
    def test_blocked_matches_row_loop(self, n, k, chunk_bytes):
        rng = np.random.default_rng(n * 1000 + k)
        sketches = rng.integers(0, 50, size=(n, k)).astype(np.uint64)
        hasher = MinHasher(num_hashes=k, chunk_bytes=chunk_bytes)
        assert np.array_equal(
            hasher.similarity_matrix(sketches),
            hasher.similarity_matrix_reference(sketches),
        )
