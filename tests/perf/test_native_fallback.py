"""Graceful degradation of the native tier when numba is unimportable.

Simulates the missing dependency by poisoning ``sys.modules["numba"]``
(``None`` entries make ``importlib.import_module`` raise) and asserts
the contract the autotuner promises: ``kernel="auto"`` silently resolves
to the numpy tier with identical results plus one observable
``kernel.native_unavailable`` log event — never an exception.

The njit modules are imported at module top, *before* any poisoning, so
this file's alphabetical position ahead of ``test_native_kernels.py``
cannot corrupt the parity suite's imports in the numba CI leg.
"""

import logging
import sys

import numpy as np
import pytest

from repro import obs
from repro.perf import autotune
from repro.perf.native import fpm_njit, kmodes_njit, lz77_njit, minhash_njit, runtime
from repro.stratify.minhash import MinHasher
from repro.workloads.fpm.apriori import AprioriMiner


@pytest.fixture
def no_numba(monkeypatch):
    """numba unimportable + all availability caches cleared, restored after."""
    monkeypatch.setitem(sys.modules, "numba", None)
    runtime.numba_available.cache_clear()
    autotune._log_native_unavailable.cache_clear()
    yield
    runtime.numba_available.cache_clear()
    autotune._log_native_unavailable.cache_clear()


class TestGracefulFallback:
    def test_numba_reports_unavailable(self, no_numba):
        assert runtime.numba_available() is False

    def test_njit_decorator_is_identity_without_numba(self, no_numba):
        def f(x):
            return x + 1

        assert runtime.njit(cache=True)(f) is f
        assert runtime.njit(f) is f

    def test_njit_kernels_run_interpreted(self, no_numba):
        # The kernel modules stay importable and callable without numba
        # — the shim leaves plain Python functions behind.
        from repro.perf.fpm_kernels import pack_transactions
        from repro.perf.lz77_kernels import build_match_links

        bitmap = pack_transactions([{1, 2}, {2}])
        rows = np.array([[0], [1]], dtype=np.int64)
        assert fpm_njit.candidate_supports_native(bitmap, rows).tolist() == [
            int(bitmap.supports[0]),
            int(bitmap.supports[1]),
        ]
        sketches = np.zeros((2, 3), dtype=np.uint64)
        centers = np.zeros((1, 3, 2), dtype=np.uint64)
        assert kmodes_njit.match_counts_native(sketches, centers).tolist() == [[3], [3]]
        data = b"abcdabcd"
        m_pos, _dist, m_len, _probes = lz77_njit.scan_matches_native(
            data, build_match_links(data), window=64, max_chain=4, max_match=8
        )
        assert list(m_pos) == [4]
        assert list(m_len) == [4]
        flat = np.array([1, 2], dtype=np.uint64)
        offsets = np.array([0, 2], dtype=np.int64)
        a = np.array([1], dtype=np.uint64)
        b = np.array([0], dtype=np.uint64)
        out = minhash_njit.sketch_all_native(
            flat, offsets, a, b, prime=(1 << 32) + 15, empty_slot=np.uint64(2**64 - 1)
        )
        assert out.tolist() == [[1]]  # min of h(x)=x over {1, 2}

    def test_auto_resolves_to_numpy_with_log_event(self, no_numba, caplog):
        # Seeds rank native above numpy by default, so a large auto call
        # wants the native tier; without numba it must downgrade.
        with caplog.at_level(logging.INFO, logger="repro.perf.autotune"):
            tier = autotune.resolve_tier("auto", kind="minhash", work=10**9)
        assert tier == "numpy"
        assert any("kernel.native_unavailable" in r.message for r in caplog.records)

    def test_auto_results_identical_to_numpy(self, no_numba):
        rng = np.random.default_rng(3)
        sets = [
            rng.integers(0, 2**32, size=int(rng.integers(10, 80))).astype(np.uint64)
            for _ in range(64)
        ]
        auto = MinHasher(num_hashes=16, seed=1, kernel="auto").sketch_all(sets)
        explicit = MinHasher(num_hashes=16, seed=1, kernel="numpy").sketch_all(sets)
        assert np.array_equal(auto, explicit)

        tx = [set(map(int, rng.integers(0, 10, size=6))) for _ in range(60)]
        out_auto = AprioriMiner(min_support=0.2, kernel="auto").mine(tx)
        out_np = AprioriMiner(min_support=0.2, kernel="bitmap").mine(tx)
        assert out_auto.counts == out_np.counts
        assert out_auto.work_units == out_np.work_units

    def test_env_pin_to_native_also_degrades(self, no_numba, monkeypatch, caplog):
        monkeypatch.setenv(autotune.ENV_TIER, "native")
        with caplog.at_level(logging.INFO, logger="repro.perf.autotune"):
            tier = autotune.resolve_tier("auto", kind="fpm", work=10**6)
        assert tier == "numpy"
        assert any("kernel.native_unavailable" in r.message for r in caplog.records)

    def test_dispatch_counter_records_numpy_tier(self, no_numba):
        obs.enable()
        obs.reset()
        try:
            autotune.resolve_tier("auto", kind="lz77", work=10**6)
            snap = obs.metrics_snapshot()
        finally:
            obs.disable()
            obs.reset()
        key = 'repro_kernel_dispatch_total{kernel="lz77",tier="numpy"}'
        assert key in snap
        assert snap[key]["value"] == 1
