"""Byte-identity tests: fast LZ77 / batched WebGraph coders vs reference.

The fast coders claim byte-for-byte identical blobs *and* identical
probe/match/literal statistics. Hypothesis drives repetitive byte
streams (where matches and chain walks actually trigger) and adjacency
partitions through both paths; tiny windows and ``max_chain=1`` stress
the deque-trimming probe accounting the fast coder emulates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.lz77_kernels import (
    build_match_links,
    encode_varint_batch,
    encode_varints_bytes,
)
from repro.workloads.compression.lz77 import LZ77Codec
from repro.workloads.compression.varint import encode_varint
from repro.workloads.compression.webgraph import WebGraphCodec

# Low-alphabet streams maximise match density; st.binary covers the
# incompressible end.
repetitive_strategy = st.lists(
    st.sampled_from([b"abcab", b"aaaa", b"xyz", b"\x00\x00\x00\x00", b"q"]),
    max_size=40,
).map(b"".join)


class TestBuildMatchLinks:
    def test_short_input_has_no_links(self):
        assert build_match_links(b"abc").size == 0

    def test_links_point_to_nearest_same_key(self):
        data = b"abcdXabcdYabcd"
        links = build_match_links(data)
        assert links[5] == 0  # second "abcd" -> first
        assert links[10] == 5  # third "abcd" -> second

    @given(st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_links_are_exact_key_matches(self, data):
        links = build_match_links(data)
        for i, j in enumerate(links.tolist()):
            if j >= 0:
                assert data[j : j + 4] == data[i : i + 4]
                assert j < i


class TestVarintBatch:
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_byte_identical_to_scalar(self, values):
        buf, offsets = encode_varint_batch(values)
        scalar = b"".join(encode_varint(v) for v in values)
        assert buf.tobytes() == scalar
        for i, v in enumerate(values):
            assert bytes(buf[offsets[i] : offsets[i + 1]]) == encode_varint(v)

    def test_uint64_edge_values(self):
        edges = [0, 127, 128, 2**63 - 1, 2**63, 2**64 - 1]
        assert encode_varints_bytes(edges) == b"".join(encode_varint(v) for v in edges)

    def test_empty(self):
        buf, offsets = encode_varint_batch([])
        assert buf.size == 0 and offsets.tolist() == [0]


class TestLZ77Equivalence:
    @given(
        repetitive_strategy | st.binary(max_size=300),
        st.sampled_from([4, 16, 1 << 15]),
        st.sampled_from([1, 2, 16]),
        st.sampled_from([4, 8, 255]),
    )
    @settings(max_examples=50, deadline=None)
    def test_blob_and_stats_match_reference(self, data, window, max_chain, max_match):
        fast = LZ77Codec(window=window, max_chain=max_chain, max_match=max_match, kernel="fast")
        ref = LZ77Codec(window=window, max_chain=max_chain, max_match=max_match, kernel="reference")
        blob_f, st_f = fast.compress(data)
        blob_r, st_r = ref.compress(data)
        assert blob_f == blob_r
        assert st_f == st_r
        assert fast.decompress(blob_f) == data

    @given(st.lists(st.lists(st.integers(0, 50), max_size=10), max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_record_roundtrip(self, records):
        codec = LZ77Codec(kernel="fast")
        blob, _ = codec.compress_records(records)
        assert codec.decompress_records(blob) == [[int(v) for v in r] for r in records]


class TestWebGraphEquivalence:
    adjacency_strategy = st.lists(
        st.lists(st.integers(min_value=0, max_value=120), max_size=25),
        max_size=20,
    )

    @given(adjacency_strategy, st.sampled_from([0, 1, 3, 7]))
    @settings(max_examples=50, deadline=None)
    def test_blob_and_stats_match_reference(self, adjacency, window):
        fast = WebGraphCodec(window=window, kernel="batched")
        ref = WebGraphCodec(window=window, kernel="reference")
        blob_f, st_f = fast.compress(adjacency)
        blob_r, st_r = ref.compress(adjacency)
        assert blob_f == blob_r
        assert st_f == st_r
        expected = [sorted(set(int(v) for v in lst)) for lst in adjacency]
        assert fast.decompress(blob_f) == expected

    def test_interval_heavy_lists(self):
        adjacency = [list(range(10, 40)), list(range(10, 40)) + [99], [0, 2, 4, 6]]
        fast, _ = WebGraphCodec(kernel="batched").compress(adjacency)
        ref, _ = WebGraphCodec(kernel="reference").compress(adjacency)
        assert fast == ref
