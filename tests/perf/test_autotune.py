"""Behavioral tests for the shape-aware kernel autotuner."""

import json

import numpy as np
import pytest

from repro import obs
from repro.perf import autotune
from repro.perf.native import runtime
from repro.stratify.kmodes import CompositeKModes
from repro.stratify.minhash import MinHasher
from repro.workloads.compression.lz77 import LZ77Codec
from repro.workloads.compression.webgraph import WebGraphCodec
from repro.workloads.fpm.apriori import AprioriMiner
from repro.workloads.fpm.eclat import EclatMiner


@pytest.fixture
def native_available(monkeypatch):
    monkeypatch.setattr(runtime, "numba_available", lambda: True)


@pytest.fixture
def native_missing(monkeypatch):
    monkeypatch.setattr(runtime, "numba_available", lambda: False)
    autotune._log_native_unavailable.cache_clear()
    yield
    autotune._log_native_unavailable.cache_clear()


class TestAliasesAndValidation:
    @pytest.mark.parametrize(
        "legacy,canonical",
        [("batched", "numpy"), ("bitmap", "numpy"), ("fast", "numpy")],
    )
    def test_legacy_aliases_map_to_numpy(self, legacy, canonical):
        assert autotune.canonical_kernel(legacy) == canonical

    def test_canonical_names_pass_through(self):
        for name in autotune.TIERS + (autotune.AUTO,):
            assert autotune.canonical_kernel(name) == name

    @pytest.mark.parametrize("kind", sorted(autotune.KIND_TIERS))
    def test_unknown_kernel_rejected(self, kind):
        with pytest.raises(ValueError):
            autotune.validate_kernel("gpu", kind)

    def test_native_rejected_for_kinds_without_native_tier(self):
        with pytest.raises(ValueError):
            autotune.validate_kernel("native", "webgraph")

    def test_constructors_validate_eagerly(self):
        with pytest.raises(ValueError):
            MinHasher(kernel="magic")
        with pytest.raises(ValueError):
            CompositeKModes(kernel="magic")
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0.5, kernel="magic")
        with pytest.raises(ValueError):
            EclatMiner(min_support=0.5, kernel="magic")
        with pytest.raises(ValueError):
            LZ77Codec(kernel="magic")
        with pytest.raises(ValueError):
            WebGraphCodec(kernel="magic")


class TestShapeDispatch:
    def test_explicit_tier_always_wins(self, native_available):
        assert autotune.resolve_tier("reference", kind="minhash", work=10**9) == "reference"
        assert autotune.resolve_tier("batched", kind="minhash", work=0) == "numpy"
        assert autotune.resolve_tier("native", kind="minhash", work=0) == "native"

    def test_small_work_goes_reference(self):
        for kind, threshold in autotune.SMALL_WORK.items():
            assert (
                autotune.resolve_tier("auto", kind=kind, work=threshold - 1)
                == "reference"
            )

    def test_large_work_prefers_native_when_available(self, native_available):
        assert autotune.resolve_tier("auto", kind="fpm", work=10**6) == "native"

    def test_large_work_numpy_when_native_missing(self, native_missing):
        assert autotune.resolve_tier("auto", kind="fpm", work=10**6) == "numpy"

    def test_webgraph_never_native(self, native_available):
        assert autotune.resolve_tier("auto", kind="webgraph", work=10**6) == "numpy"


class TestEnvPin:
    def test_env_pins_auto(self, monkeypatch, native_available):
        monkeypatch.setenv(autotune.ENV_TIER, "reference")
        assert autotune.resolve_tier("auto", kind="minhash", work=10**9) == "reference"

    def test_env_accepts_legacy_alias(self, monkeypatch):
        monkeypatch.setenv(autotune.ENV_TIER, "batched")
        assert autotune.resolve_tier("auto", kind="lz77", work=1) == "numpy"

    def test_env_does_not_override_explicit_kernel(self, monkeypatch):
        monkeypatch.setenv(autotune.ENV_TIER, "reference")
        assert autotune.resolve_tier("numpy", kind="minhash", work=10**9) == "numpy"

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(autotune.ENV_TIER, "turbo")
        with pytest.raises(ValueError):
            autotune.resolve_tier("auto", kind="minhash", work=10**9)

    def test_pin_of_missing_tier_is_ignored_for_that_kind(self, monkeypatch, native_available):
        # webgraph has no native tier; the pin falls back to the shape choice.
        monkeypatch.setenv(autotune.ENV_TIER, "native")
        assert autotune.resolve_tier("auto", kind="webgraph", work=10**6) == "numpy"


class TestSeedMeasurements:
    def test_seed_file_ranks_tiers(self, tmp_path, monkeypatch, native_available):
        seeds = {
            "apriori_mine": {"tiers": {"reference": 9.0, "numpy": 0.1, "native": 0.5}}
        }
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(seeds), encoding="utf-8")
        monkeypatch.setenv(autotune.ENV_SEEDS, str(path))
        autotune.seed_measurements.cache_clear()
        try:
            # Measurements say numpy beats native here: auto must obey.
            assert autotune.resolve_tier("auto", kind="fpm", work=10**6) == "numpy"
            # Other kinds have no seeds and keep the native default.
            assert autotune.resolve_tier("auto", kind="lz77", work=10**6) == "native"
        finally:
            autotune.seed_measurements.cache_clear()

    def test_malformed_seed_file_is_ignored(self, tmp_path, monkeypatch, native_available):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text("{not json", encoding="utf-8")
        monkeypatch.setenv(autotune.ENV_SEEDS, str(path))
        autotune.seed_measurements.cache_clear()
        try:
            assert autotune.resolve_tier("auto", kind="fpm", work=10**6) == "native"
        finally:
            autotune.seed_measurements.cache_clear()


class TestDispatchCounters:
    def test_counter_incremented_per_resolution(self):
        obs.enable()
        obs.reset()
        try:
            autotune.resolve_tier("reference", kind="kmodes", work=1)
            autotune.resolve_tier("reference", kind="kmodes", work=1)
            autotune.resolve_tier("batched", kind="kmodes", work=1)
            snap = obs.metrics_snapshot()
        finally:
            obs.disable()
            obs.reset()
        ref_key = 'repro_kernel_dispatch_total{kernel="kmodes",tier="reference"}'
        np_key = 'repro_kernel_dispatch_total{kernel="kmodes",tier="numpy"}'
        assert snap[ref_key]["value"] == 2
        assert snap[np_key]["value"] == 1

    def test_no_counters_when_obs_disabled(self):
        obs.reset()
        autotune.resolve_tier("reference", kind="kmodes", work=1)
        assert obs.metrics_snapshot() == {}


class TestAutoEndToEnd:
    def test_auto_default_used_by_workloads(self):
        # Small inputs resolve to reference; results must still match
        # the explicit numpy tier bit-for-bit.
        rng = np.random.default_rng(0)
        sets = [
            rng.integers(0, 2**32, size=4).astype(np.uint64) for _ in range(3)
        ]
        hasher_auto = MinHasher(num_hashes=8, seed=9)
        assert hasher_auto.kernel == "auto"
        assert np.array_equal(
            hasher_auto.sketch_all(sets),
            MinHasher(num_hashes=8, seed=9, kernel="numpy").sketch_all(sets),
        )
        codec = LZ77Codec()
        assert codec.kernel == "auto"
        data = b"tiny"
        assert codec.compress(data) == LZ77Codec(kernel="reference").compress(data)
        assert WebGraphCodec().kernel == "auto"
        assert AprioriMiner(min_support=0.5).kernel == "auto"
        assert EclatMiner(min_support=0.5).kernel == "auto"
        assert CompositeKModes().kernel == "auto"
